#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite — all offline.
# Run from anywhere; works with no network and no crates registry.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "== durability gate (fault-injection + truncation fuzz, fast mode)"
cargo test -q -p jackpine --test durability --offline

echo "== observability gate (golden traces + metrics invariants)"
cargo test -q -p jackpine --test observability --offline
grep -q '#!\[forbid(unsafe_code)\]' crates/obs/src/lib.rs \
  || { echo "crates/obs must forbid unsafe_code"; exit 1; }

echo "== system catalog gate (golden jp_* selects through the planner)"
cargo test -q -p jackpine --test syscat --offline

echo "== flight recorder gate (ring concurrency + fingerprint properties)"
cargo test -q -p jackpine --test flight_recorder --offline
cargo test -q -p jackpine --test proptest_fingerprint --offline

echo "== prepared-geometry gate (prepared == naive DE-9IM equivalence corpus)"
cargo test -q -p jackpine --test prepared_equivalence --offline

echo "== vectorized-executor gate (batch path == row path, all batch shapes)"
cargo test -q -p jackpine --test vectorized_equivalence --offline

echo "== interleaving gate (MVCC snapshot isolation + group-commit accounting)"
cargo test -q -p jackpine --test interleaving --offline
cargo test -q -p jackpine --test concurrency --offline

echo "== out-of-core gate (paged heap == unbounded, all pools/policies/workers)"
cargo test -q -p jackpine --test pool_equivalence --offline

echo "== repro --trace smoke (every micro query emits a trace)"
cargo run --release --offline -p jackpine-bench --bin repro -- \
  --scale 0.01 --quick --trace --metrics-json /tmp/jackpine_metrics.json \
  --trace-export /tmp/jackpine_chrome_trace.json \
  --prom /tmp/jackpine_metrics.prom --slow-ms 0 t1 \
  > /tmp/jackpine_trace.txt
grep -q 'stage plan' /tmp/jackpine_trace.txt \
  || { echo "repro --trace emitted no stage lines"; exit 1; }
python3 - <<'EOF' || { echo "--metrics-json wrote invalid JSON"; exit 1; }
import json
m = json.load(open('/tmp/jackpine_metrics.json'))
assert m["schema_version"] == 2, f"metrics schema_version {m.get('schema_version')} != 2"
assert m["engines"], "metrics-json has no engines"
EOF

echo "== prometheus export gate (repro --prom output passes the in-tree lint)"
cargo run --release --offline -p jackpine-bench --bin prom-lint -- \
  /tmp/jackpine_metrics.prom \
  || { echo "--prom output failed prometheus lint"; exit 1; }

echo "== trace export gate (Chrome trace JSON, >=1 span per query)"
python3 - <<'EOF' || { echo "--trace-export wrote an invalid Chrome trace"; exit 1; }
import json
t = json.load(open('/tmp/jackpine_chrome_trace.json'))
events = t["traceEvents"]
queries = [e for e in events if e.get("cat") == "query" and e.get("ph") == "X"]
stages = [e for e in events if e.get("cat") == "stage" and e.get("ph") == "X"]
assert queries, "no query spans exported"
assert len(stages) >= len(queries), f"{len(stages)} stage spans < {len(queries)} query spans"
assert all(e["dur"] >= 1 for e in queries + stages), "zero-duration span"
EOF

echo "== bench-diff gate (self-comparison is clean, checked-in runs compare)"
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_1.json BENCH_1.json > /tmp/jackpine_bench_diff.txt
grep -q ' 0 regressions' /tmp/jackpine_bench_diff.txt \
  || { echo "bench-diff self-comparison reported regressions"; exit 1; }
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_1.json BENCH_4.json > /dev/null \
  || { echo "bench-diff BENCH_1 vs BENCH_4 failed"; exit 1; }
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_4.json BENCH_5.json > /dev/null \
  || { echo "bench-diff BENCH_4 vs BENCH_5 failed"; exit 1; }
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_5.json BENCH_6.json > /dev/null \
  || { echo "bench-diff BENCH_5 vs BENCH_6 failed"; exit 1; }
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_6.json BENCH_7.json > /dev/null \
  || { echo "bench-diff BENCH_6 vs BENCH_7 failed"; exit 1; }
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_7R.json BENCH_8.json > /dev/null \
  || { echo "bench-diff BENCH_7R vs BENCH_8 failed"; exit 1; }
cargo run --release --offline -p jackpine-bench --bin bench-diff -- \
  BENCH_8.json BENCH_9.json > /dev/null \
  || { echo "bench-diff BENCH_8 vs BENCH_9 failed"; exit 1; }

echo "tier-1 green"
