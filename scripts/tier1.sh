#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite — all offline.
# Run from anywhere; works with no network and no crates registry.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "== durability gate (fault-injection + truncation fuzz, fast mode)"
cargo test -q -p jackpine --test durability --offline

echo "tier-1 green"
