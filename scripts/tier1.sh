#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite — all offline.
# Run from anywhere; works with no network and no crates registry.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "== durability gate (fault-injection + truncation fuzz, fast mode)"
cargo test -q -p jackpine --test durability --offline

echo "== observability gate (golden traces + metrics invariants)"
cargo test -q -p jackpine --test observability --offline
grep -q '#!\[forbid(unsafe_code)\]' crates/obs/src/lib.rs \
  || { echo "crates/obs must forbid unsafe_code"; exit 1; }

echo "== repro --trace smoke (every micro query emits a trace)"
cargo run --release --offline -p jackpine-bench --bin repro -- \
  --scale 0.01 --reps 1 --trace --metrics-json /tmp/jackpine_metrics.json t1 \
  > /tmp/jackpine_trace.txt
grep -q 'stage plan' /tmp/jackpine_trace.txt \
  || { echo "repro --trace emitted no stage lines"; exit 1; }
python3 -c "import json; json.load(open('/tmp/jackpine_metrics.json'))" 2>/dev/null \
  || { echo "--metrics-json wrote invalid JSON"; exit 1; }

echo "tier-1 green"
