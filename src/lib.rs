//! # jackpine
//!
//! Rust reproduction of **Jackpine: a benchmark to evaluate spatial
//! database performance** (Ray, Simion & Demke Brown, ICDE 2011), as a
//! complete, self-contained stack:
//!
//! * [`geom`] — computational-geometry kernel (Simple Features model,
//!   WKT/WKB, robust predicates, measures, overlay, buffering),
//! * [`topo`] — DE-9IM intersection matrices and the named topological
//!   predicates,
//! * [`index`] — R\*-tree, grid and ordered indexes,
//! * [`obs`] — the query-observability layer: engine counters, stage
//!   histograms and per-query traces,
//! * [`storage`] — slotted-page heaps, schemas and the catalog,
//! * [`sql`] — the SQL front end (parser, planner, executor),
//! * [`engine`] — the three benchmarked engine profiles behind the
//!   [`engine::SpatialConnector`] portability trait,
//! * [`datagen`] — the deterministic TIGER-like dataset generator,
//! * [`mod@bench`] — the benchmark itself: micro suites, macro scenarios,
//!   driver, feature matrix and reporting.
//!
//! ## Quick start
//!
//! ```
//! use jackpine::engine::{EngineProfile, SpatialDb, SpatialConnector};
//! use std::sync::Arc;
//!
//! let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
//! db.execute("CREATE TABLE parks (id BIGINT, geom GEOMETRY)").unwrap();
//! db.execute("INSERT INTO parks VALUES (1, \
//!     ST_GeomFromText('POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))'))").unwrap();
//! let r = db.execute("SELECT COUNT(*) FROM parks WHERE \
//!     ST_Contains(geom, ST_GeomFromText('POINT (1 1)'))").unwrap();
//! assert_eq!(r.scalar().unwrap().to_string(), "1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jackpine_core as bench;
pub use jackpine_datagen as datagen;
pub use jackpine_engine as engine;
pub use jackpine_geom as geom;
pub use jackpine_index as index;
pub use jackpine_obs as obs;
pub use jackpine_sqlmini as sql;
pub use jackpine_storage as storage;
pub use jackpine_topo as topo;
