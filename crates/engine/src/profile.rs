//! Engine profiles: the three systems the benchmark compares.

use jackpine_sqlmini::FunctionMode;

/// Which spatial-database behaviour a [`crate::SpatialDb`] instance
/// exhibits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineProfile {
    /// PostGIS-like: R\*-tree index, exact filter-refine predicates, full
    /// function set.
    ExactRtree,
    /// MySQL-like (paper era): R-tree index but predicates evaluated on
    /// MBRs only, several analysis functions unavailable.
    MbrOnly,
    /// Commercial-like ("DBMS X"): fixed-grid tessellation index, exact
    /// predicates, full function set.
    ExactGrid,
}

impl EngineProfile {
    /// All profiles, in the order results are reported.
    pub const ALL: [EngineProfile; 3] =
        [EngineProfile::ExactRtree, EngineProfile::MbrOnly, EngineProfile::ExactGrid];

    /// Human-readable name used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineProfile::ExactRtree => "exact-rtree",
            EngineProfile::MbrOnly => "mbr-only",
            EngineProfile::ExactGrid => "exact-grid",
        }
    }

    /// The system this profile stands in for.
    pub fn models(self) -> &'static str {
        match self {
            EngineProfile::ExactRtree => "PostgreSQL/PostGIS (GiST R-tree)",
            EngineProfile::MbrOnly => "MySQL 5.x spatial (MBR semantics)",
            EngineProfile::ExactGrid => "commercial DBMS X (grid tessellation)",
        }
    }

    /// Function-evaluation semantics.
    pub fn function_mode(self) -> FunctionMode {
        match self {
            EngineProfile::MbrOnly => FunctionMode::MbrOnly,
            _ => FunctionMode::Exact,
        }
    }

    /// Whether the profile indexes with a grid rather than an R-tree.
    pub fn uses_grid_index(self) -> bool {
        matches!(self, EngineProfile::ExactGrid)
    }
}

impl std::fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_metadata() {
        assert_eq!(EngineProfile::ALL.len(), 3);
        assert_eq!(EngineProfile::ExactRtree.function_mode(), FunctionMode::Exact);
        assert_eq!(EngineProfile::MbrOnly.function_mode(), FunctionMode::MbrOnly);
        assert!(EngineProfile::ExactGrid.uses_grid_index());
        assert!(!EngineProfile::ExactRtree.uses_grid_index());
        assert_eq!(EngineProfile::MbrOnly.to_string(), "mbr-only");
    }
}
