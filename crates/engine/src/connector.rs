//! The portability layer: Jackpine drives any backend through this trait,
//! the way the original harness drove any database with a JDBC driver.
//!
//! Sessions: a connector is `Send + Sync` and every method is `&self`,
//! so each benchmark client thread simply shares the connector — the
//! engine gives every SELECT an MVCC snapshot (readers never block on
//! writers) and serializes DML statements through its internal writer
//! lock with group-committed WAL fsyncs, so multi-session scenarios
//! (F4/F8 and the `mvcc/` bench entries) need no per-thread connection
//! objects or external locking.

use crate::{EngineProfile, Result, SpatialDb};
use jackpine_obs::{FingerprintStats, MetricsSnapshot, QueryTrace};
use jackpine_sqlmini::ResultSet;
use std::sync::Arc;
use std::time::Duration;

/// A benchmarkable spatial database connection.
///
/// The benchmark core is written exclusively against this trait; adding a
/// new system to the comparison means implementing these five methods.
pub trait SpatialConnector: Send + Sync {
    /// Short system name used in reports.
    fn name(&self) -> String;

    /// Executes one SQL statement.
    fn execute(&self, sql: &str) -> Result<ResultSet>;

    /// Whether the system supports a given spatial function (the
    /// feature-matrix probe).
    fn supports_function(&self, function: &str) -> bool;

    /// Drops whatever caches the system keeps, to produce cold-cache runs.
    fn clear_caches(&self);

    /// Turns use of spatial indexes on or off, where the system allows it.
    fn set_use_spatial_index(&self, on: bool);

    /// Sets the intra-query worker count, where the system allows it
    /// (`0` = system default, `1` = serial). Systems without intra-query
    /// parallelism ignore the call.
    fn set_workers(&self, _workers: usize) {}

    /// The intra-query worker count currently in effect.
    fn workers(&self) -> usize {
        1
    }

    /// Enables crash-safe durability (atomic snapshot + write-ahead log
    /// under `dir`, fsync per append when `sync`), or disables it with
    /// `None`. Systems without a durable path ignore the call.
    fn set_durability(&self, _dir: Option<&std::path::Path>, _sync: bool) -> Result<()> {
        Ok(())
    }

    /// The active durability directory, if durability is enabled.
    fn durability_dir(&self) -> Option<std::path::PathBuf> {
        None
    }

    /// Executes one SQL statement and returns its query trace (per-stage
    /// timings plus the engine-counter delta) alongside the result.
    /// Systems without tracing return `None` for the trace.
    fn execute_traced(&self, sql: &str) -> Result<(ResultSet, Option<QueryTrace>)> {
        self.execute(sql).map(|r| (r, None))
    }

    /// A point-in-time copy of the system's engine metrics, when it
    /// exposes any.
    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Prometheus text-exposition (`/metrics`-style) rendering of the
    /// system's metrics, when it exposes any.
    fn prometheus_text(&self) -> Option<String> {
        None
    }

    /// The most recent completed query traces from the system's flight
    /// recorder, oldest first. Systems without one return nothing.
    fn recent_traces(&self) -> Vec<Arc<QueryTrace>> {
        Vec::new()
    }

    /// Retained slow-query traces, oldest first.
    fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        Vec::new()
    }

    /// Sets the slow-query threshold, where the system has a slow log.
    fn set_slow_query_threshold(&self, _threshold: Duration) {}

    /// Top `k` statement shapes by execution count with per-fingerprint
    /// rolling stats, where the system fingerprints statements.
    fn query_stats(&self, _k: usize) -> Vec<FingerprintStats> {
        Vec::new()
    }

    /// Turns retrospective recording (flight recorder, slow log,
    /// fingerprint stats) on or off, where the system supports it.
    fn set_flight_recorder(&self, _on: bool) {}

    /// Sizes the system's buffer pool in bytes (`0` = unbounded), for
    /// out-of-core runs. Systems without a pool ignore the call.
    fn set_pool_bytes(&self, _bytes: usize) {}

    /// Selects the pool's frame-replacement policy by name (`"clock"`,
    /// `"lru-k"`), where the system has one. Unknown names are ignored.
    fn set_replacement_policy(&self, _policy: &str) {}

    /// Releases the connection's resources: flushes buffered state and
    /// reclaims deferred work (e.g. a final index vacuum). Idempotent;
    /// a default-noop for systems without buffered state.
    fn close(&self) -> Result<()> {
        Ok(())
    }
}

impl SpatialConnector for Arc<SpatialDb> {
    fn name(&self) -> String {
        self.profile().name().to_string()
    }

    fn execute(&self, sql: &str) -> Result<ResultSet> {
        SpatialDb::execute(self, sql)
    }

    fn supports_function(&self, function: &str) -> bool {
        self.profile().function_mode().supports(function)
    }

    fn clear_caches(&self) {
        SpatialDb::clear_caches(self)
    }

    fn set_use_spatial_index(&self, on: bool) {
        SpatialDb::set_use_spatial_index(self, on)
    }

    fn set_workers(&self, workers: usize) {
        SpatialDb::set_workers(self, workers)
    }

    fn workers(&self) -> usize {
        SpatialDb::workers(self)
    }

    fn set_durability(&self, dir: Option<&std::path::Path>, sync: bool) -> Result<()> {
        SpatialDb::set_durability(self, dir, crate::DurabilityOptions { sync_each_append: sync })
    }

    fn durability_dir(&self) -> Option<std::path::PathBuf> {
        SpatialDb::durability_dir(self)
    }

    fn execute_traced(&self, sql: &str) -> Result<(ResultSet, Option<QueryTrace>)> {
        SpatialDb::execute_traced(self, sql).map(|(r, t)| (r, Some(t)))
    }

    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        Some(SpatialDb::metrics_snapshot(self))
    }

    fn prometheus_text(&self) -> Option<String> {
        Some(SpatialDb::prometheus_text(self))
    }

    fn recent_traces(&self) -> Vec<Arc<QueryTrace>> {
        SpatialDb::recent_traces(self)
    }

    fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        SpatialDb::slow_queries(self)
    }

    fn set_slow_query_threshold(&self, threshold: Duration) {
        SpatialDb::set_slow_query_threshold(self, threshold)
    }

    fn query_stats(&self, k: usize) -> Vec<FingerprintStats> {
        SpatialDb::query_stats(self, k)
    }

    fn set_flight_recorder(&self, on: bool) {
        SpatialDb::set_flight_recorder(self, on)
    }

    fn set_pool_bytes(&self, bytes: usize) {
        SpatialDb::set_pool_bytes(self, bytes)
    }

    fn set_replacement_policy(&self, policy: &str) {
        if let Some(p) = jackpine_storage::ReplacementPolicy::parse(policy) {
            SpatialDb::set_replacement_policy(self, p)
        }
    }

    fn close(&self) -> Result<()> {
        SpatialDb::close(self)
    }
}

/// Convenience: a ready connection for each engine profile.
pub fn all_profiles() -> Vec<Arc<SpatialDb>> {
    EngineProfile::ALL.iter().map(|p| Arc::new(SpatialDb::new(*p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connector_surface() {
        let db = Arc::new(SpatialDb::new(EngineProfile::MbrOnly));
        let conn: &dyn SpatialConnector = &db;
        assert_eq!(conn.name(), "mbr-only");
        assert!(!conn.supports_function("ST_Buffer"));
        assert!(conn.supports_function("ST_Intersects"));
        conn.execute("CREATE TABLE t (id BIGINT)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
        let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], jackpine_storage::Value::Int(1));
        conn.clear_caches();
        conn.set_use_spatial_index(false);
    }

    #[test]
    fn three_profiles() {
        let all = all_profiles();
        assert_eq!(all.len(), 3);
        let names: Vec<String> = all.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["exact-rtree", "mbr-only", "exact-grid"]);
    }
}
