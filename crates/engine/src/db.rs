//! The `SpatialDb` facade: catalog + heaps + indexes + SQL, under one
//! engine profile.

use crate::commit::CommitPipeline;
use crate::syscat;
use crate::wal::{Wal, WalRecord};
use crate::EngineProfile;
use jackpine_geom::{Coord, Envelope};
use jackpine_index::{GridIndex, LeafPager, OrderedIndex, ProbeStats, RTree, RTreeConfig};
use jackpine_obs::{
    digest, EngineMetrics, FingerprintStats, FlightRecorder, HistoryPoint, MetricsHistory,
    MetricsSnapshot, QueryStatsTable, QueryTrace, SlowQueryLog, Stage, TxnSite,
};
use jackpine_sqlmini::ast::Statement;
use jackpine_sqlmini::plan::PlanOptions;
use jackpine_sqlmini::provider::{CatalogProvider, SnapshotHandle, TableProvider};
use jackpine_sqlmini::{exec, parser, plan, PreparedCache, ResultSet, SqlError};
use jackpine_storage::sync::{Mutex, RwLock};
use jackpine_storage::{
    BufferPool, Catalog, ColumnDef, DataType, PoolStats, ReplacementPolicy, Row, RowId, Schema,
    StorageError, Table, Value,
};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by [`SpatialDb`].
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// SQL front-end error.
    Sql(SqlError),
    /// Storage error.
    Storage(StorageError),
    /// Index management error (bad column, wrong type, duplicate index).
    Index(String),
    /// Persistence error: snapshot/WAL I/O failure or on-disk corruption
    /// (bad magic, checksum mismatch, truncated file). Distinct from
    /// [`EngineError::Index`] so callers can tell storage failures from
    /// index failures.
    Persist(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Index(m) => write!(f, "index error: {m}"),
            EngineError::Persist(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}
impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// A spatial index over one geometry column.
enum SpatialIdx {
    Rtree(RTree<RowId>),
    Grid(GridIndex<RowId>),
}

/// [`LeafPager`] backed by the engine's shared buffer pool: each R-tree
/// leaf serializes into slot 0 of its own pool page, so spilled leaves
/// compete for frames with heap pages under one capacity budget (and
/// show up in the same pin/eviction counters).
#[derive(Debug)]
struct PoolLeafPager {
    pool: Arc<BufferPool>,
    file: u64,
}

/// Pool page-file name for a spatial index's spilled leaves.
fn leaf_file_name(table: &str, col: usize) -> String {
    format!("idx-{}-{col}", table.to_ascii_lowercase())
}

impl LeafPager for PoolLeafPager {
    fn write(&self, leaf: u64, bytes: &[u8]) {
        let pin = self.pool.pin(self.file, leaf as u32);
        let mut guard = pin.write();
        *guard = jackpine_storage::page::Page::new();
        guard.insert(bytes);
    }

    fn read(&self, leaf: u64) -> Option<Vec<u8>> {
        let pin = self.pool.pin(self.file, leaf as u32);
        let guard = pin.read();
        guard.get(0).ok().map(|b| b.to_vec())
    }
}

impl SpatialIdx {
    fn insert(&mut self, env: Envelope, id: RowId) {
        match self {
            SpatialIdx::Rtree(t) => t.insert(env, id),
            SpatialIdx::Grid(g) => g.insert(env, id),
        }
    }

    /// Window query that also reports how much work the probe did
    /// (nodes/cells inspected, candidates emitted).
    fn window_probe(&self, env: &Envelope) -> (Vec<RowId>, ProbeStats) {
        let mut out = Vec::new();
        let stats = match self {
            SpatialIdx::Rtree(t) => t.query_window_probe(env, |_, v| out.push(*v)),
            SpatialIdx::Grid(g) => g.query_window_probe(env, |_, v| out.push(*v)),
        };
        (out, stats)
    }

    fn nearest_probe(&self, q: Coord, k: usize) -> (Vec<RowId>, ProbeStats) {
        let (hits, stats) = match self {
            SpatialIdx::Rtree(t) => t.nearest_probe(q, k),
            SpatialIdx::Grid(g) => g.nearest_probe(q, k),
        };
        (hits.into_iter().map(|(_, v)| v).collect(), stats)
    }

    fn remove(&mut self, env: &Envelope, id: RowId) {
        match self {
            SpatialIdx::Rtree(t) => {
                t.remove(env, |v| *v == id);
            }
            SpatialIdx::Grid(g) => {
                g.remove(env, |v| *v == id);
            }
        }
    }
}

/// Ordered-index key: the orderable subset of [`Value`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Int(i64),
    Text(String),
}

impl Key {
    fn from_value(v: &Value) -> Option<Key> {
        match v {
            Value::Int(i) => Some(Key::Int(*i)),
            Value::Text(s) => Some(Key::Text(s.clone())),
            _ => None,
        }
    }
}

/// Per-table index bookkeeping.
#[derive(Default)]
struct TableIndexes {
    spatial: HashMap<usize, SpatialIdx>,
    ordered: HashMap<usize, OrderedIndex<Key, RowId>>,
}

/// File name of the atomic snapshot inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.jkpn";
/// File name of the write-ahead log inside a durability directory.
pub const WAL_FILE: &str = "wal.jkwl";

/// Tuning knobs for crash-safe durability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// fsync the write-ahead log after every append. Off by default:
    /// the benchmark's crash model is torn files, not lost page cache,
    /// and per-append fsync dominates insert latency.
    pub sync_each_append: bool,
}

/// Attached durability: the open WAL, the directory its snapshot lives
/// in, and the current generation — the stamp shared by the snapshot
/// and the WAL cut against it. (The fsync policy lives inside the
/// [`Wal`].)
struct DurabilityState {
    wal: Wal,
    dir: PathBuf,
    generation: u64,
}

/// Fingerprint-cache entry: `(fingerprint, normalized shape, last-hit
/// tick)` for one raw statement text.
type FingerprintEntry = (u64, Arc<str>, Arc<AtomicU64>);

/// An embedded spatial database instance under one [`EngineProfile`].
pub struct SpatialDb {
    profile: EngineProfile,
    catalog: Catalog,
    indexes: RwLock<HashMap<String, TableIndexes>>,
    use_spatial_index: RwLock<bool>,
    /// Prepared-plan cache keyed by SQL text. Entries are stamped with
    /// the DDL generation they were planned under and lazily discarded
    /// when it moves on — DML never touches the cache (generation-keyed
    /// instead of coarsely cleared). Mirrors the prepared-statement
    /// caches of the systems under benchmark.
    plan_cache: RwLock<HashMap<String, (u64, Arc<jackpine_sqlmini::plan::PlannedSelect>)>>,
    plan_cache_enabled: RwLock<bool>,
    plan_cache_hits: std::sync::atomic::AtomicU64,
    plan_cache_misses: std::sync::atomic::AtomicU64,
    /// Intra-query worker threads for the morsel executor and parallel
    /// index builds. Defaults to the machine's available parallelism;
    /// `1` means fully serial execution.
    workers: std::sync::atomic::AtomicUsize,
    /// Crash-safe durability (snapshot + WAL), when attached.
    ///
    /// Lock order: this lock is always taken *before* `indexes`, the
    /// plan cache, or any heap lock, never after.
    durability: RwLock<Option<DurabilityState>>,
    /// Engine-wide observability registry: every counter and stage
    /// histogram this instance records into, shared with the executor,
    /// the WAL, and the provider adapters.
    metrics: Arc<EngineMetrics>,
    /// Always-on flight recorder: the last N completed query traces.
    recorder: FlightRecorder,
    /// Threshold-gated view of the same stream: only slow queries.
    slow_log: SlowQueryLog,
    /// Per-fingerprint rolling statistics (`pg_stat_statements`-style).
    query_stats: QueryStatsTable,
    /// Master switch for retrospective recording (recorder + slow log +
    /// fingerprint stats). On by default; the off position is the
    /// overhead-ablation setting.
    recording: std::sync::atomic::AtomicBool,
    /// Raw-text → `(fingerprint, normalized shape, last-hit tick)` cache
    /// so repeat executions of the same statement text skip
    /// re-tokenization — benchmark loops re-run statements with multi-KB
    /// WKT literals. Keyed by an FNV-1a hash of the raw text; bounded by
    /// evicting the least-recently-hit quarter when full (the
    /// [`PreparedCache`] idiom), so a benchmark's hot statements survive
    /// a burst of one-off texts.
    fingerprint_cache: RwLock<HashMap<u64, FingerprintEntry>>,
    /// Monotone tick feeding the fingerprint cache's eviction stamps.
    fingerprint_tick: AtomicU64,
    /// Prepared-geometry cache shared with the executor's refine stage,
    /// keyed by heap-row identity. Row slots are never reused and
    /// entries pin the rows they were built from, so DML cannot
    /// invalidate them — the cache survives INSERT/UPDATE/DELETE and is
    /// only cleared on index/table drops (memory hygiene) and explicit
    /// cold runs.
    prepared_cache: Arc<PreparedCache>,
    /// Master switch for the prepared-geometry fast path (the
    /// `--prepared off` ablation). On by default.
    prepared_enabled: RwLock<bool>,
    /// Master switch for the vectorized batch executor (columnar MBR
    /// prefilter + selection-vector refine). On by default; off restores
    /// the row-at-a-time filter path for ablations and equivalence runs.
    vectorized_enabled: std::sync::atomic::AtomicBool,
    /// Rows per batch on the vectorized path; `0` means the executor
    /// default ([`jackpine_sqlmini::batch::DEFAULT_BATCH_SIZE`]).
    batch_size: std::sync::atomic::AtomicUsize,
    /// The newest published commit generation. A write transaction
    /// applies its changes stamped `commit_gen + 1` and *publishes* them
    /// by storing the new value — one atomic store makes the whole
    /// statement visible, so readers never observe half a statement.
    commit_gen: AtomicU64,
    /// The writer lock: one mutating statement at a time. Readers never
    /// take it — they pin a snapshot generation instead.
    ///
    /// Lock order: `durability` (read) before `txn` before
    /// `snapshots`/`indexes`/heap locks.
    txn: Mutex<()>,
    /// Pinned snapshot generations → reader refcount plus first-pin
    /// time. The minimum key is the vacuum horizon: no logically-deleted
    /// row younger than it can be physically reclaimed.
    snapshots: Mutex<HashMap<u64, SnapshotEntry>>,
    /// Logically-deleted rows awaiting physical reclaim (index-entry
    /// removal + heap tombstone) once every snapshot that could see them
    /// is gone. Drained at the start of the next write transaction.
    pending_reclaim: Mutex<Vec<PendingReclaim>>,
    /// Bumped by every DDL change (create/drop table or index, planner
    /// toggles); stamps plan-cache entries.
    ddl_gen: AtomicU64,
    /// Group-commit pipeline batching WAL fsyncs across sessions.
    commit_pipeline: CommitPipeline,
    /// In-flight statements, keyed by a monotone session id — the rows
    /// of `jp_sessions`. Entries are registered for the duration of one
    /// recorded `execute` call.
    sessions: Mutex<HashMap<u64, SessionInfo>>,
    /// Monotone id feeding the session registry.
    session_seq: AtomicU64,
    /// Time-series ring of whole-engine metrics snapshots sampled at a
    /// configurable minimum interval — the rows of `jp_metrics_history`.
    history: MetricsHistory,
}

/// Book-keeping for one pinned snapshot generation.
struct SnapshotEntry {
    /// Live reader pins on this generation.
    readers: usize,
    /// When the generation was first pinned; drives the
    /// oldest-snapshot-age gauge and `jp_snapshots.age_ms`.
    first_pinned: Instant,
}

/// One in-flight statement in the session registry.
struct SessionInfo {
    /// Statement text, truncated to [`SESSION_SQL_MAX`] bytes.
    sql: String,
    /// When execution began.
    started: Instant,
}

/// A logically-deleted row whose physical storage (heap bytes + index
/// entries) survives until no snapshot can see it.
struct PendingReclaim {
    table: String,
    id: RowId,
    died: u64,
}

/// Traces retained by the default flight recorder.
pub const FLIGHT_RECORDER_CAPACITY: usize = 256;
/// Slow traces retained by the default slow-query log.
pub const SLOW_LOG_CAPACITY: usize = 64;
/// Default slow-query threshold. Warm micro queries run in microseconds
/// to low milliseconds, so 100 ms marks genuinely pathological
/// statements without admitting ordinary cold-cache noise.
pub const SLOW_QUERY_THRESHOLD: Duration = Duration::from_millis(100);
/// Distinct statement shapes tracked by the fingerprint stats table.
pub const QUERY_STATS_CAPACITY: usize = 512;
/// Metrics snapshots retained by the `jp_metrics_history` ring.
pub const METRICS_HISTORY_CAPACITY: usize = 64;
/// Default minimum interval between metrics-history points.
pub const METRICS_HISTORY_INTERVAL: Duration = Duration::from_secs(1);
/// Longest statement text retained per session-registry entry.
const SESSION_SQL_MAX: usize = 512;
/// Raw statement texts cached for fingerprint reuse.
const FINGERPRINT_CACHE_CAPACITY: usize = 1024;
/// When the fingerprint cache fills, the least-recently-hit
/// `1/FINGERPRINT_EVICT_DENOMINATOR` of its entries is dropped.
const FINGERPRINT_EVICT_DENOMINATOR: usize = 4;

impl SpatialDb {
    /// Creates an empty database under the given profile.
    pub fn new(profile: EngineProfile) -> SpatialDb {
        SpatialDb {
            profile,
            catalog: Catalog::new(),
            indexes: RwLock::new(HashMap::new()),
            use_spatial_index: RwLock::new(true),
            plan_cache: RwLock::new(HashMap::new()),
            plan_cache_enabled: RwLock::new(true),
            plan_cache_hits: std::sync::atomic::AtomicU64::new(0),
            plan_cache_misses: std::sync::atomic::AtomicU64::new(0),
            workers: std::sync::atomic::AtomicUsize::new(default_workers()),
            durability: RwLock::new(None),
            metrics: Arc::new(EngineMetrics::new()),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            slow_log: SlowQueryLog::new(SLOW_LOG_CAPACITY, SLOW_QUERY_THRESHOLD),
            query_stats: QueryStatsTable::new(QUERY_STATS_CAPACITY),
            recording: std::sync::atomic::AtomicBool::new(true),
            fingerprint_cache: RwLock::new(HashMap::new()),
            fingerprint_tick: AtomicU64::new(0),
            prepared_cache: Arc::new(PreparedCache::new()),
            prepared_enabled: RwLock::new(true),
            vectorized_enabled: std::sync::atomic::AtomicBool::new(true),
            batch_size: std::sync::atomic::AtomicUsize::new(0),
            commit_gen: AtomicU64::new(0),
            txn: Mutex::new(()),
            snapshots: Mutex::new(HashMap::new()),
            pending_reclaim: Mutex::new(Vec::new()),
            ddl_gen: AtomicU64::new(0),
            commit_pipeline: CommitPipeline::new(),
            sessions: Mutex::new(HashMap::new()),
            session_seq: AtomicU64::new(0),
            history: MetricsHistory::new(METRICS_HISTORY_CAPACITY, METRICS_HISTORY_INTERVAL),
        }
    }

    /// Opens (or creates) a crash-safe database under `dir`: loads the
    /// atomic snapshot if one exists, replays every intact write-ahead-log
    /// record on top of it, then checkpoints — folding the replayed tail
    /// into a fresh snapshot and truncating the log — so recovery is
    /// idempotent. `profile` is used only when the directory holds no
    /// snapshot yet; otherwise the stored profile wins.
    ///
    /// A crash at *any* byte offset of a snapshot save or WAL append
    /// leaves this returning a consistent state: the snapshot is replaced
    /// atomically (old or new, never torn), a torn or bit-flipped WAL
    /// tail is detected by its checksum and dropped, and a WAL whose
    /// generation does not match the snapshot's (a crash between a
    /// checkpoint's snapshot rename and its log truncation) is discarded
    /// rather than replayed — its records are already in the snapshot.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        profile: EngineProfile,
        opts: DurabilityOptions,
    ) -> crate::Result<Arc<SpatialDb>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::Persist(format!("create durability dir: {e}")))?;
        let snap = dir.join(SNAPSHOT_FILE);
        let (db, snap_gen) = if snap.exists() {
            SpatialDb::open_gen(&snap)?
        } else {
            (Arc::new(SpatialDb::new(profile)), 0)
        };
        let replay = Wal::replay(dir.join(WAL_FILE))?;
        if replay.generation == snap_gen {
            for rec in replay.records {
                db.apply_wal_record(rec)?;
            }
        }
        // Checkpoint: replayed writes become part of the snapshot and
        // the log restarts empty. The snapshot (at the next generation)
        // lands first, so a crash before the fresh WAL exists leaves a
        // stale log whose generation no longer matches — harmless.
        let gen = snap_gen.max(replay.generation) + 1;
        db.save_gen(&snap, gen)?;
        let mut wal = Wal::create(dir.join(WAL_FILE), opts.sync_each_append, gen)?;
        wal.set_metrics(db.metrics.clone());
        *db.durability.write() =
            Some(DurabilityState { wal, dir: dir.to_path_buf(), generation: gen });
        Ok(db)
    }

    /// Attaches durability to an already-loaded database: writes a
    /// snapshot under `dir` and opens a fresh WAL that every subsequent
    /// `CREATE TABLE`, `INSERT` and `CREATE INDEX` appends to. `None`
    /// detaches, returning the instance to purely in-memory operation.
    pub fn set_durability(&self, dir: Option<&Path>, opts: DurabilityOptions) -> crate::Result<()> {
        match dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| EngineError::Persist(format!("create durability dir: {e}")))?;
                // Take the write lock first so no write sneaks between
                // the snapshot and the fresh log.
                let mut guard = self.durability.write();
                // Stamp past anything already in the directory, so that
                // a crash between the snapshot and the fresh WAL cannot
                // leave a stale log whose generation collides with the
                // new snapshot's.
                let snap = dir.join(SNAPSHOT_FILE);
                let gen = SpatialDb::peek_snapshot_generation(&snap)
                    .max(Wal::peek_generation(dir.join(WAL_FILE)))
                    + 1;
                self.save_gen(&snap, gen)?;
                let mut wal = Wal::create(dir.join(WAL_FILE), opts.sync_each_append, gen)?;
                wal.set_metrics(self.metrics.clone());
                *guard = Some(DurabilityState { wal, dir: dir.to_path_buf(), generation: gen });
            }
            None => *self.durability.write() = None,
        }
        Ok(())
    }

    /// The durability directory, when durability is attached.
    pub fn durability_dir(&self) -> Option<PathBuf> {
        self.durability.read().as_ref().map(|d| d.dir.clone())
    }

    /// Folds all logged writes into a fresh atomic snapshot and truncates
    /// the WAL. A no-op without attached durability.
    ///
    /// Runs automatically after `DROP TABLE` and index drops: drops have
    /// no WAL record shape, so the snapshot is re-cut instead. (DML no
    /// longer needs this — `INSERT`, `DELETE` and `UPDATE` all log
    /// records and commit through the group pipeline.)
    ///
    /// Crash-atomic: the new snapshot carries the next generation and
    /// replaces the old one atomically *before* the log is truncated to
    /// that same generation. A crash between the two leaves the new
    /// snapshot next to the old log — whose generation no longer
    /// matches, so recovery discards it instead of replaying records
    /// the snapshot already contains.
    pub fn checkpoint(&self) -> crate::Result<()> {
        let mut guard = self.durability.write();
        if let Some(d) = guard.as_mut() {
            // The writer lock keeps a mid-apply (unpublished) statement
            // out of the snapshot; the durability write lock above
            // already excludes committed-but-unsynced frames, since
            // committing sessions hold the read side end to end.
            let (_txn, waited) = self.txn.lock_timed();
            self.metrics.record_txn_wait(TxnSite::Checkpoint, waited);
            // A checkpoint is a natural vacuum point: any row whose
            // death no pinned snapshot can still see is reclaimed now,
            // so the snapshot being cut never re-persists it.
            self.vacuum_locked();
            let gen = d.generation + 1;
            self.save_gen(d.dir.join(SNAPSHOT_FILE), gen)?;
            d.wal.reset(gen)?;
            d.generation = gen;
        }
        Ok(())
    }

    /// Applies one replayed WAL record. Replay runs before a WAL is
    /// attached and before any concurrent session exists, so records
    /// apply through unlogged, generation-free paths (rows are reborn
    /// visible-everywhere; the snapshot that follows settles them).
    fn apply_wal_record(self: &Arc<Self>, rec: WalRecord) -> crate::Result<()> {
        match rec {
            WalRecord::CreateTable { name, columns } => self.create_table(&name, columns),
            WalRecord::Insert { table, row } => self.replay_insert(&table, row),
            WalRecord::Delete { table, row } => self.replay_delete(&table, &row),
            WalRecord::CreateSpatialIndex { table, column } => {
                self.create_spatial_index(&table, &column)
            }
            WalRecord::CreateOrderedIndex { table, column } => {
                self.create_ordered_index(&table, &column)
            }
            WalRecord::InsertAt { table, id, row } => self.replay_insert_at(&table, id, row),
            WalRecord::DeleteId { table, id } => self.replay_delete_id(&table, id),
        }
    }

    /// Replays a logged insert: heap + indexes, no WAL, no generation
    /// stamp.
    fn replay_insert(&self, table: &str, row: Row) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        let id = t.heap.insert(row.clone())?;
        self.index_insert_entries(table, id, &row);
        Ok(())
    }

    /// Replays a logged delete. The victim is matched by encoded row
    /// bytes — row ids are assigned afresh on snapshot load, so they are
    /// not stable across restarts, but the byte encoding is canonical
    /// (and makes NaN coordinates compare equal). A missing match means
    /// the record's effect is already in the snapshot; replay tolerates
    /// it, keeping recovery idempotent.
    fn replay_delete(&self, table: &str, row: &Row) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        let target = Value::encode_row(row);
        let mut found: Option<RowId> = None;
        t.heap.scan(|id, r| {
            if found.is_none() && Value::encode_row(r) == target {
                found = Some(id);
            }
        })?;
        if let Some(id) = found {
            let victim = t.heap.get(id)?;
            self.index_remove_entries(table, id, &victim);
            t.heap.delete(id);
        }
        Ok(())
    }

    /// Replays a v4 logged insert: the row returns to the exact heap
    /// slot it occupied when logged, so later `DeleteId` records (and
    /// index entries) address the right row even when the table holds
    /// byte-identical duplicates. The snapshot the WAL was cut against
    /// is a v4 image, so every pre-existing row already sits at its
    /// recorded address.
    fn replay_insert_at(&self, table: &str, id: RowId, row: Row) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        t.heap.place_at(row.clone(), id, 0)?;
        self.index_insert_entries(table, id, &row);
        Ok(())
    }

    /// Replays a v4 logged delete by heap address. A missing row means
    /// the record's effect is already reflected; replay tolerates it,
    /// keeping recovery idempotent.
    fn replay_delete_id(&self, table: &str, id: RowId) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        if let Ok(victim) = t.heap.get(id) {
            self.index_remove_entries(table, id, &victim);
            t.heap.delete(id);
        }
        Ok(())
    }

    /// Places a row at its recorded heap address during snapshot load
    /// (format v4). Unlogged, visible-everywhere — the reload analogue
    /// of [`SpatialDb::insert_row`] minus id allocation.
    pub(crate) fn place_row(&self, table: &str, id: RowId, row: Row) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        t.heap.place_at(row, id, 0)?;
        Ok(())
    }

    /// Sets the intra-query worker count. `0` restores the default
    /// (available parallelism); `1` forces serial execution. Results are
    /// bit-identical at any setting — only wall-clock changes.
    pub fn set_workers(&self, workers: usize) {
        let w = if workers == 0 { default_workers() } else { workers };
        self.workers.store(w, std::sync::atomic::Ordering::Relaxed);
    }

    /// The current intra-query worker count.
    pub fn workers(&self) -> usize {
        self.workers.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn exec_options(&self) -> exec::ExecOptions {
        let prepared =
            if *self.prepared_enabled.read() { Some(self.prepared_cache.clone()) } else { None };
        exec::ExecOptions {
            workers: self.workers(),
            metrics: Some(self.metrics.clone()),
            prepared,
            vectorized: self.vectorized_enabled(),
            batch_size: self.batch_size(),
            snapshot: None,
        }
    }

    /// Enables or disables the vectorized batch executor (ablation
    /// switch). Results are bit-identical either way — only the filter
    /// execution strategy changes.
    pub fn set_vectorized(&self, on: bool) {
        self.vectorized_enabled.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the vectorized batch executor is on.
    pub fn vectorized_enabled(&self) -> bool {
        self.vectorized_enabled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Sets the vectorized path's rows-per-batch. `0` restores the
    /// executor default. Results are bit-identical at any setting.
    pub fn set_batch_size(&self, rows: usize) {
        self.batch_size.store(rows, std::sync::atomic::Ordering::Relaxed);
    }

    /// The current rows-per-batch setting.
    pub fn batch_size(&self) -> usize {
        match self.batch_size.load(std::sync::atomic::Ordering::Relaxed) {
            0 => jackpine_sqlmini::batch::DEFAULT_BATCH_SIZE,
            n => n,
        }
    }

    /// Enables or disables the prepared-geometry fast path (ablation
    /// switch). Disabling also drops every cached preparation.
    pub fn set_prepared(&self, on: bool) {
        *self.prepared_enabled.write() = on;
        self.prepared_cache.clear();
    }

    /// Whether the prepared-geometry fast path is on.
    pub fn prepared_enabled(&self) -> bool {
        *self.prepared_enabled.read()
    }

    /// Live entries in the prepared-geometry cache (invalidation tests).
    pub fn prepared_cache_len(&self) -> usize {
        self.prepared_cache.len()
    }

    /// The engine's observability registry (shared, always-on).
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// A point-in-time copy of every engine counter, gauge and
    /// histogram. Gauges (vacuum backlog, pinned snapshots, oldest-pin
    /// age) are refreshed from engine state first.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.refresh_gauges();
        self.metrics.snapshot()
    }

    /// Refreshes the point-in-time gauges from engine state: the vacuum
    /// backlog, the number of distinct pinned snapshot generations, the
    /// age of the oldest pin, and the buffer pool's frame occupancy and
    /// lifetime counters. Two short mutex acquisitions.
    fn refresh_gauges(&self) {
        self.metrics.pending_reclaim_rows.set(self.pending_reclaim.lock().len() as u64);
        let snapshots = self.snapshots.lock();
        self.metrics.active_snapshots.set(snapshots.len() as u64);
        let oldest = snapshots.values().map(|e| e.first_pinned).min();
        drop(snapshots);
        self.metrics
            .oldest_snapshot_age_us
            .set(oldest.map(|t| t.elapsed().as_micros().min(u64::MAX as u128) as u64).unwrap_or(0));
        let pool = self.catalog.pool().stats();
        self.metrics.pool_capacity_frames.set(pool.capacity_frames);
        self.metrics.pool_resident_frames.set(pool.resident_frames);
        self.metrics.pool_pinned_frames.set(pool.pinned_frames);
        self.metrics.pool_pin_hits.set(pool.pin_hits);
        self.metrics.pool_cold_pins.set(pool.cold_pins);
        self.metrics.pool_evictions.set(pool.evictions);
        self.metrics.pool_dirty_writebacks.set(pool.dirty_writebacks);
    }

    /// Prometheus text-exposition rendering of the current metrics
    /// (gauges refreshed), with every series labeled by the engine
    /// profile name. The output passes
    /// [`jackpine_obs::lint_prometheus_text`].
    pub fn prometheus_text(&self) -> String {
        jackpine_obs::prometheus_text(&[(self.profile.name(), &self.metrics_snapshot())])
    }

    /// The retained metrics-history points, oldest first — the rows of
    /// `jp_metrics_history`. Points are sampled after recorded
    /// statements, at most one per history interval.
    pub fn metrics_history(&self) -> Vec<HistoryPoint> {
        self.history.recent()
    }

    /// Sets the minimum interval between metrics-history points.
    /// `Duration::ZERO` samples after every recorded statement.
    pub fn set_metrics_history_interval(&self, interval: Duration) {
        self.history.set_interval(interval);
    }

    /// In-flight statements as `(session id, statement text, elapsed)`
    /// triples sorted by id — the rows of `jp_sessions`.
    pub fn active_sessions(&self) -> Vec<(u64, String, Duration)> {
        let sessions = self.sessions.lock();
        let mut out: Vec<(u64, String, Duration)> =
            sessions.iter().map(|(id, s)| (*id, s.sql.clone(), s.started.elapsed())).collect();
        drop(sessions);
        out.sort_unstable_by_key(|(id, ..)| *id);
        out
    }

    /// WAL status when durability is attached: `(generation,
    /// sync_each_append)` — the scalar half of `jp_wal`.
    pub fn wal_status(&self) -> Option<(u64, bool)> {
        self.durability.read().as_ref().map(|d| (d.generation, d.wal.sync_enabled()))
    }

    /// The engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Enables or disables spatial-index use by the planner (the F5
    /// indexing experiment's switch). Invalidates cached plans by
    /// advancing the DDL generation their stamps are checked against.
    pub fn set_use_spatial_index(&self, on: bool) {
        *self.use_spatial_index.write() = on;
        self.bump_ddl_gen();
    }

    /// Enables or disables the prepared-plan cache (ablation switch).
    pub fn set_plan_cache(&self, on: bool) {
        *self.plan_cache_enabled.write() = on;
        self.plan_cache.write().clear();
    }

    /// Advances the DDL generation, lazily invalidating every cached
    /// plan stamped under an older one.
    fn bump_ddl_gen(&self) {
        self.ddl_gen.fetch_add(1, Ordering::SeqCst);
    }

    /// `(hits, misses)` of the plan cache since creation.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.plan_cache_hits.load(Ordering::Relaxed),
            self.plan_cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Creates a table programmatically. Names with the `jp_` prefix are
    /// reserved for the system catalog.
    pub fn create_table(&self, name: &str, columns: Vec<ColumnDef>) -> crate::Result<()> {
        if syscat::is_system_table(name) {
            return Err(EngineError::Storage(StorageError::TableExists(format!(
                "{name} (the jp_ prefix is reserved for the system catalog)"
            ))));
        }
        // Held across apply + log so a concurrent checkpoint cannot cut
        // its snapshot between the two (which would replay this create
        // twice after a crash).
        let durability = self.durability.read();
        let (_txn, waited) = self.txn.lock_timed();
        self.metrics.record_txn_wait(TxnSite::Ddl, waited);
        let logged = durability.as_ref().map(|_| columns.clone());
        let schema = Schema::new(columns)?;
        self.catalog.create_table(name, schema)?;
        self.indexes.write().insert(name.to_ascii_lowercase(), TableIndexes::default());
        self.bump_ddl_gen();
        if let (Some(d), Some(columns)) = (durability.as_ref(), logged) {
            d.wal.append(&WalRecord::CreateTable { name: name.to_string(), columns })?;
        }
        Ok(())
    }

    /// Inserts a row programmatically, maintaining any indexes. One
    /// single-row write transaction: staged to the WAL before it is
    /// published, fsynced through the group-commit pipeline.
    pub fn insert_row(&self, table: &str, row: Row) -> crate::Result<RowId> {
        Ok(self.insert_rows_txn(table, &[row])?[0])
    }

    /// The write path for inserts: applies every row stamped with the
    /// next commit generation, stages one WAL record per row with a
    /// single frame write, and only then publishes the generation. A WAL
    /// failure rolls the whole statement back — heap and indexes — so
    /// the in-memory state never holds a phantom row the log missed.
    /// The fsync (when the WAL is in sync mode) batches with concurrent
    /// sessions through the commit pipeline, after the writer lock is
    /// released.
    fn insert_rows_txn(&self, table: &str, rows: &[Row]) -> crate::Result<Vec<RowId>> {
        let durability = self.durability.read();
        let (txn, waited) = self.txn.lock_timed();
        self.metrics.record_txn_wait(TxnSite::Insert, waited);
        self.vacuum_locked();
        let t = self.catalog.table(table)?;
        let gen = self.commit_gen.load(Ordering::Acquire) + 1;
        let mut inserted: Vec<RowId> = Vec::with_capacity(rows.len());
        let mut result: crate::Result<()> = Ok(());
        for row in rows {
            match t.heap.insert_at(row.clone(), gen) {
                Ok(id) => {
                    self.index_insert_entries(table, id, row);
                    inserted.push(id);
                }
                Err(e) => {
                    result = Err(e.into());
                    break;
                }
            }
        }
        if result.is_ok() {
            if let Some(d) = durability.as_ref() {
                let staged: Vec<WalRecord> = inserted
                    .iter()
                    .zip(rows)
                    .map(|(id, r)| WalRecord::InsertAt {
                        table: table.to_string(),
                        id: *id,
                        row: r.clone(),
                    })
                    .collect();
                result = d.wal.write_frames(&staged);
            }
        }
        match result {
            Ok(()) => {
                self.commit_gen.store(gen, Ordering::Release);
                self.settle_after_publish(&t, gen);
                drop(txn);
                self.group_commit(durability.as_ref())?;
                Ok(inserted)
            }
            Err(e) => {
                // Unpublished, so no reader ever saw these rows; undo in
                // reverse apply order.
                for (id, row) in inserted.into_iter().zip(rows).rev() {
                    self.index_remove_entries(table, id, row);
                    t.heap.delete(id);
                }
                Err(e)
            }
        }
    }

    /// Adds `row`'s entries to every index on `table`.
    fn index_insert_entries(&self, table: &str, id: RowId, row: &Row) {
        let mut indexes = self.indexes.write();
        if let Some(ti) = indexes.get_mut(&table.to_ascii_lowercase()) {
            for (col, idx) in ti.spatial.iter_mut() {
                if let Some(Value::Geom(g)) = row.get(*col) {
                    idx.insert(g.envelope(), id);
                }
            }
            for (col, idx) in ti.ordered.iter_mut() {
                if let Some(k) = row.get(*col).and_then(Key::from_value) {
                    idx.insert(k, id);
                }
            }
        }
    }

    /// Removes `row`'s entries from every index on `table`.
    fn index_remove_entries(&self, table: &str, id: RowId, row: &Row) {
        let mut indexes = self.indexes.write();
        if let Some(ti) = indexes.get_mut(&table.to_ascii_lowercase()) {
            for (col, idx) in ti.spatial.iter_mut() {
                if let Some(Value::Geom(g)) = row.get(*col) {
                    idx.remove(&g.envelope(), id);
                }
            }
            for (col, idx) in ti.ordered.iter_mut() {
                if let Some(k) = row.get(*col).and_then(Key::from_value) {
                    idx.remove(&k, |v| *v == id);
                }
            }
        }
    }

    /// Vacuum, called with the writer lock held: physically reclaims
    /// logically-deleted rows no snapshot can see (index entries first,
    /// then the heap bytes — probe-side visibility filtering depends on
    /// that order).
    fn vacuum_locked(&self) {
        let mut pending = self.pending_reclaim.lock();
        if pending.is_empty() {
            return;
        }
        // A row that died at generation d is invisible to every snapshot
        // pinned at or after d; new pins always take the current commit
        // generation, which is >= every recorded death.
        let horizon = snapshot_horizon(&self.snapshots.lock()).unwrap_or(u64::MAX);
        let mut keep = Vec::new();
        for pr in pending.drain(..) {
            if pr.died > horizon {
                keep.push(pr);
                continue;
            }
            // A dropped table's heap died with its catalog entry; the
            // pending entry just evaporates.
            if let Ok(t) = self.catalog.table(&pr.table) {
                if let Ok(row) = t.heap.get(pr.id) {
                    self.index_remove_entries(&pr.table, pr.id, &row);
                }
                t.heap.reclaim(pr.id);
            }
        }
        *pending = keep;
    }

    /// Prunes visibility metadata the statement just published, when no
    /// older snapshot still needs it — keeps the settled (metadata-free)
    /// fast path hot under single-session DML streams.
    fn settle_after_publish(&self, t: &Table, gen: u64) {
        let horizon = snapshot_horizon(&self.snapshots.lock()).unwrap_or(gen).min(gen);
        t.heap.settle(horizon);
    }

    /// Completes a commit's durability: when the WAL fsyncs, the wait is
    /// batched with concurrent committers through the group pipeline.
    /// Call *after* dropping the writer lock — followers block on their
    /// batch leader — but with the durability read guard still held, so
    /// a checkpoint cannot truncate staged-but-unsynced frames.
    fn group_commit(&self, durability: Option<&DurabilityState>) -> crate::Result<()> {
        if let Some(d) = durability {
            if d.wal.sync_enabled() {
                return self.commit_pipeline.commit(|| d.wal.sync(), Some(&self.metrics));
            }
        }
        Ok(())
    }

    /// The newest published commit generation (diagnostics and tests).
    pub fn commit_generation(&self) -> u64 {
        self.commit_gen.load(Ordering::Acquire)
    }

    /// Currently pinned reader snapshots (diagnostics and tests).
    pub fn active_snapshot_count(&self) -> usize {
        self.snapshots.lock().values().map(|e| e.readers).sum()
    }

    /// Currently pinned snapshot generations as `(generation, readers,
    /// age)` triples sorted by generation — the rows of `jp_snapshots`.
    pub fn snapshot_pins(&self) -> Vec<(u64, usize, Duration)> {
        let snapshots = self.snapshots.lock();
        let mut out: Vec<(u64, usize, Duration)> =
            snapshots.iter().map(|(gen, e)| (*gen, e.readers, e.first_pinned.elapsed())).collect();
        drop(snapshots);
        out.sort_unstable_by_key(|(gen, ..)| *gen);
        out
    }

    /// Logically-deleted rows awaiting physical reclaim (diagnostics and
    /// tests).
    pub fn pending_reclaim_len(&self) -> usize {
        self.pending_reclaim.lock().len()
    }

    /// Pins the current commit generation for one statement. The
    /// returned handle holds the generation's refcount in
    /// `self.snapshots` until dropped; vacuum never reclaims a row any
    /// live handle can still see. Readers never take the writer lock —
    /// pinning is one short mutex on the refcount map.
    pub fn pin_snapshot_handle(self: &Arc<Self>) -> Arc<SnapshotGuard> {
        let pinned = Instant::now();
        let mut snapshots = self.snapshots.lock();
        let gen = self.commit_gen.load(Ordering::Acquire);
        snapshots
            .entry(gen)
            .or_insert_with(|| SnapshotEntry { readers: 0, first_pinned: pinned })
            .readers += 1;
        drop(snapshots);
        Arc::new(SnapshotGuard { db: Arc::clone(self), gen, pinned })
    }

    /// Test-only fault injection: makes every subsequent WAL append (and
    /// staged frame write) fail, to exercise commit rollback.
    #[doc(hidden)]
    pub fn fail_wal_appends(&self, fail: bool) {
        if let Some(d) = self.durability.read().as_ref() {
            d.wal.set_fail_appends(fail);
        }
    }

    /// Builds a spatial index on a geometry column. Uses R\*-tree STR
    /// bulk loading or grid construction depending on the profile.
    pub fn create_spatial_index(&self, table: &str, column: &str) -> crate::Result<()> {
        let durability = self.durability.read();
        let (_txn, waited) = self.txn.lock_timed();
        self.metrics.record_txn_wait(TxnSite::Ddl, waited);
        let t = self.catalog.table(table)?;
        let col = t.schema().column_index(column)?;
        if t.schema().columns()[col].ty != DataType::Geometry {
            return Err(EngineError::Index(format!(
                "column '{column}' of '{table}' is not a geometry"
            )));
        }
        // Gather (envelope, id) pairs over every physically-present row,
        // logically-deleted ones included: an older pinned snapshot that
        // still sees such a row must be able to find it through the new
        // index (probes post-filter by visibility).
        let mut items: Vec<(Envelope, RowId)> = Vec::with_capacity(t.heap.len());
        let mut extent = Envelope::EMPTY;
        t.heap.scan_any(|id, row| {
            if let Some(Value::Geom(g)) = row.get(col) {
                let e = g.envelope();
                extent.expand_to_include(&e);
                items.push((e, id));
            }
        })?;

        let idx = if self.profile.uses_grid_index() {
            let cells = ((items.len() as f64).sqrt().ceil() as usize).clamp(16, 256);
            let extent = if extent.is_empty() {
                Envelope::new(0.0, 0.0, 1.0, 1.0)
            } else {
                extent.expanded_by(extent.margin() * 0.001 + 1e-9)
            };
            let mut g = GridIndex::new(extent, cells, cells);
            for (e, id) in items {
                g.insert(e, id);
            }
            SpatialIdx::Grid(g)
        } else {
            let mut tree = RTree::bulk_load_parallel(RTreeConfig::default(), items, self.workers());
            // Under a bounded pool, leaves page through it from the
            // start: inner nodes stay resident, leaf probes pin pool
            // pages and show up in the pool's hit/miss counters.
            let pool = self.catalog.pool();
            if pool.capacity_frames() != 0 {
                let file = pool.register(&leaf_file_name(table, col));
                tree.attach_pager(Arc::new(PoolLeafPager { pool: pool.clone(), file }));
                tree.spill_leaves();
            }
            SpatialIdx::Rtree(tree)
        };

        let mut indexes = self.indexes.write();
        let ti = indexes.entry(table.to_ascii_lowercase()).or_default();
        if ti.spatial.insert(col, idx).is_some() {
            return Err(EngineError::Index(format!(
                "spatial index on '{table}.{column}' already exists"
            )));
        }
        drop(indexes);
        self.bump_ddl_gen();
        if let Some(d) = durability.as_ref() {
            d.wal.append(&WalRecord::CreateSpatialIndex {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        }
        Ok(())
    }

    /// Builds an ordered (attribute) index on an integer or text column.
    pub fn create_ordered_index(&self, table: &str, column: &str) -> crate::Result<()> {
        let durability = self.durability.read();
        let (_txn, waited) = self.txn.lock_timed();
        self.metrics.record_txn_wait(TxnSite::Ddl, waited);
        let t = self.catalog.table(table)?;
        let col = t.schema().column_index(column)?;
        match t.schema().columns()[col].ty {
            DataType::Int | DataType::Text => {}
            other => {
                return Err(EngineError::Index(format!(
                    "ordered index unsupported on {} column '{column}'",
                    other.sql_name()
                )))
            }
        }
        let mut idx: OrderedIndex<Key, RowId> = OrderedIndex::new();
        // Include logically-deleted rows; see create_spatial_index.
        t.heap.scan_any(|id, row| {
            if let Some(k) = row.get(col).and_then(Key::from_value) {
                idx.insert(k, id);
            }
        })?;
        let mut indexes = self.indexes.write();
        let ti = indexes.entry(table.to_ascii_lowercase()).or_default();
        if ti.ordered.insert(col, idx).is_some() {
            return Err(EngineError::Index(format!(
                "ordered index on '{table}.{column}' already exists"
            )));
        }
        drop(indexes);
        self.bump_ddl_gen();
        if let Some(d) = durability.as_ref() {
            d.wal.append(&WalRecord::CreateOrderedIndex {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        }
        Ok(())
    }

    /// Drops the spatial index on `table.column`. Errors if no such
    /// index exists. Invalidates cached plans and re-cuts the durable
    /// snapshot, so recovery cannot resurrect the index from a logged
    /// `CREATE INDEX` record.
    pub fn drop_spatial_index(&self, table: &str, column: &str) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        let col = t.schema().column_index(column)?;
        let removed = {
            let (_txn, waited) = self.txn.lock_timed();
            self.metrics.record_txn_wait(TxnSite::Ddl, waited);
            self.indexes
                .write()
                .get_mut(&table.to_ascii_lowercase())
                .and_then(|ti| ti.spatial.remove(&col))
        };
        if removed.is_none() {
            return Err(EngineError::Index(format!("no spatial index on '{table}.{column}'")));
        }
        self.bump_ddl_gen();
        self.prepared_cache.clear();
        self.checkpoint()
    }

    /// Drops the ordered index on `table.column`. Errors if no such
    /// index exists. Same invalidation rules as
    /// [`SpatialDb::drop_spatial_index`].
    pub fn drop_ordered_index(&self, table: &str, column: &str) -> crate::Result<()> {
        let t = self.catalog.table(table)?;
        let col = t.schema().column_index(column)?;
        let removed = {
            let (_txn, waited) = self.txn.lock_timed();
            self.metrics.record_txn_wait(TxnSite::Ddl, waited);
            self.indexes
                .write()
                .get_mut(&table.to_ascii_lowercase())
                .and_then(|ti| ti.ordered.remove(&col))
        };
        if removed.is_none() {
            return Err(EngineError::Index(format!("no ordered index on '{table}.{column}'")));
        }
        self.bump_ddl_gen();
        self.prepared_cache.clear();
        self.checkpoint()
    }

    /// Runs one SQL statement. With recording on (the default), the
    /// completed statement lands in the flight recorder, the slow-query
    /// log (if slow enough) and the fingerprint stats table.
    pub fn execute(self: &Arc<Self>, sql: &str) -> crate::Result<ResultSet> {
        use std::sync::atomic::Ordering;
        if !self.recording.load(Ordering::Relaxed) {
            return self.execute_unrecorded(sql);
        }
        let _session = self.register_session(sql);
        let before = self.metrics.query_snapshot();
        let t0 = Instant::now();
        let result = self.execute_unrecorded(sql);
        let total = t0.elapsed();
        let (fp, normalized) = self.fingerprint_of(sql);
        match &result {
            Ok(r) => {
                self.query_stats.record(fp, &normalized, total, r.rows.len() as u64, false);
                let delta = self.metrics.query_snapshot().delta_since(&before);
                let trace = Arc::new(QueryTrace::new(sql, total, r.rows.len(), delta));
                self.recorder.push(trace.clone());
                self.slow_log.offer(&trace);
            }
            // Failed statements have no meaningful counter delta or row
            // count; they are visible through the error column of the
            // fingerprint table instead of the trace ring.
            Err(_) => self.query_stats.record(fp, &normalized, total, 0, true),
        }
        // Feed the time-series ring; rate-limited inside, so this is a
        // clock read and one short lock on the fast path.
        self.history.maybe_record(|| {
            self.refresh_gauges();
            self.metrics.snapshot()
        });
        result
    }

    /// Registers one in-flight statement for `jp_sessions`; the returned
    /// slot deregisters it when dropped.
    fn register_session(self: &Arc<Self>, sql: &str) -> SessionSlot {
        let id = self.session_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut text = sql.to_string();
        if text.len() > SESSION_SQL_MAX {
            let mut end = SESSION_SQL_MAX;
            while !text.is_char_boundary(end) {
                end -= 1;
            }
            text.truncate(end);
        }
        self.sessions.lock().insert(id, SessionInfo { sql: text, started: Instant::now() });
        SessionSlot { db: Arc::clone(self), id }
    }

    /// The statement's fingerprint and normalized shape, served from the
    /// raw-text cache when the same text has executed before. A 64-bit
    /// collision between distinct raw texts would merge their stats; at
    /// cache scale (≤ [`FINGERPRINT_CACHE_CAPACITY`] live entries) that
    /// is vanishingly unlikely and only affects reporting, never results.
    fn fingerprint_of(&self, sql: &str) -> (u64, Arc<str>) {
        let raw = digest(sql);
        let tick = self.fingerprint_tick.fetch_add(1, Ordering::Relaxed);
        if let Some((fp, norm, last_hit)) = self.fingerprint_cache.read().get(&raw) {
            last_hit.store(tick, Ordering::Relaxed);
            return (*fp, Arc::clone(norm));
        }
        let normalized: Arc<str> = jackpine_sqlmini::fingerprint::normalize(sql).into();
        let fp = digest(&normalized);
        let mut cache = self.fingerprint_cache.write();
        if cache.len() >= FINGERPRINT_CACHE_CAPACITY {
            // Evict the least-recently-hit quarter (the PreparedCache
            // idiom) instead of clearing wholesale: a benchmark's hot
            // loop statements survive a burst of one-off texts.
            let target = (cache.len() / FINGERPRINT_EVICT_DENOMINATOR).max(1);
            let mut stamps: Vec<u64> =
                cache.values().map(|(_, _, l)| l.load(Ordering::Relaxed)).collect();
            let (_, threshold, _) = stamps.select_nth_unstable(target - 1);
            let threshold = *threshold;
            cache.retain(|_, (_, _, l)| l.load(Ordering::Relaxed) > threshold);
        }
        cache.insert(raw, (fp, Arc::clone(&normalized), Arc::new(AtomicU64::new(tick))));
        (fp, normalized)
    }

    /// Live fingerprint-cache entries (eviction tests).
    pub fn fingerprint_cache_len(&self) -> usize {
        self.fingerprint_cache.read().len()
    }

    /// The execution path itself, with no retrospective recording.
    fn execute_unrecorded(self: &Arc<Self>, sql: &str) -> crate::Result<ResultSet> {
        self.metrics.queries.incr();
        let t0 = Instant::now();
        let stmt = parser::parse(sql)?;
        self.metrics.record_stage(Stage::Parse, t0.elapsed());
        self.execute_statement(stmt, Some(sql))
    }

    /// Enables or disables retrospective recording (flight recorder,
    /// slow-query log, fingerprint stats). On by default; the off
    /// position exists for the overhead ablation and leaves previously
    /// recorded traces in place.
    pub fn set_flight_recorder(&self, on: bool) {
        self.recording.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether retrospective recording is currently on.
    pub fn flight_recorder_enabled(&self) -> bool {
        self.recording.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The flight recorder itself (capacity/eviction accounting).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The most recent completed traces, oldest first, up to the
    /// recorder capacity. Traces stay in the ring.
    pub fn recent_traces(&self) -> Vec<Arc<QueryTrace>> {
        self.recorder.recent()
    }

    /// Removes and returns every retained trace, oldest first.
    pub fn drain_traces(&self) -> Vec<Arc<QueryTrace>> {
        self.recorder.drain()
    }

    /// Retained slow-query traces, oldest first.
    pub fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        self.slow_log.recent()
    }

    /// The current slow-query threshold.
    pub fn slow_query_threshold(&self) -> Duration {
        self.slow_log.threshold()
    }

    /// Sets the slow-query threshold. `Duration::ZERO` logs everything.
    pub fn set_slow_query_threshold(&self, threshold: Duration) {
        self.slow_log.set_threshold(threshold);
    }

    /// The top `k` statement shapes by execution count, with rolling
    /// latency/row/error statistics per fingerprint.
    pub fn query_stats(&self, k: usize) -> Vec<FingerprintStats> {
        self.query_stats.top(k)
    }

    /// Runs one SQL statement and returns the per-query trace alongside
    /// the result: per-stage timings and the engine-counter delta
    /// attributable to this statement. Concurrent statements on the same
    /// instance bleed into each other's deltas — trace under a single
    /// client connection, the way EXPLAIN ANALYZE is used.
    pub fn execute_traced(self: &Arc<Self>, sql: &str) -> crate::Result<(ResultSet, QueryTrace)> {
        let before = self.metrics.query_snapshot();
        let t0 = Instant::now();
        let result = self.execute(sql)?;
        let total = t0.elapsed();
        let delta = self.metrics.query_snapshot().delta_since(&before);
        let trace = QueryTrace::new(sql, total, result.rows.len(), delta);
        Ok((result, trace))
    }

    /// Plans a SELECT, consulting the plan cache when `sql` carries the
    /// statement's cache key (`None` — used by EXPLAIN ANALYZE — always
    /// plans fresh). Records plan-stage time and cache hit/miss counters.
    fn plan_or_cached(
        self: &Arc<Self>,
        select: &jackpine_sqlmini::ast::Select,
        sql: Option<&str>,
    ) -> crate::Result<Arc<jackpine_sqlmini::plan::PlannedSelect>> {
        let t0 = Instant::now();
        let result = (|| {
            // System-catalog FROMs bypass the cache: a cached plan holds
            // the providers it was planned against, and a jp_* provider
            // is a point-in-time materialization that must be rebuilt
            // per statement.
            let cache_on = *self.plan_cache_enabled.read()
                && sql.is_some()
                && !select.from.iter().any(|t| syscat::is_system_table(&t.table));
            let stamp = self.ddl_gen.load(Ordering::SeqCst);
            if cache_on {
                // A hit counts only when the entry's DDL stamp is
                // current; stale entries (planned before an index came
                // or went) are lazily replaced below.
                if let Some((s, planned)) = self.plan_cache.read().get(sql.unwrap()).cloned() {
                    if s == stamp {
                        self.plan_cache_hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        self.metrics.plan_cache_hits.incr();
                        return Ok(planned);
                    }
                }
            }
            self.plan_cache_misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.metrics.plan_cache_misses.incr();
            let opts = PlanOptions {
                mode: self.profile.function_mode(),
                use_spatial_index: *self.use_spatial_index.read(),
            };
            let adapter = DbCatalogAdapter { db: self.clone() };
            let planned = Arc::new(plan::plan_select(&adapter, select, &opts)?);
            if cache_on {
                let mut cache = self.plan_cache.write();
                // Bound the cache: macro scenarios generate many
                // one-off statements; cap like a real statement cache.
                if cache.len() >= 512 {
                    cache.clear();
                }
                cache.insert(sql.unwrap().to_string(), (stamp, planned.clone()));
            }
            Ok(planned)
        })();
        self.metrics.record_stage(Stage::Plan, t0.elapsed());
        result
    }

    /// Runs one parsed statement. `sql` is the statement's text when it
    /// came through [`SpatialDb::execute`] (used as the plan-cache key);
    /// `None` bypasses the cache.
    fn execute_statement(
        self: &Arc<Self>,
        stmt: Statement,
        sql: Option<&str>,
    ) -> crate::Result<ResultSet> {
        match stmt {
            Statement::Select(select) => {
                let planned = self.plan_or_cached(&select, sql)?;
                // Pin one commit generation for the whole statement:
                // every snapshot-capable provider in the plan resolves
                // to a copy reading exactly that generation, so the
                // statement never observes a concurrent writer's
                // half-applied changes — and never blocks on one.
                let mut opts = self.exec_options();
                opts.snapshot = Some(self.pin_snapshot_handle());
                Ok(exec::execute_with(&planned, &opts)?)
            }
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .into_iter()
                    .map(|(n, ty)| {
                        Ok(ColumnDef::new(
                            &n,
                            parse_type(&ty).ok_or_else(|| {
                                EngineError::Sql(SqlError::Type(format!("unknown type '{ty}'")))
                            })?,
                        ))
                    })
                    .collect::<crate::Result<Vec<_>>>()?;
                self.create_table(&name, cols)?;
                Ok(affected(0))
            }
            Statement::Delete { table, filters } => {
                // One logged write transaction: victims are marked
                // deleted at the next generation, Delete records reach
                // the WAL before the generation publishes, and a log
                // failure rolls the statement back. No checkpoint.
                Ok(affected(self.delete_where(&table, &filters)?))
            }
            Statement::DropTable { name } => {
                {
                    let (_txn, waited) = self.txn.lock_timed();
                    self.metrics.record_txn_wait(TxnSite::Ddl, waited);
                    let existed = self.catalog.drop_table(&name);
                    if !existed {
                        return Err(EngineError::Storage(StorageError::NoSuchTable(name)));
                    }
                    self.indexes.write().remove(&name.to_ascii_lowercase());
                }
                // Readers pinned before the drop keep their Arc'd heap
                // and finish against it; only the name is gone.
                self.bump_ddl_gen();
                self.prepared_cache.clear();
                self.checkpoint()?;
                Ok(affected(0))
            }
            Statement::Update { table, assignments, filters } => {
                // One logged write transaction: each victim becomes a
                // Delete+Insert record pair in the same WAL frame batch,
                // so UPDATE durability no longer depends on an immediate
                // checkpoint. Statement-atomic: any failure rolls back
                // every applied pair.
                Ok(affected(self.update_where(&table, &assignments, &filters)?))
            }
            Statement::Explain(inner) => match *inner {
                Statement::Select(select) => {
                    let opts = PlanOptions {
                        mode: self.profile.function_mode(),
                        use_spatial_index: *self.use_spatial_index.read(),
                    };
                    let adapter = DbCatalogAdapter { db: self.clone() };
                    let planned = plan::plan_select(&adapter, &select, &opts)?;
                    let rows = planned
                        .root
                        .describe()
                        .lines()
                        .map(|l| vec![Value::Text(l.to_string())])
                        .collect();
                    Ok(ResultSet { columns: vec!["plan".into()], rows })
                }
                _ => Err(EngineError::Sql(SqlError::Type("EXPLAIN supports only SELECT".into()))),
            },
            Statement::ExplainAnalyze(inner) => {
                if !matches!(*inner, Statement::Select(_)) {
                    return Err(EngineError::Sql(SqlError::Type(
                        "EXPLAIN ANALYZE supports only SELECT".into(),
                    )));
                }
                // Execute the inner SELECT for real (bypassing the plan
                // cache so the plan stage is always exercised), bracketed
                // by metric snapshots; the delta is this query's trace.
                let before = self.metrics.query_snapshot();
                let t0 = Instant::now();
                let result = self.execute_statement(*inner, None)?;
                let total = t0.elapsed();
                let delta = self.metrics.query_snapshot().delta_since(&before);
                let trace = QueryTrace::new(sql.unwrap_or(""), total, result.rows.len(), delta);
                let rows =
                    trace.render().lines().map(|l| vec![Value::Text(l.to_string())]).collect();
                Ok(ResultSet { columns: vec!["analyze".into()], rows })
            }
            Statement::Insert { table, rows } => {
                // Evaluate every VALUES tuple up front, then apply the
                // whole statement as one write transaction: a multi-row
                // INSERT publishes all rows atomically or none.
                let mode = self.profile.function_mode();
                let mut staged: Vec<Row> = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        row.push(eval_const_expr(&e, mode)?);
                    }
                    staged.push(row);
                }
                let n = staged.len();
                self.insert_rows_txn(&table, &staged)?;
                Ok(affected(n))
            }
        }
    }

    /// Deletes the rows of `table` matching the conjunction of `filters`.
    /// One logged write transaction: victims are marked dead at the next
    /// commit generation (index entries stay for older snapshots and are
    /// reclaimed by vacuum once no pin can see them), `DeleteId`
    /// records hit the WAL before the generation publishes, and a WAL
    /// failure revives every victim. Returns the number of rows removed.
    fn delete_where(
        &self,
        table: &str,
        filters: &[jackpine_sqlmini::ast::Expr],
    ) -> crate::Result<usize> {
        let t = self.catalog.table(table)?;
        let schema = t.schema().clone();
        let columns: Vec<(String, String)> =
            schema.columns().iter().map(|c| (table.to_string(), c.name.clone())).collect();
        let mode = self.profile.function_mode();
        let bound: Vec<_> = filters
            .iter()
            .map(|f| plan::bind_columns(columns.clone(), f))
            .collect::<std::result::Result<_, _>>()?;

        let durability = self.durability.read();
        let (txn, waited) = self.txn.lock_timed();
        self.metrics.record_txn_wait(TxnSite::Delete, waited);
        self.vacuum_locked();

        // Find victims first (cannot mutate while scanning; an eval
        // error here leaves the table untouched). Only rows visible at
        // the current generation qualify — rows a concurrent pinned
        // snapshot still sees but that are already dead stay dead.
        let cur = self.commit_gen.load(Ordering::Acquire);
        let mut victims: Vec<(RowId, Arc<Row>)> = Vec::new();
        for id in t.heap.row_ids_visible(cur) {
            let row = t.heap.get(id)?;
            // A row is deleted when EVERY filter term holds (the WHERE
            // conjunction); no filters means delete everything.
            let mut matches = true;
            for p in &bound {
                let v = jackpine_sqlmini::exec::eval(p, &row, mode)?;
                if !jackpine_sqlmini::exec::truthy(&v) {
                    matches = false;
                    break;
                }
            }
            if matches {
                victims.push((id, row));
            }
        }

        let gen = cur + 1;
        for (id, _) in &victims {
            t.heap.mark_deleted(*id, gen);
        }
        let mut result: crate::Result<()> = Ok(());
        if let Some(d) = durability.as_ref() {
            let staged: Vec<WalRecord> = victims
                .iter()
                .map(|(id, _)| WalRecord::DeleteId { table: table.to_string(), id: *id })
                .collect();
            result = d.wal.write_frames(&staged);
        }
        match result {
            Ok(()) => {
                {
                    let mut pending = self.pending_reclaim.lock();
                    pending.extend(victims.iter().map(|(id, _)| PendingReclaim {
                        table: table.to_string(),
                        id: *id,
                        died: gen,
                    }));
                }
                self.commit_gen.store(gen, Ordering::Release);
                self.settle_after_publish(&t, gen);
                drop(txn);
                self.group_commit(durability.as_ref())?;
                Ok(victims.len())
            }
            Err(e) => {
                // Unpublished: no reader saw the deaths. Undo them.
                for (id, _) in victims.iter().rev() {
                    t.heap.revive(*id);
                }
                Err(e)
            }
        }
    }

    /// Updates the rows of `table` matching `filters`, applying the
    /// assignments (right-hand sides may reference the old row). Each
    /// victim becomes a logical delete plus a fresh insert stamped with
    /// the same commit generation, so readers observe either the old row
    /// or the new one, never both and never neither. The
    /// `DeleteId`+`InsertAt` record pairs reach the WAL in one frame
    /// batch before the
    /// generation publishes; a WAL failure rolls every pair back.
    /// Returns the number of rows updated.
    fn update_where(
        &self,
        table: &str,
        assignments: &[(String, jackpine_sqlmini::ast::Expr)],
        filters: &[jackpine_sqlmini::ast::Expr],
    ) -> crate::Result<usize> {
        let t = self.catalog.table(table)?;
        let schema = t.schema().clone();
        let columns: Vec<(String, String)> =
            schema.columns().iter().map(|c| (table.to_string(), c.name.clone())).collect();
        let mode = self.profile.function_mode();
        let bound_filters: Vec<_> = filters
            .iter()
            .map(|f| plan::bind_columns(columns.clone(), f))
            .collect::<std::result::Result<_, _>>()?;
        let bound_assignments: Vec<(usize, _)> = assignments
            .iter()
            .map(|(col, e)| {
                Ok((schema.column_index(col)?, plan::bind_columns(columns.clone(), e)?))
            })
            .collect::<crate::Result<_>>()?;

        let durability = self.durability.read();
        let (txn, waited) = self.txn.lock_timed();
        self.metrics.record_txn_wait(TxnSite::Update, waited);
        self.vacuum_locked();

        // Compute every replacement row before touching anything: an
        // eval or type error leaves the table untouched.
        let cur = self.commit_gen.load(Ordering::Acquire);
        let mut victims: Vec<(RowId, Arc<Row>, Row)> = Vec::new();
        for id in t.heap.row_ids_visible(cur) {
            let row = t.heap.get(id)?;
            let mut matches = true;
            for p in &bound_filters {
                let v = jackpine_sqlmini::exec::eval(p, &row, mode)?;
                if !jackpine_sqlmini::exec::truthy(&v) {
                    matches = false;
                    break;
                }
            }
            if !matches {
                continue;
            }
            let mut new_row: Row = row.as_ref().clone();
            for (col, e) in &bound_assignments {
                new_row[*col] = jackpine_sqlmini::exec::eval(e, &row, mode)?;
            }
            schema.check_row(&new_row)?;
            victims.push((id, row, new_row));
        }

        // Apply: old row dies at `gen`, new row is born at `gen`. Both
        // transitions publish atomically with the commit_gen store.
        let gen = cur + 1;
        let mut applied: Vec<(RowId, RowId)> = Vec::with_capacity(victims.len());
        let mut result: crate::Result<()> = Ok(());
        for (old_id, _, new_row) in &victims {
            t.heap.mark_deleted(*old_id, gen);
            match t.heap.insert_at(new_row.clone(), gen) {
                Ok(new_id) => {
                    self.index_insert_entries(table, new_id, new_row);
                    applied.push((*old_id, new_id));
                }
                Err(e) => {
                    t.heap.revive(*old_id);
                    result = Err(e.into());
                    break;
                }
            }
        }
        if result.is_ok() {
            if let Some(d) = durability.as_ref() {
                let mut staged: Vec<WalRecord> = Vec::with_capacity(applied.len() * 2);
                for ((old_id, new_id), (_, _, new_row)) in applied.iter().zip(victims.iter()) {
                    staged.push(WalRecord::DeleteId { table: table.to_string(), id: *old_id });
                    staged.push(WalRecord::InsertAt {
                        table: table.to_string(),
                        id: *new_id,
                        row: new_row.clone(),
                    });
                }
                result = d.wal.write_frames(&staged);
            }
        }
        match result {
            Ok(()) => {
                {
                    let mut pending = self.pending_reclaim.lock();
                    pending.extend(applied.iter().map(|(old_id, _)| PendingReclaim {
                        table: table.to_string(),
                        id: *old_id,
                        died: gen,
                    }));
                }
                self.commit_gen.store(gen, Ordering::Release);
                self.settle_after_publish(&t, gen);
                drop(txn);
                self.group_commit(durability.as_ref())?;
                Ok(victims.len())
            }
            Err(e) => {
                // Unpublished: undo each applied pair in reverse.
                // applied[i] pairs with victims[i], whose replacement
                // row carries the index entries to strip.
                for ((old_id, new_id), (_, _, new_row)) in applied.iter().zip(victims.iter()).rev()
                {
                    self.index_remove_entries(table, *new_id, new_row);
                    t.heap.delete(*new_id);
                    t.heap.revive(*old_id);
                }
                Err(e)
            }
        }
    }

    /// Evicts all decoded-row caches (cold-run support). Also drops
    /// cached geometry preparations: they pin the decoded rows they were
    /// built from, which a cold run must not retain. The plan and
    /// fingerprint caches go too — a cold run that skipped them would
    /// still be warm where it counts for short queries. The buffer pool
    /// writes back its dirty frames and drops every unpinned one, and
    /// spilled R-tree leaves lose their decoded images — so the next
    /// probe of any page or leaf genuinely goes back to the page store.
    pub fn clear_caches(&self) {
        self.catalog.clear_all_caches();
        self.prepared_cache.clear();
        self.plan_cache.write().clear();
        self.fingerprint_cache.write().clear();
        let indexes = self.indexes.read();
        for ti in indexes.values() {
            for idx in ti.spatial.values() {
                if let SpatialIdx::Rtree(tree) = idx {
                    tree.clear_leaf_cache();
                }
            }
        }
        drop(indexes);
        self.catalog.pool().clear();
    }

    /// Sizes the shared buffer pool: heaps and spilled index leaves
    /// compete for `bytes / PAGE_SIZE` frames (`0` = unbounded, the
    /// default). Shrinking evicts unpinned frames immediately; R-tree
    /// leaves are spilled into (or faulted back out of) the pool to
    /// match the new budget.
    pub fn set_pool_bytes(&self, bytes: usize) {
        self.catalog.pool().set_capacity_bytes(bytes);
        self.respill_indexes();
    }

    /// Selects the pool's frame-replacement policy (clock or LRU-K).
    pub fn set_replacement_policy(&self, policy: ReplacementPolicy) {
        self.catalog.pool().set_policy(policy);
    }

    /// A point-in-time copy of the buffer pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.catalog.pool().stats()
    }

    /// The pool's current replacement policy.
    pub fn pool_policy(&self) -> ReplacementPolicy {
        self.catalog.pool().policy()
    }

    /// Brings every R-tree's leaf residency in line with the pool
    /// budget: spilled under a bounded pool, fully resident otherwise.
    fn respill_indexes(&self) {
        let pool = self.catalog.pool().clone();
        let bounded = pool.capacity_frames() != 0;
        let mut indexes = self.indexes.write();
        for (tname, ti) in indexes.iter_mut() {
            for (col, idx) in ti.spatial.iter_mut() {
                if let SpatialIdx::Rtree(tree) = idx {
                    if bounded {
                        if !tree.has_pager() {
                            let file = pool.register(&leaf_file_name(tname, *col));
                            tree.attach_pager(Arc::new(PoolLeafPager {
                                pool: pool.clone(),
                                file,
                            }));
                        }
                        tree.spill_leaves();
                    } else {
                        tree.unspill();
                    }
                }
            }
        }
    }

    /// Flushes dirty pool frames and reclaims what no snapshot needs —
    /// the engine half of `SpatialConnector::close`.
    pub fn close(&self) -> crate::Result<()> {
        {
            let (_txn, waited) = self.txn.lock_timed();
            self.metrics.record_txn_wait(TxnSite::Checkpoint, waited);
            self.vacuum_locked();
        }
        self.catalog.pool().flush();
        Ok(())
    }

    /// Live row ids of `table`, in heap order (diagnostics and tests —
    /// recovery equivalence asserts on these).
    pub fn table_row_ids(&self, table: &str) -> crate::Result<Vec<RowId>> {
        Ok(self.catalog.table(table)?.heap.row_ids())
    }

    /// The underlying catalog table (for loaders and tests).
    pub fn table(&self, name: &str) -> crate::Result<Arc<Table>> {
        Ok(self.catalog.table(name)?)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    /// Column indices carrying a (spatial, ordered) index on `table`.
    pub(crate) fn index_definitions(&self, table: &str) -> (Vec<usize>, Vec<usize>) {
        let indexes = self.indexes.read();
        match indexes.get(&table.to_ascii_lowercase()) {
            Some(ti) => {
                let mut s: Vec<usize> = ti.spatial.keys().copied().collect();
                let mut o: Vec<usize> = ti.ordered.keys().copied().collect();
                s.sort_unstable();
                o.sort_unstable();
                (s, o)
            }
            None => (Vec::new(), Vec::new()),
        }
    }
}

/// The vacuum horizon: the oldest pinned snapshot generation, `None`
/// when nothing is pinned.
fn snapshot_horizon(snapshots: &HashMap<u64, SnapshotEntry>) -> Option<u64> {
    snapshots.keys().copied().min()
}

/// Default intra-query worker count: the machine's available parallelism.
fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn affected(n: usize) -> ResultSet {
    ResultSet { columns: vec!["rows_affected".into()], rows: vec![vec![Value::Int(n as i64)]] }
}

fn parse_type(ty: &str) -> Option<DataType> {
    match ty.to_ascii_uppercase().as_str() {
        "BIGINT" | "INT" | "INTEGER" => Some(DataType::Int),
        "DOUBLE" | "FLOAT" | "REAL" => Some(DataType::Float),
        "TEXT" | "VARCHAR" | "STRING" => Some(DataType::Text),
        "GEOMETRY" => Some(DataType::Geometry),
        _ => None,
    }
}

/// Evaluates a column-free expression (INSERT values).
fn eval_const_expr(
    e: &jackpine_sqlmini::ast::Expr,
    mode: jackpine_sqlmini::FunctionMode,
) -> crate::Result<Value> {
    use jackpine_sqlmini::ast::Expr;
    Ok(match e {
        Expr::Literal(v) => v.clone(),
        Expr::Neg(inner) => match eval_const_expr(inner, mode)? {
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            other => {
                return Err(EngineError::Sql(SqlError::Type(format!("cannot negate {other:?}"))))
            }
        },
        Expr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_const_expr(a, mode)?);
            }
            jackpine_sqlmini::functions::call(mode, name, &vals)?
        }
        other => {
            return Err(EngineError::Sql(SqlError::Type(format!(
                "INSERT values must be constants, got {other:?}"
            ))))
        }
    })
}

// ---------------------------------------------------------------------------
// Snapshot guard
// ---------------------------------------------------------------------------

/// A statement-scoped snapshot pin. Holds one refcount on its commit
/// generation in the engine's snapshot registry; while any guard for a
/// generation is alive, vacuum will not physically reclaim rows that
/// generation can see.
pub struct SnapshotGuard {
    db: Arc<SpatialDb>,
    gen: u64,
    /// When this pin was taken; its lifetime feeds the
    /// `snapshot_pin_ns` wait histogram on drop.
    pinned: Instant,
}

impl SnapshotHandle for SnapshotGuard {
    fn generation(&self) -> u64 {
        self.gen
    }
}

impl std::fmt::Debug for SnapshotGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotGuard").field("gen", &self.gen).finish()
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.db.metrics.record_snapshot_pin(self.pinned.elapsed());
        let mut snapshots = self.db.snapshots.lock();
        if let Some(e) = snapshots.get_mut(&self.gen) {
            e.readers -= 1;
            if e.readers == 0 {
                snapshots.remove(&self.gen);
            }
        }
    }
}

/// RAII registration of one in-flight statement in the session registry
/// (`jp_sessions`); deregisters on drop, so error paths and panics
/// unwind cleanly.
struct SessionSlot {
    db: Arc<SpatialDb>,
    id: u64,
}

impl Drop for SessionSlot {
    fn drop(&mut self) {
        self.db.sessions.lock().remove(&self.id);
    }
}

// ---------------------------------------------------------------------------
// Provider adapters
// ---------------------------------------------------------------------------

struct DbCatalogAdapter {
    db: Arc<SpatialDb>,
}

impl CatalogProvider for DbCatalogAdapter {
    fn table(&self, name: &str) -> jackpine_sqlmini::Result<Arc<dyn TableProvider>> {
        // System-catalog names resolve to point-in-time virtual tables;
        // unknown jp_* names fall through to the ordinary not-found
        // error below.
        if let Some(provider) = syscat::provider(&self.db, name) {
            return provider;
        }
        let table = self.db.catalog.table(name).map_err(SqlError::from)?;
        Ok(Arc::new(DbTableAdapter {
            db: self.db.clone(),
            key: name.to_ascii_lowercase(),
            table,
            pinned: None,
        }))
    }
}

struct DbTableAdapter {
    db: Arc<SpatialDb>,
    key: String,
    table: Arc<Table>,
    /// When set, every read observes exactly the rows visible at this
    /// handle's generation. `None` reads live (newest published state
    /// per call) — correct for single-statement uses like DML scans that
    /// run under the writer lock.
    pinned: Option<Arc<dyn SnapshotHandle>>,
}

impl DbTableAdapter {
    /// The generation this adapter reads at.
    fn gen(&self) -> u64 {
        match &self.pinned {
            Some(s) => s.generation(),
            None => self.db.commit_gen.load(Ordering::Acquire),
        }
    }
}

impl TableProvider for DbTableAdapter {
    fn schema(&self) -> Arc<Schema> {
        self.table.schema().clone()
    }

    fn row_ids(&self) -> Vec<RowId> {
        self.table.heap.row_ids_visible(self.gen())
    }

    fn fetch(&self, id: RowId) -> jackpine_sqlmini::Result<Arc<Row>> {
        self.db.metrics.heap_rows_fetched.incr();
        self.table.heap.get(id).map_err(SqlError::from)
    }

    fn spatial_candidates(&self, col: usize, env: &Envelope) -> Option<Vec<RowId>> {
        // Epoch before the probe: a vacuum racing the probe must be
        // visible to the visibility filter below.
        let epoch = self.table.heap.reclaim_epoch();
        let indexes = self.db.indexes.read();
        let ti = indexes.get(&self.key)?;
        let (mut ids, stats) = ti.spatial.get(&col)?.window_probe(env);
        let m = &self.db.metrics;
        m.index_probes.incr();
        m.index_candidates.add(stats.candidates);
        m.index_nodes_visited.add(stats.nodes_visited);
        // Indexes may hold entries for rows this snapshot cannot see
        // (not yet born, or dead but unreclaimed); filter them out
        // after counting raw candidates, so index stats stay a property
        // of the index, not of concurrent write traffic.
        self.table.heap.retain_visible(&mut ids, self.gen(), epoch);
        Some(ids)
    }

    fn ordered_candidates(&self, col: usize, key: &Value) -> Option<Vec<RowId>> {
        let epoch = self.table.heap.reclaim_epoch();
        let indexes = self.db.indexes.read();
        let ti = indexes.get(&self.key)?;
        let idx = ti.ordered.get(&col)?;
        let k = Key::from_value(key)?;
        let mut ids = idx.get(&k).to_vec();
        let m = &self.db.metrics;
        m.index_probes.incr();
        m.index_candidates.add(ids.len() as u64);
        self.table.heap.retain_visible(&mut ids, self.gen(), epoch);
        Some(ids)
    }

    fn nearest(&self, col: usize, query: Coord, k: usize) -> Option<Vec<RowId>> {
        let gen = self.gen();
        let indexes = self.db.indexes.read();
        let ti = indexes.get(&self.key)?;
        let idx = ti.spatial.get(&col)?;
        let m = &self.db.metrics;
        // The index can surface rows this snapshot cannot see; when the
        // visible set comes up short of k, re-probe with a doubled
        // budget until it fills or the index is exhausted. Visibility
        // filtering preserves the probe's distance order, so truncating
        // still yields the k nearest visible rows.
        let mut want = k;
        loop {
            let epoch = self.table.heap.reclaim_epoch();
            let (mut ids, stats) = idx.nearest_probe(query, want);
            m.index_probes.incr();
            m.index_candidates.add(stats.candidates);
            m.index_nodes_visited.add(stats.nodes_visited);
            let exhausted = ids.len() < want;
            self.table.heap.retain_visible(&mut ids, gen, epoch);
            if ids.len() >= k || exhausted {
                ids.truncate(k);
                return Some(ids);
            }
            want = want.saturating_mul(2);
        }
    }

    fn pin_snapshot(&self, snap: &Arc<dyn SnapshotHandle>) -> Option<Arc<dyn TableProvider>> {
        Some(Arc::new(DbTableAdapter {
            db: self.db.clone(),
            key: self.key.clone(),
            table: self.table.clone(),
            pinned: Some(snap.clone()),
        }))
    }

    fn fetch_mbrs(&self, col: usize, ids: &[RowId]) -> Option<Vec<Option<[f64; 4]>>> {
        // Served from the heap's per-(row, column) quad cache. Not
        // counted as heap row fetches: the rows themselves were already
        // fetched (and counted) by the scan feeding the filter. Any
        // storage error falls back to the executor's row-walk gather,
        // which surfaces errors through the normal fetch path.
        self.table.heap.mbrs(col, ids).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(profile: EngineProfile) -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(profile));
        db.execute("CREATE TABLE parcels (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
        for (id, name, wkt) in [
            (1, "a", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            (2, "b", "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"),
            (3, "c", "POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))"),
            (4, "d", "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))"),
        ] {
            db.execute(&format!(
                "INSERT INTO parcels VALUES ({id}, '{name}', ST_GeomFromText('{wkt}'))"
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db(EngineProfile::ExactRtree);
        let r = db.execute("SELECT id, name FROM parcels WHERE id > 2 ORDER BY id").unwrap();
        assert_eq!(r.columns, vec!["id", "name"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn spatial_predicate_with_index() {
        let db = db(EngineProfile::ExactRtree);
        db.create_spatial_index("parcels", "geom").unwrap();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM parcels WHERE ST_Intersects(geom, \
                 ST_GeomFromText('POLYGON ((0.5 0.5, 1.5 0.5, 1.5 1.5, 0.5 1.5, 0.5 0.5))'))",
            )
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2))); // parcels 1 and 2
    }

    #[test]
    fn index_and_scan_agree() {
        for profile in [EngineProfile::ExactRtree, EngineProfile::ExactGrid] {
            let db = db(profile);
            db.create_spatial_index("parcels", "geom").unwrap();
            let sql = "SELECT COUNT(*) FROM parcels WHERE ST_Overlaps(geom, \
                       ST_GeomFromText('POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))'))";
            let with = db.execute(sql).unwrap();
            db.set_use_spatial_index(false);
            let without = db.execute(sql).unwrap();
            assert_eq!(with, without, "profile {profile}");
        }
    }

    #[test]
    fn spatial_join_between_tables() {
        let db = db(EngineProfile::ExactRtree);
        db.execute("CREATE TABLE probes (pid BIGINT, geom GEOMETRY)").unwrap();
        db.execute("INSERT INTO probes VALUES (100, ST_GeomFromText('POINT (1.5 1.5)'))").unwrap();
        db.create_spatial_index("parcels", "geom").unwrap();
        let r = db
            .execute(
                "SELECT p.id FROM probes q JOIN parcels p ON ST_Contains(p.geom, q.geom) \
                 ORDER BY p.id",
            )
            .unwrap();
        let ids: Vec<&Value> = r.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(ids, vec![&Value::Int(1), &Value::Int(2)]);
    }

    #[test]
    fn mbr_profile_differs_on_refinement() {
        // A thin diagonal line whose MBR covers a small parcel it misses.
        let exact = db(EngineProfile::ExactRtree);
        let mbr = db(EngineProfile::MbrOnly);
        for d in [&exact, &mbr] {
            d.execute("CREATE TABLE lines (id BIGINT, geom GEOMETRY)").unwrap();
            d.execute("INSERT INTO lines VALUES (1, ST_GeomFromText('LINESTRING (0 4, 4 8)'))")
                .unwrap();
        }
        let sql = "SELECT COUNT(*) FROM lines l, parcels p \
                   WHERE ST_Intersects(l.geom, p.geom) AND p.id = 2";
        // Line 2 slips past parcel 2's (1,1) corner: its MBR (0,0)-(1.5,1.5)
        // overlaps the parcel's MBR, but the segment x+y = 1.5 never reaches
        // the square (which needs x+y ≥ 2).
        for d in [&exact, &mbr] {
            d.execute("INSERT INTO lines VALUES (2, ST_GeomFromText('LINESTRING (0 1.5, 1.5 0)'))")
                .unwrap();
        }
        let e = exact.execute(sql).unwrap();
        let m = mbr.execute(sql).unwrap();
        let ev = e.scalar().unwrap().as_i64().unwrap();
        let mv = m.scalar().unwrap().as_i64().unwrap();
        assert_eq!(ev, 0, "exact semantics reject the MBR-only false positive");
        assert_eq!(mv, 1, "MBR semantics accept the false positive");
    }

    #[test]
    fn ordered_index_lookup() {
        let db = db(EngineProfile::ExactRtree);
        db.create_ordered_index("parcels", "name").unwrap();
        let r = db.execute("SELECT id FROM parcels WHERE name = 'b'").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn knn_via_order_by_distance() {
        let db = db(EngineProfile::ExactRtree);
        db.create_spatial_index("parcels", "geom").unwrap();
        let r = db
            .execute(
                "SELECT id FROM parcels \
                 ORDER BY ST_Distance(geom, ST_GeomFromText('POINT (11 11)')) LIMIT 2",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3)); // the far parcel is nearest to (11,11)
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn unsupported_feature_error_in_mbr_profile() {
        let db = db(EngineProfile::MbrOnly);
        let err = db.execute("SELECT ST_Buffer(geom, 1.0) FROM parcels");
        assert!(matches!(err, Err(EngineError::Sql(SqlError::UnsupportedFeature(_)))));
    }

    #[test]
    fn errors_surface() {
        let db = db(EngineProfile::ExactRtree);
        assert!(db.execute("SELECT * FROM nonexistent").is_err());
        assert!(db.execute("SELECT nocolumn FROM parcels").is_err());
        assert!(db.create_spatial_index("parcels", "name").is_err());
        assert!(db.create_ordered_index("parcels", "geom").is_err());
        db.create_spatial_index("parcels", "geom").unwrap();
        assert!(db.create_spatial_index("parcels", "geom").is_err()); // duplicate
    }

    #[test]
    fn insert_maintains_indexes() {
        let db = db(EngineProfile::ExactRtree);
        db.create_spatial_index("parcels", "geom").unwrap();
        db.execute(
            "INSERT INTO parcels VALUES (5, 'e', \
             ST_GeomFromText('POLYGON ((0.2 0.2, 0.8 0.2, 0.8 0.8, 0.2 0.8, 0.2 0.2))'))",
        )
        .unwrap();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM parcels WHERE ST_Within(geom, \
                 ST_GeomFromText('POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))'))",
            )
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn cold_cache_still_correct() {
        let db = db(EngineProfile::ExactRtree);
        db.clear_caches();
        let r = db.execute("SELECT COUNT(*) FROM parcels").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(4)));
        let stats = db.table("parcels").unwrap().heap.stats();
        assert!(stats.cache_misses > 0, "cold run must decode rows");
    }
}

#[cfg(test)]
mod dml_tests {
    use super::*;

    fn db_with_rows(profile: EngineProfile) -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(profile));
        db.execute("CREATE TABLE pts (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
        for i in 0..20 {
            db.execute(&format!(
                "INSERT INTO pts VALUES ({i}, 'p{i}', ST_GeomFromText('POINT ({i} {i})'))"
            ))
            .unwrap();
        }
        db.create_spatial_index("pts", "geom").unwrap();
        db.create_ordered_index("pts", "name").unwrap();
        db
    }

    #[test]
    fn delete_with_scalar_filter() {
        let db = db_with_rows(EngineProfile::ExactRtree);
        let r = db.execute("DELETE FROM pts WHERE id >= 15").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(5)));
        // The SURVIVORS must be exactly ids 0..14 (guards against
        // deleting the complement).
        let r = db.execute("SELECT MIN(id), MAX(id), COUNT(*) FROM pts").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(0), Value::Int(14), Value::Int(15)]);
        // Idempotent second delete.
        let r = db.execute("DELETE FROM pts WHERE id >= 15").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn delete_maintains_spatial_index_on_both_index_kinds() {
        for profile in [EngineProfile::ExactRtree, EngineProfile::ExactGrid] {
            let db = db_with_rows(profile);
            db.execute("DELETE FROM pts WHERE ST_Within(geom, ST_MakeEnvelope(-1, -1, 4.5, 4.5))")
                .unwrap();
            // The spatial-index path must see the deletions: points 0–4
            // are gone, 5–19 remain.
            let r = db
                .execute(
                    "SELECT MIN(id), COUNT(*) FROM pts WHERE ST_Within(geom, \
                     ST_MakeEnvelope(-1, -1, 25, 25))",
                )
                .unwrap();
            assert_eq!(r.rows[0], vec![Value::Int(5), Value::Int(15)], "profile {profile}");
        }
    }

    #[test]
    fn delete_maintains_ordered_index() {
        let db = db_with_rows(EngineProfile::ExactRtree);
        db.execute("DELETE FROM pts WHERE name = 'p5'").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM pts WHERE name = 'p5'").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
        let r = db.execute("SELECT COUNT(*) FROM pts WHERE name = 'p6'").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn delete_without_where_empties_table() {
        let db = db_with_rows(EngineProfile::ExactRtree);
        let r = db.execute("DELETE FROM pts").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(20)));
        assert_eq!(db.execute("SELECT COUNT(*) FROM pts").unwrap().scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn explain_shows_access_paths() {
        let db = db_with_rows(EngineProfile::ExactRtree);
        let r = db
            .execute(
                "EXPLAIN SELECT COUNT(*) FROM pts WHERE ST_Within(geom, \
                 ST_MakeEnvelope(0, 0, 5, 5))",
            )
            .unwrap();
        let plan: String = r.rows.iter().map(|row| row[0].to_string() + "\n").collect();
        assert!(plan.contains("SpatialIndexScan"), "plan was:\n{plan}");
        assert!(plan.contains("Aggregate"), "plan was:\n{plan}");

        db.set_use_spatial_index(false);
        let r = db
            .execute(
                "EXPLAIN SELECT COUNT(*) FROM pts WHERE ST_Within(geom, \
                 ST_MakeEnvelope(0, 0, 5, 5))",
            )
            .unwrap();
        let plan: String = r.rows.iter().map(|row| row[0].to_string() + "\n").collect();
        assert!(plan.contains("SeqScan"), "plan was:\n{plan}");

        // Ordered index path.
        db.set_use_spatial_index(true);
        let r = db.execute("EXPLAIN SELECT id FROM pts WHERE name = 'p3'").unwrap();
        let plan: String = r.rows.iter().map(|row| row[0].to_string() + "\n").collect();
        assert!(plan.contains("OrderedIndexScan"), "plan was:\n{plan}");

        // kNN path.
        let r = db
            .execute(
                "EXPLAIN SELECT id FROM pts \
                 ORDER BY ST_Distance(geom, ST_GeomFromText('POINT (3 3)')) LIMIT 2",
            )
            .unwrap();
        let plan: String = r.rows.iter().map(|row| row[0].to_string() + "\n").collect();
        assert!(plan.contains("KnnScan"), "plan was:\n{plan}");
    }

    #[test]
    fn explain_non_select_rejected() {
        let db = db_with_rows(EngineProfile::ExactRtree);
        assert!(db.execute("EXPLAIN DELETE FROM pts").is_err());
    }
}

#[cfg(test)]
mod group_by_tests {
    use super::*;

    fn db() -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE sales (region TEXT, amount BIGINT)").unwrap();
        for (r, a) in
            [("north", 10), ("south", 5), ("north", 20), ("east", 7), ("south", 15), ("north", 1)]
        {
            db.execute(&format!("INSERT INTO sales VALUES ('{r}', {a})")).unwrap();
        }
        db
    }

    #[test]
    fn group_by_with_aggregates() {
        let db = db();
        let r = db
            .execute(
                "SELECT region, COUNT(*), SUM(amount) FROM sales \
                 GROUP BY region ORDER BY 1",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["region", "count", "sum"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Text("east".into()), Value::Int(1), Value::Float(7.0)],
                vec![Value::Text("north".into()), Value::Int(3), Value::Float(31.0)],
                vec![Value::Text("south".into()), Value::Int(2), Value::Float(20.0)],
            ]
        );
    }

    #[test]
    fn group_by_spatial_measure() {
        let db = db();
        db.execute("CREATE TABLE lots (county TEXT, geom GEOMETRY)").unwrap();
        for (c, wkt) in [
            ("a", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            ("a", "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))"),
            ("b", "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))"),
        ] {
            db.execute(&format!("INSERT INTO lots VALUES ('{c}', ST_GeomFromText('{wkt}'))"))
                .unwrap();
        }
        let r = db
            .execute("SELECT county, SUM(ST_Area(geom)) FROM lots GROUP BY county ORDER BY 1")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Text("a".into()), Value::Float(5.0)],
                vec![Value::Text("b".into()), Value::Float(9.0)],
            ]
        );
    }

    #[test]
    fn non_grouped_column_rejected() {
        let db = db();
        let err = db.execute("SELECT region, amount FROM sales GROUP BY region");
        assert!(err.is_err());
    }

    #[test]
    fn group_by_without_aggregates_is_distinct() {
        let db = db();
        let r = db.execute("SELECT region FROM sales GROUP BY region ORDER BY 1").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::Text("east".into()));
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;

    fn db() -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE pois (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
        for i in 0..10 {
            db.execute(&format!(
                "INSERT INTO pois VALUES ({i}, 'poi{i}', ST_GeomFromText('POINT ({i} 0)'))"
            ))
            .unwrap();
        }
        db.create_spatial_index("pois", "geom").unwrap();
        db.create_ordered_index("pois", "name").unwrap();
        db
    }

    #[test]
    fn update_scalar_column() {
        let db = db();
        let r = db.execute("UPDATE pois SET name = 'renamed' WHERE id < 3").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        let r = db.execute("SELECT COUNT(*) FROM pois WHERE name = 'renamed'").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        // Old names gone from the ordered index.
        let r = db.execute("SELECT COUNT(*) FROM pois WHERE name = 'poi1'").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn update_geometry_maintains_spatial_index() {
        let db = db();
        // Move point 5 far away.
        db.execute("UPDATE pois SET geom = ST_GeomFromText('POINT (100 100)') WHERE id = 5")
            .unwrap();
        let near = db
            .execute(
                "SELECT COUNT(*) FROM pois WHERE ST_DWithin(geom, \
                 ST_GeomFromText('POINT (5 0)'), 0.5)",
            )
            .unwrap();
        assert_eq!(near.scalar(), Some(&Value::Int(0)), "old location still indexed");
        let far = db
            .execute(
                "SELECT COUNT(*) FROM pois WHERE ST_DWithin(geom, \
                 ST_GeomFromText('POINT (100 100)'), 0.5)",
            )
            .unwrap();
        assert_eq!(far.scalar(), Some(&Value::Int(1)), "new location not indexed");
    }

    #[test]
    fn update_rhs_references_old_row() {
        let db = db();
        db.execute("UPDATE pois SET id = id + 100").unwrap();
        let r = db.execute("SELECT MIN(id), MAX(id) FROM pois").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(100), Value::Int(109)]);
    }

    #[test]
    fn update_with_affine_function() {
        let db = db();
        db.execute("UPDATE pois SET geom = ST_Translate(geom, 0, 10) WHERE id = 2").unwrap();
        let r = db.execute("SELECT ST_AsText(geom) FROM pois WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][0], Value::Text("POINT (2 10)".into()));
    }

    #[test]
    fn update_type_mismatch_rejected() {
        let db = db();
        assert!(db.execute("UPDATE pois SET id = 'not a number'").is_err());
        assert!(db.execute("UPDATE pois SET missing = 1").is_err());
    }
}

#[cfg(test)]
mod plan_cache_tests {
    use super::*;

    #[test]
    fn cache_hits_on_repeated_statements() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let sql = "SELECT COUNT(*) FROM t WHERE id > 1";
        let r1 = db.execute(sql).unwrap();
        let (h0, _) = db.plan_cache_stats();
        let r2 = db.execute(sql).unwrap();
        let (h1, _) = db.plan_cache_stats();
        assert_eq!(r1, r2);
        assert_eq!(h1, h0 + 1, "second execution must hit the cache");
    }

    #[test]
    fn ddl_invalidates_cache() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE g (id BIGINT, geom GEOMETRY)").unwrap();
        db.execute("INSERT INTO g VALUES (1, ST_GeomFromText('POINT (1 1)'))").unwrap();
        let sql = "SELECT COUNT(*) FROM g WHERE ST_Intersects(geom, \
                   ST_MakeEnvelope(0, 0, 2, 2))";
        db.execute(sql).unwrap(); // cached with SeqScan (no index yet)
        db.create_spatial_index("g", "geom").unwrap(); // must invalidate
        let r = db
            .execute(
                "EXPLAIN SELECT COUNT(*) FROM g WHERE ST_Intersects(geom, \
                   ST_MakeEnvelope(0, 0, 2, 2))",
            )
            .unwrap();
        let plan: String = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert!(plan.contains("SpatialIndexScan"), "stale plan survived DDL: {plan}");
        // And the cached execution path agrees with a fresh one.
        let with_cache = db.execute(sql).unwrap();
        db.set_plan_cache(false);
        let without = db.execute(sql).unwrap();
        assert_eq!(with_cache, without);
    }

    #[test]
    fn toggling_index_use_invalidates() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE g (id BIGINT, geom GEOMETRY)").unwrap();
        for i in 0..5 {
            db.execute(&format!("INSERT INTO g VALUES ({i}, ST_GeomFromText('POINT ({i} 0)'))"))
                .unwrap();
        }
        db.create_spatial_index("g", "geom").unwrap();
        let sql = "SELECT COUNT(*) FROM g WHERE ST_DWithin(geom, \
                   ST_GeomFromText('POINT (2 0)'), 1.5)";
        let a = db.execute(sql).unwrap();
        db.set_use_spatial_index(false);
        let b = db.execute(sql).unwrap();
        assert_eq!(a, b, "answers must not depend on the plan-cache state");
    }
}

#[cfg(test)]
mod prepared_cache_tests {
    use super::*;

    /// Overlapping unit-height rectangles along the x axis, spatially
    /// indexed, so a self-join refines many polygon-polygon pairs.
    fn db_with_polys() -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE lots (id BIGINT, geom GEOMETRY)").unwrap();
        for i in 0..10 {
            let x0 = i as f64;
            let x1 = x0 + 1.5;
            db.execute(&format!(
                "INSERT INTO lots VALUES ({i}, ST_GeomFromText('POLYGON (({x0} 0, {x1} 0, \
                 {x1} 1, {x0} 1, {x0} 0))'))"
            ))
            .unwrap();
        }
        db.create_spatial_index("lots", "geom").unwrap();
        db.set_workers(1);
        db
    }

    const JOIN: &str = "SELECT COUNT(*) FROM lots a, lots b WHERE ST_Intersects(a.geom, b.geom)";

    #[test]
    fn join_populates_cache_and_prepared_path_agrees_with_naive() {
        let db = db_with_polys();
        let with = db.execute(JOIN).unwrap();
        assert!(db.prepared_cache_len() > 0, "spatial join must populate the cache");
        let m = db.metrics_snapshot();
        assert!(m.counter("prepared_cache_hits") > 0, "inner geometries must be reused");

        db.set_prepared(false);
        assert_eq!(db.prepared_cache_len(), 0, "disabling drops preparations");
        let before = db.metrics_snapshot();
        let without = db.execute(JOIN).unwrap();
        assert_eq!(with, without, "prepared fast path must not change answers");
        let delta = db.metrics_snapshot().delta_since(&before);
        assert_eq!(delta.counter("prepared_cache_misses"), 0, "disabled path must not prepare");
        assert_eq!(db.prepared_cache_len(), 0);
    }

    #[test]
    fn dml_keeps_cache_index_drop_invalidates() {
        let db = db_with_polys();
        let populate = |db: &Arc<SpatialDb>| {
            db.execute(JOIN).unwrap();
            assert!(db.prepared_cache_len() > 0, "query must repopulate the cache");
        };

        // Row ids are never reused, and UPDATE reinserts under a fresh
        // id, so cached preparations stay valid across every DML shape
        // — the cache must survive, not be wiped.
        populate(&db);
        let warm = db.prepared_cache_len();
        db.execute("INSERT INTO lots VALUES (100, ST_GeomFromText('POINT (50 50)'))").unwrap();
        assert_eq!(db.prepared_cache_len(), warm, "INSERT must not clear the cache");

        db.execute("UPDATE lots SET geom = ST_Translate(geom, 20, 0) WHERE id = 100").unwrap();
        assert_eq!(db.prepared_cache_len(), warm, "UPDATE must not clear the cache");

        db.execute("DELETE FROM lots WHERE id = 100").unwrap();
        assert_eq!(db.prepared_cache_len(), warm, "DELETE must not clear the cache");

        // Results stay correct against the surviving cache.
        populate(&db);

        db.drop_spatial_index("lots", "geom").unwrap();
        assert_eq!(db.prepared_cache_len(), 0, "index drop must invalidate");

        // Still correct (and repopulating) without the index.
        populate(&db);
    }

    #[test]
    fn results_match_across_predicates_with_and_without_prepared() {
        let db = db_with_polys();
        for pred in ["ST_Intersects", "ST_Touches", "ST_Overlaps", "ST_Within", "ST_Equals"] {
            let sql = format!("SELECT COUNT(*) FROM lots a, lots b WHERE {pred}(a.geom, b.geom)");
            db.set_prepared(true);
            let on = db.execute(&sql).unwrap();
            db.set_prepared(false);
            let off = db.execute(&sql).unwrap();
            assert_eq!(on, off, "{pred}: prepared on/off must agree");
        }
    }
}

#[cfg(test)]
mod vectorized_tests {
    use super::*;

    fn db_with_polys() -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE lots (id BIGINT, geom GEOMETRY)").unwrap();
        for i in 0..12 {
            let x0 = i as f64;
            let x1 = x0 + 1.5;
            db.execute(&format!(
                "INSERT INTO lots VALUES ({i}, ST_GeomFromText('POLYGON (({x0} 0, {x1} 0, \
                 {x1} 1, {x0} 1, {x0} 0))'))"
            ))
            .unwrap();
        }
        db.create_spatial_index("lots", "geom").unwrap();
        db.set_workers(1);
        db
    }

    #[test]
    fn knobs_round_trip() {
        let db = db_with_polys();
        assert!(db.vectorized_enabled(), "vectorized path is on by default");
        assert_eq!(db.batch_size(), jackpine_sqlmini::batch::DEFAULT_BATCH_SIZE);
        db.set_batch_size(7);
        assert_eq!(db.batch_size(), 7);
        db.set_batch_size(0); // restores the default
        assert_eq!(db.batch_size(), jackpine_sqlmini::batch::DEFAULT_BATCH_SIZE);
        db.set_vectorized(false);
        assert!(!db.vectorized_enabled());
    }

    #[test]
    fn vectorized_on_off_and_batch_sizes_agree() {
        let db = db_with_polys();
        let sql = "SELECT COUNT(*) FROM lots a, lots b WHERE ST_Intersects(a.geom, b.geom)";
        db.set_vectorized(true);
        let on = db.execute(sql).unwrap();
        db.set_vectorized(false);
        let off = db.execute(sql).unwrap();
        assert_eq!(on, off, "vectorized on/off must agree");
        db.set_vectorized(true);
        for bs in [1, 3, 4096] {
            db.set_batch_size(bs);
            assert_eq!(db.execute(sql).unwrap(), on, "batch_size={bs} must agree");
        }
    }

    #[test]
    fn vectorized_filter_populates_batch_counters() {
        let db = db_with_polys();
        let before = db.metrics_snapshot();
        db.execute("SELECT COUNT(*) FROM lots a, lots b WHERE ST_Disjoint(a.geom, b.geom)")
            .unwrap();
        let delta = db.metrics_snapshot().delta_since(&before);
        assert!(delta.counter("batches_dispatched") > 0, "vectorized path must run");
        assert!(delta.counter("prefilter_rejects") > 0, "disjoint pairs decided by MBR");
        assert_eq!(
            delta.counter("prefilter_rejects") + delta.counter("selvec_survivors"),
            delta.counter("refine_candidates"),
            "every candidate is either MBR-decided or refined"
        );
    }
}

#[cfg(test)]
mod drop_table_tests {
    use super::*;

    #[test]
    fn drop_removes_table_and_invalidates_plans() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("SELECT COUNT(*) FROM t").unwrap(); // cache a plan
        db.execute("DROP TABLE t").unwrap();
        assert!(db.execute("SELECT COUNT(*) FROM t").is_err());
        assert!(db.execute("DROP TABLE t").is_err()); // already gone
                                                      // The name is reusable with a different schema.
        db.execute("CREATE TABLE t (name TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES ('x')").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }
}
