//! Database persistence: save a [`SpatialDb`] to a single file and open
//! it again, rebuilding indexes.
//!
//! Format v4 (all little-endian):
//!
//! ```text
//! header (33 bytes):
//!   magic "JKPN" | version u32 = 4 | profile u8 | generation u64
//!   table count u32 | body len u64 | file crc32 u32
//!   (the file crc covers profile..body-len plus the whole body)
//! body, per table:
//!   block len u32 | block bytes | block crc32 u32
//! block bytes:
//!   name (u32 len + utf8) | column count u32
//!   per column: name (u32 len + utf8) | type tag u8
//!   spatial-index column count u32 | column ids u32...
//!   ordered-index column count u32 | column ids u32...
//!   row count u64
//!   per row: page u32 | slot u32 | u32 len + row bytes (the heap codec)
//! ```
//!
//! v4 records each row's heap address (`RowId`) and reload places rows
//! back into their original slots, so row ids are **stable across
//! recovery** — the property WAL v4's `InsertAt`/`DeleteId` records
//! rely on. v3 blocks are identical except that rows carry no address
//! and are re-appended in scan order on load.
//!
//! Durability rules:
//!
//! * **Atomic replacement** — [`SpatialDb::save`] writes to a uniquely
//!   named temp sibling, fsyncs it, then renames over the destination
//!   (and fsyncs the directory). A crash at any point leaves either the
//!   old file or the new one, never a torn hybrid; concurrent saves to
//!   the same path never share a temp file.
//! * **Checksums** — the header carries a CRC32 of its own fields plus
//!   the whole body, and each table block carries its own;
//!   [`SpatialDb::open`] verifies both before trusting a byte, so
//!   truncation and bit rot surface as [`EngineError::Persist`], never
//!   as a panic or a silently short table.
//! * **Generations** — the header's generation number ties the snapshot
//!   to the write-ahead log cut against it (the WAL header stores the
//!   same value). Recovery replays a WAL only when the generations
//!   match, so a crash between a checkpoint's snapshot rename and its
//!   log truncation can never replay stale records over the new
//!   snapshot.
//! * **Consistent counts** — row payloads are streamed into the block
//!   first and the row count written from what was actually streamed, so
//!   a concurrent insert cannot produce a count/payload mismatch. The
//!   stream walks the latest committed state only: logically-deleted
//!   rows awaiting vacuum are skipped, so truncating their pending WAL
//!   `Delete` records at the same cut is harmless — the snapshot never
//!   contained the victims, and recovery cannot resurrect them. (The
//!   checkpoint holds the writer lock, so no statement is mid-publish.)
//! * **Bounded allocation** — every `with_capacity` on a count read from
//!   the file is clamped by the bytes remaining, so a corrupt count
//!   cannot pre-allocate gigabytes before validation catches it.
//!
//! Version-1 (no checksums) and version-2 (no generation) files are
//! still readable. Indexes are stored
//! as *definitions* and rebuilt on open (bulk loads are fast and this
//! keeps the file format independent of index internals — the same
//! trade-off SQLite's `REINDEX`-on-restore makes).

use crate::checksum::{crc32, Crc32};
use crate::{EngineError, EngineProfile, Result, SpatialDb};
use jackpine_geom::codec::{PutBytes, TakeBytes};
use jackpine_storage::{ColumnDef, DataType, Value};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"JKPN";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
const VERSION_V3: u32 = 3;
const VERSION: u32 = 4;
/// v3/v4: profile + generation + table count + body len (the header
/// bytes the file checksum covers).
const META_LEN: usize = 1 + 8 + 4 + 8;
/// v3/v4: magic + version + covered meta + file crc.
const HEADER_LEN: usize = 4 + 4 + META_LEN + 4;
/// v2: magic + version + profile + table count + body len + body crc.
const HEADER_LEN_V2: usize = 4 + 4 + 1 + 4 + 8 + 4;

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Persist(format!("persistence I/O: {e}"))
}

fn corrupt(msg: &str) -> EngineError {
    EngineError::Persist(format!("persistence: {msg}"))
}

pub(crate) fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Geometry => 3,
    }
}

pub(crate) fn tag_type(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Int),
        1 => Some(DataType::Float),
        2 => Some(DataType::Text),
        3 => Some(DataType::Geometry),
        _ => None,
    }
}

fn profile_tag(p: EngineProfile) -> u8 {
    match p {
        EngineProfile::ExactRtree => 0,
        EngineProfile::MbrOnly => 1,
        EngineProfile::ExactGrid => 2,
    }
}

fn tag_profile(tag: u8) -> Option<EngineProfile> {
    match tag {
        0 => Some(EngineProfile::ExactRtree),
        1 => Some(EngineProfile::MbrOnly),
        2 => Some(EngineProfile::ExactGrid),
        _ => None,
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut &[u8]) -> Result<String> {
    if data.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(corrupt("truncated string payload"));
    }
    let s = std::str::from_utf8(&data[..len]).map_err(|_| corrupt("invalid UTF-8"))?.to_string();
    data.advance(len);
    Ok(s)
}

/// Writes `bytes` to `path` atomically: temp sibling, fsync, rename,
/// directory fsync. Readers of `path` see either the old content or the
/// new content, whatever the crash timing. The temp name is unique per
/// call (pid + counter), so concurrent saves to the same path each
/// stage a private file and the last complete rename wins — two writers
/// can never interleave into one temp image.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{seq}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        // The rename must not be reordered before the data reaches disk.
        if let Err(e) = f.write_all(bytes).and_then(|_| f.sync_all()) {
            std::fs::remove_file(&tmp).ok();
            return Err(io_err(e));
        }
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(io_err(e));
    }
    // Persist the rename itself. Directory fsync is not supported on
    // every platform/filesystem; failure to sync is not failure to save.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

impl SpatialDb {
    /// Serializes every table (schema, index definitions, rows) to the
    /// complete format-v3 byte image, checksums included, at generation
    /// 0 (the standalone-snapshot generation; checkpoints stamp real
    /// ones via [`SpatialDb::snapshot_bytes_gen`]).
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>> {
        self.snapshot_bytes_gen(0)
    }

    /// [`SpatialDb::snapshot_bytes`] with an explicit generation stamp.
    pub(crate) fn snapshot_bytes_gen(&self, generation: u64) -> Result<Vec<u8>> {
        let names = self.table_names();
        let mut body: Vec<u8> = Vec::with_capacity(1 << 16);
        for name in &names {
            let table = self.table(name)?;
            let schema = table.schema().clone();
            let mut block: Vec<u8> = Vec::with_capacity(1 << 12);
            put_str(&mut block, &table.name);
            block.put_u32_le(schema.arity() as u32);
            for col in schema.columns() {
                put_str(&mut block, &col.name);
                block.put_u8(type_tag(col.ty));
            }
            let (spatial_cols, ordered_cols) = self.index_definitions(name);
            block.put_u32_le(spatial_cols.len() as u32);
            for c in spatial_cols {
                block.put_u32_le(c as u32);
            }
            block.put_u32_le(ordered_cols.len() as u32);
            for c in ordered_cols {
                block.put_u32_le(c as u32);
            }

            // One consistent view: stream the rows first, then write the
            // count of rows actually streamed. Reading `heap.len()` up
            // front would race with concurrent inserts and produce a
            // file that `open()` must reject.
            let mut rows_buf: Vec<u8> = Vec::with_capacity(1 << 12);
            let mut nrows: u64 = 0;
            table.heap.scan(|id, row| {
                let bytes = Value::encode_row(row);
                rows_buf.put_u32_le(id.page);
                rows_buf.put_u32_le(u32::from(id.slot));
                rows_buf.put_u32_le(bytes.len() as u32);
                rows_buf.put_slice(&bytes);
                nrows += 1;
            })?;
            block.put_u64_le(nrows);
            block.put_slice(&rows_buf);

            body.put_u32_le(block.len() as u32);
            let block_crc = crc32(&block);
            body.put_slice(&block);
            body.put_u32_le(block_crc);
        }

        // The file checksum covers the header's own fields (profile,
        // generation, counts) as well as the body, so a bit flip
        // anywhere in the file is detected.
        let mut meta: Vec<u8> = Vec::with_capacity(META_LEN);
        meta.put_u8(profile_tag(self.profile()));
        meta.put_u64_le(generation);
        meta.put_u32_le(names.len() as u32);
        meta.put_u64_le(body.len() as u64);
        let mut crc = Crc32::new();
        crc.update(&meta);
        crc.update(&body);

        let mut out: Vec<u8> = Vec::with_capacity(HEADER_LEN + body.len());
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        out.put_slice(&meta);
        out.put_u32_le(crc.finish());
        out.put_slice(&body);
        Ok(out)
    }

    /// Serializes every table to `path`, atomically: the bytes go to a
    /// uniquely named temp sibling, are fsynced, and are renamed into
    /// place. A crash mid-save leaves the previous file untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.save_gen(path, 0)
    }

    /// [`SpatialDb::save`] with an explicit generation stamp (used by
    /// checkpoints to tie the snapshot to the WAL cut against it).
    pub(crate) fn save_gen(&self, path: impl AsRef<Path>, generation: u64) -> Result<()> {
        let bytes = self.snapshot_bytes_gen(generation)?;
        atomic_write(path.as_ref(), &bytes)
    }

    /// Opens a database saved with [`SpatialDb::save`], verifying
    /// checksums and rebuilding every index. The stored engine profile
    /// is restored. Corrupt or truncated files fail with
    /// [`EngineError::Persist`]; they never panic and never load a
    /// silently short table.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<SpatialDb>> {
        Self::open_gen(path).map(|(db, _)| db)
    }

    /// Opens a snapshot file, also returning its generation stamp (0 for
    /// v1/v2 files, which predate generations).
    pub(crate) fn open_gen(path: impl AsRef<Path>) -> Result<(Arc<SpatialDb>, u64)> {
        let mut raw = Vec::new();
        std::fs::File::open(path).map_err(io_err)?.read_to_end(&mut raw).map_err(io_err)?;
        Self::open_bytes_gen(&raw)
    }

    /// Opens a database from an in-memory snapshot image (the content of
    /// a [`SpatialDb::save`] file).
    pub fn open_bytes(raw: &[u8]) -> Result<Arc<SpatialDb>> {
        Self::open_bytes_gen(raw).map(|(db, _)| db)
    }

    /// [`SpatialDb::open_bytes`], also returning the generation stamp.
    pub(crate) fn open_bytes_gen(raw: &[u8]) -> Result<(Arc<SpatialDb>, u64)> {
        let mut data: &[u8] = raw;
        if data.remaining() < 9 || &data[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        data.advance(4);
        let version = data.get_u32_le();
        match version {
            VERSION_V1 => Ok((Self::open_v1(data)?, 0)),
            VERSION_V2 => Ok((Self::open_v2(data)?, 0)),
            VERSION_V3 => Self::open_v34(data, false),
            VERSION => Self::open_v34(data, true),
            other => Err(corrupt(&format!("unsupported version {other}"))),
        }
    }

    /// The generation stamp of the snapshot at `path`, without loading
    /// its tables. Best effort: a missing, legacy, or unreadable file
    /// reports generation 0.
    pub(crate) fn peek_snapshot_generation(path: impl AsRef<Path>) -> u64 {
        let mut head = [0u8; 4 + 4 + 1 + 8];
        let Ok(mut f) = std::fs::File::open(path) else { return 0 };
        if f.read_exact(&mut head).is_err() {
            return 0;
        }
        let mut data: &[u8] = &head;
        if &data[..4] != MAGIC {
            return 0;
        }
        data.advance(4);
        if !(VERSION_V3..=VERSION).contains(&data.get_u32_le()) {
            return 0;
        }
        data.advance(1); // profile
        data.get_u64_le()
    }

    /// Formats v3 and v4: generation-stamped header whose checksum
    /// covers both the header fields and the framed table blocks. v4
    /// rows carry their heap address (`with_ids`).
    fn open_v34(mut data: &[u8], with_ids: bool) -> Result<(Arc<SpatialDb>, u64)> {
        if data.remaining() < HEADER_LEN - 8 {
            return Err(corrupt("truncated header"));
        }
        let meta = &data[..META_LEN];
        let profile = tag_profile(data.get_u8()).ok_or_else(|| corrupt("unknown profile tag"))?;
        let generation = data.get_u64_le();
        let ntables = data.get_u32_le();
        let body_len = data.get_u64_le();
        let file_crc = data.get_u32_le();
        // The byte count is exact: truncation and appended garbage both
        // fail here, before any content is inspected.
        if data.remaining() as u64 != body_len {
            return Err(corrupt(&format!(
                "body length mismatch: header says {body_len}, file holds {}",
                data.remaining()
            )));
        }
        let mut crc = Crc32::new();
        crc.update(meta);
        crc.update(data);
        if crc.finish() != file_crc {
            return Err(corrupt("file checksum mismatch"));
        }
        Ok((Self::load_blocks(data, profile, ntables, with_ids)?, generation))
    }

    /// Format v2: checksummed header + framed table blocks, no
    /// generation (the body checksum does not cover the header fields).
    fn open_v2(mut data: &[u8]) -> Result<Arc<SpatialDb>> {
        if data.remaining() < HEADER_LEN_V2 - 8 {
            return Err(corrupt("truncated header"));
        }
        let profile = tag_profile(data.get_u8()).ok_or_else(|| corrupt("unknown profile tag"))?;
        let ntables = data.get_u32_le();
        let body_len = data.get_u64_le();
        let body_crc = data.get_u32_le();
        if data.remaining() as u64 != body_len {
            return Err(corrupt(&format!(
                "body length mismatch: header says {body_len}, file holds {}",
                data.remaining()
            )));
        }
        if crc32(data) != body_crc {
            return Err(corrupt("file checksum mismatch"));
        }
        Self::load_blocks(data, profile, ntables, false)
    }

    /// Parses `ntables` checksummed table blocks (the v2/v3/v4 body).
    fn load_blocks(
        mut data: &[u8],
        profile: EngineProfile,
        ntables: u32,
        with_ids: bool,
    ) -> Result<Arc<SpatialDb>> {
        let db = Arc::new(SpatialDb::new(profile));
        for _ in 0..ntables {
            if data.remaining() < 4 {
                return Err(corrupt("truncated table block length"));
            }
            let block_len = data.get_u32_le() as usize;
            if data.remaining() < block_len + 4 {
                return Err(corrupt("truncated table block"));
            }
            let block = &data[..block_len];
            data.advance(block_len);
            let want_crc = data.get_u32_le();
            if crc32(block) != want_crc {
                return Err(corrupt("table block checksum mismatch"));
            }
            let mut cursor = block;
            load_table(&db, &mut cursor, with_ids)?;
            if cursor.remaining() != 0 {
                return Err(corrupt("trailing bytes in table block"));
            }
        }
        if data.remaining() != 0 {
            return Err(corrupt("trailing bytes after last table"));
        }
        Ok(db)
    }

    /// Legacy format v1: no checksums, one continuous stream.
    fn open_v1(mut data: &[u8]) -> Result<Arc<SpatialDb>> {
        if data.remaining() < 1 {
            return Err(corrupt("truncated profile tag"));
        }
        let profile = tag_profile(data.get_u8()).ok_or_else(|| corrupt("unknown profile tag"))?;
        let db = Arc::new(SpatialDb::new(profile));
        if data.remaining() < 4 {
            return Err(corrupt("truncated table count"));
        }
        let ntables = data.get_u32_le();
        for _ in 0..ntables {
            load_table(&db, &mut data, false)?;
        }
        // Legacy files are exactly consumed; leftovers mean the bytes
        // were never a v1 image (e.g. a v3 file whose version byte was
        // flipped so that its generation field reads as a table count).
        if data.remaining() != 0 {
            return Err(corrupt("trailing bytes after last table"));
        }
        Ok(db)
    }
}

/// Parses one serialized table (schema, index definitions, rows) from
/// `data` and loads it into `db`, rebuilding the indexes at the end (the
/// bulk path). Shared by every format reader and by WAL recovery. With
/// `with_ids` (v4), each row carries its heap address and is placed back
/// into its original slot, keeping row ids stable across the reload.
fn load_table(db: &Arc<SpatialDb>, data: &mut &[u8], with_ids: bool) -> Result<()> {
    let name = get_str(data)?;
    if data.remaining() < 4 {
        return Err(corrupt("truncated column count"));
    }
    let ncols = data.get_u32_le() as usize;
    // Clamp: a column needs ≥ 5 encoded bytes, so a corrupt count cannot
    // pre-allocate more than the data could possibly hold.
    let mut cols = Vec::with_capacity(ncols.min(data.remaining() / 5 + 1));
    for _ in 0..ncols {
        let cname = get_str(data)?;
        if data.remaining() < 1 {
            return Err(corrupt("truncated column type"));
        }
        let ty = tag_type(data.get_u8()).ok_or_else(|| corrupt("unknown type tag"))?;
        cols.push(ColumnDef::new(&cname, ty));
    }
    let schema_cols = cols.clone();
    db.create_table(&name, cols)?;

    let read_cols = |data: &mut &[u8]| -> Result<Vec<usize>> {
        if data.remaining() < 4 {
            return Err(corrupt("truncated index count"));
        }
        let n = data.get_u32_le() as usize;
        let mut out = Vec::with_capacity(n.min(data.remaining() / 4 + 1));
        for _ in 0..n {
            if data.remaining() < 4 {
                return Err(corrupt("truncated index column"));
            }
            out.push(data.get_u32_le() as usize);
        }
        Ok(out)
    };
    let spatial_cols = read_cols(data)?;
    let ordered_cols = read_cols(data)?;

    if data.remaining() < 8 {
        return Err(corrupt("truncated row count"));
    }
    let nrows = data.get_u64_le();
    for _ in 0..nrows {
        let id = if with_ids {
            if data.remaining() < 8 {
                return Err(corrupt("truncated row id"));
            }
            let page = data.get_u32_le();
            let slot = u16::try_from(data.get_u32_le())
                .map_err(|_| corrupt("row id slot out of range"))?;
            Some(jackpine_storage::RowId { page, slot })
        } else {
            None
        };
        if data.remaining() < 4 {
            return Err(corrupt("truncated row length"));
        }
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(corrupt("truncated row payload"));
        }
        let row = Value::decode_row(&data[..len])?;
        data.advance(len);
        match id {
            Some(id) => {
                db.place_row(&name, id, row)?;
            }
            None => {
                db.insert_row(&name, row)?;
            }
        }
    }

    // Rebuild indexes from their definitions (bulk path).
    for c in spatial_cols {
        let col_name = schema_cols
            .get(c)
            .ok_or_else(|| corrupt("spatial index column out of range"))?
            .name
            .clone();
        db.create_spatial_index(&name, &col_name)?;
    }
    for c in ordered_cols {
        let col_name = schema_cols
            .get(c)
            .ok_or_else(|| corrupt("ordered index column out of range"))?
            .name
            .clone();
        db.create_ordered_index(&name, &col_name)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("jackpine-persist-{name}-{}.db", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_data_and_indexes() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactGrid));
        db.execute("CREATE TABLE pois (id BIGINT, name TEXT, score DOUBLE, geom GEOMETRY)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!(
                "INSERT INTO pois VALUES ({i}, 'p{i}', {i}.5, \
                 ST_GeomFromText('POINT ({i} {i})'))"
            ))
            .unwrap();
        }
        db.execute("INSERT INTO pois VALUES (999, NULL, NULL, NULL)").unwrap();
        db.create_spatial_index("pois", "geom").unwrap();
        db.create_ordered_index("pois", "name").unwrap();

        let path = temp_path("roundtrip");
        db.save(&path).unwrap();
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.profile(), EngineProfile::ExactGrid);
        let want = db.execute("SELECT COUNT(*) FROM pois").unwrap();
        let got = restored.execute("SELECT COUNT(*) FROM pois").unwrap();
        assert_eq!(want, got);

        // Indexes were rebuilt: spatial and ordered paths both answer.
        let r = restored
            .execute(
                "SELECT COUNT(*) FROM pois WHERE ST_DWithin(geom, \
                 ST_GeomFromText('POINT (10 10)'), 1.5)",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "3"); // points 9,10,11
        let r = restored.execute("SELECT id FROM pois WHERE name = 'p7'").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "7");
        // NULL row survived.
        let r = restored.execute("SELECT COUNT(*) FROM pois WHERE name IS NULL").unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "1");
    }

    #[test]
    fn rejects_garbage_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(SpatialDb::open(&path).is_err());
        std::fs::write(&path, b"JKPN\x63\x00\x00\x00").unwrap(); // wrong version
        assert!(SpatialDb::open(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(SpatialDb::open("/nonexistent/dir/x.db").is_err());
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        let path = temp_path("empty");
        db.save(&path).unwrap();
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.profile(), EngineProfile::ExactRtree);
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn save_leaves_no_temp_file_and_replaces_atomically() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let path = temp_path("atomic");
        db.save(&path).unwrap();
        // Save again over the existing file (the rename path).
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.save(&path).unwrap();
        // No temp sibling (any `<name>.*.tmp`) may survive a save.
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        for entry in std::fs::read_dir(path.parent().unwrap()).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().to_string();
            assert!(
                !(name.starts_with(&stem) && name.ends_with(".tmp")),
                "temp file {name} survived a save"
            );
        }
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let r = restored.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "2");
    }

    #[test]
    fn legacy_v1_files_still_open() {
        // Hand-build a minimal v1 image: one table, one row, no indexes.
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V1);
        buf.put_u8(profile_tag(EngineProfile::ExactRtree));
        buf.put_u32_le(1); // one table
        put_str(&mut buf, "t");
        buf.put_u32_le(1); // one column
        put_str(&mut buf, "id");
        buf.put_u8(type_tag(DataType::Int));
        buf.put_u32_le(0); // no spatial indexes
        buf.put_u32_le(0); // no ordered indexes
        buf.put_u64_le(1); // one row
        let row = Value::encode_row(&[Value::Int(42)]);
        buf.put_u32_le(row.len() as u32);
        buf.put_slice(&row);

        let db = SpatialDb::open_bytes(&buf).unwrap();
        let r = db.execute("SELECT id FROM t").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "42");
    }

    #[test]
    fn legacy_v2_files_still_open() {
        // Hand-build a minimal v2 image (pre-generation: body-only file
        // checksum): one table, one row, no indexes.
        let mut block: Vec<u8> = Vec::new();
        put_str(&mut block, "t");
        block.put_u32_le(1); // one column
        put_str(&mut block, "id");
        block.put_u8(type_tag(DataType::Int));
        block.put_u32_le(0); // no spatial indexes
        block.put_u32_le(0); // no ordered indexes
        block.put_u64_le(1); // one row
        let row = Value::encode_row(&[Value::Int(43)]);
        block.put_u32_le(row.len() as u32);
        block.put_slice(&row);

        let mut body: Vec<u8> = Vec::new();
        body.put_u32_le(block.len() as u32);
        let block_crc = crc32(&block);
        body.put_slice(&block);
        body.put_u32_le(block_crc);

        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V2);
        buf.put_u8(profile_tag(EngineProfile::ExactRtree));
        buf.put_u32_le(1); // one table
        buf.put_u64_le(body.len() as u64);
        buf.put_u32_le(crc32(&body));
        buf.put_slice(&body);

        let (db, generation) = SpatialDb::open_bytes_gen(&buf).unwrap();
        assert_eq!(generation, 0, "v2 predates generations");
        let r = db.execute("SELECT id FROM t").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "43");
    }

    #[test]
    fn generation_stamp_roundtrips_and_peeks() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT)").unwrap();
        let path = temp_path("generation");
        db.save_gen(&path, 41).unwrap();
        assert_eq!(SpatialDb::peek_snapshot_generation(&path), 41);
        let (_, generation) = SpatialDb::open_gen(&path).unwrap();
        assert_eq!(generation, 41);
        std::fs::remove_file(&path).ok();
        // Missing files peek as generation 0.
        assert_eq!(SpatialDb::peek_snapshot_generation(&path), 0);
    }

    #[test]
    fn corrupt_count_cannot_preallocate() {
        // A v1 file claiming 4 billion columns must fail fast on the
        // clamped path, not allocate gigabytes first.
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V1);
        buf.put_u8(profile_tag(EngineProfile::ExactRtree));
        buf.put_u32_le(1);
        put_str(&mut buf, "t");
        buf.put_u32_le(u32::MAX); // absurd column count
        let err = SpatialDb::open_bytes(&buf).err().expect("must fail");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
    }

    #[test]
    fn persistence_errors_are_persist_variant() {
        let err = SpatialDb::open("/nonexistent/dir/x.db").err().expect("must fail");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
        let err = SpatialDb::open_bytes(b"garbage!!").err().expect("must fail");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
    }
}
