//! Database persistence: save a [`SpatialDb`] to a single file and open
//! it again, rebuilding indexes.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic "JKPN" | version u32 | profile u8 | table count u32
//! per table:
//!   name (u32 len + utf8) | column count u32
//!   per column: name (u32 len + utf8) | type tag u8
//!   spatial-index column count u32 | column ids u32...
//!   ordered-index column count u32 | column ids u32...
//!   row count u64 | per row: u32 len + row bytes (the heap codec)
//! ```
//!
//! Indexes are stored as *definitions* and rebuilt on open (bulk loads are
//! fast and this keeps the file format independent of index internals —
//! the same trade-off SQLite's `REINDEX`-on-restore makes).

use crate::{EngineError, EngineProfile, Result, SpatialDb};
use jackpine_geom::codec::{PutBytes, TakeBytes};
use jackpine_storage::{ColumnDef, DataType, Value};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"JKPN";
const VERSION: u32 = 1;

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Index(format!("persistence I/O: {e}"))
}

fn corrupt(msg: &str) -> EngineError {
    EngineError::Index(format!("persistence: {msg}"))
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Geometry => 3,
    }
}

fn tag_type(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Int),
        1 => Some(DataType::Float),
        2 => Some(DataType::Text),
        3 => Some(DataType::Geometry),
        _ => None,
    }
}

fn profile_tag(p: EngineProfile) -> u8 {
    match p {
        EngineProfile::ExactRtree => 0,
        EngineProfile::MbrOnly => 1,
        EngineProfile::ExactGrid => 2,
    }
}

fn tag_profile(tag: u8) -> Option<EngineProfile> {
    match tag {
        0 => Some(EngineProfile::ExactRtree),
        1 => Some(EngineProfile::MbrOnly),
        2 => Some(EngineProfile::ExactGrid),
        _ => None,
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut &[u8]) -> Result<String> {
    if data.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(corrupt("truncated string payload"));
    }
    let s = std::str::from_utf8(&data[..len]).map_err(|_| corrupt("invalid UTF-8"))?.to_string();
    data.advance(len);
    Ok(s)
}

impl SpatialDb {
    /// Serializes every table (schema, index definitions, rows) to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(1 << 16);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u8(profile_tag(self.profile()));

        let names = self.table_names();
        buf.put_u32_le(names.len() as u32);
        for name in &names {
            let table = self.table(name)?;
            let schema = table.schema().clone();
            put_str(&mut buf, &table.name);
            buf.put_u32_le(schema.arity() as u32);
            for col in schema.columns() {
                put_str(&mut buf, &col.name);
                buf.put_u8(type_tag(col.ty));
            }
            let (spatial_cols, ordered_cols) = self.index_definitions(name);
            buf.put_u32_le(spatial_cols.len() as u32);
            for c in spatial_cols {
                buf.put_u32_le(c as u32);
            }
            buf.put_u32_le(ordered_cols.len() as u32);
            for c in ordered_cols {
                buf.put_u32_le(c as u32);
            }

            buf.put_u64_le(table.heap.len() as u64);
            table.heap.scan(|_, row| {
                let bytes = Value::encode_row(row);
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(&bytes);
            })?;
        }

        let mut f = std::fs::File::create(path).map_err(io_err)?;
        f.write_all(&buf).map_err(io_err)?;
        Ok(())
    }

    /// Opens a database saved with [`SpatialDb::save`], rebuilding every
    /// index. The stored engine profile is restored.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<SpatialDb>> {
        let mut raw = Vec::new();
        std::fs::File::open(path).map_err(io_err)?.read_to_end(&mut raw).map_err(io_err)?;
        let mut data: &[u8] = &raw;

        if data.remaining() < 9 || &data[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        data.advance(4);
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let profile = tag_profile(data.get_u8()).ok_or_else(|| corrupt("unknown profile tag"))?;
        let db = Arc::new(SpatialDb::new(profile));

        if data.remaining() < 4 {
            return Err(corrupt("truncated table count"));
        }
        let ntables = data.get_u32_le();
        for _ in 0..ntables {
            let name = get_str(&mut data)?;
            if data.remaining() < 4 {
                return Err(corrupt("truncated column count"));
            }
            let ncols = data.get_u32_le();
            let mut cols = Vec::with_capacity(ncols as usize);
            for _ in 0..ncols {
                let cname = get_str(&mut data)?;
                if data.remaining() < 1 {
                    return Err(corrupt("truncated column type"));
                }
                let ty = tag_type(data.get_u8()).ok_or_else(|| corrupt("unknown type tag"))?;
                cols.push(ColumnDef::new(&cname, ty));
            }
            let schema_cols = cols.clone();
            db.create_table(&name, cols)?;

            let read_cols = |data: &mut &[u8]| -> Result<Vec<usize>> {
                if data.remaining() < 4 {
                    return Err(corrupt("truncated index count"));
                }
                let n = data.get_u32_le();
                let mut out = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    if data.remaining() < 4 {
                        return Err(corrupt("truncated index column"));
                    }
                    out.push(data.get_u32_le() as usize);
                }
                Ok(out)
            };
            let spatial_cols = read_cols(&mut data)?;
            let ordered_cols = read_cols(&mut data)?;

            if data.remaining() < 8 {
                return Err(corrupt("truncated row count"));
            }
            let nrows = data.get_u64_le();
            for _ in 0..nrows {
                if data.remaining() < 4 {
                    return Err(corrupt("truncated row length"));
                }
                let len = data.get_u32_le() as usize;
                if data.remaining() < len {
                    return Err(corrupt("truncated row payload"));
                }
                let row = Value::decode_row(&data[..len])?;
                data.advance(len);
                db.insert_row(&name, row)?;
            }

            // Rebuild indexes from their definitions (bulk path).
            for c in spatial_cols {
                let col_name = schema_cols
                    .get(c)
                    .ok_or_else(|| corrupt("spatial index column out of range"))?
                    .name
                    .clone();
                db.create_spatial_index(&name, &col_name)?;
            }
            for c in ordered_cols {
                let col_name = schema_cols
                    .get(c)
                    .ok_or_else(|| corrupt("ordered index column out of range"))?
                    .name
                    .clone();
                db.create_ordered_index(&name, &col_name)?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("jackpine-persist-{name}-{}.db", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_data_and_indexes() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactGrid));
        db.execute("CREATE TABLE pois (id BIGINT, name TEXT, score DOUBLE, geom GEOMETRY)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!(
                "INSERT INTO pois VALUES ({i}, 'p{i}', {i}.5, \
                 ST_GeomFromText('POINT ({i} {i})'))"
            ))
            .unwrap();
        }
        db.execute("INSERT INTO pois VALUES (999, NULL, NULL, NULL)").unwrap();
        db.create_spatial_index("pois", "geom").unwrap();
        db.create_ordered_index("pois", "name").unwrap();

        let path = temp_path("roundtrip");
        db.save(&path).unwrap();
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.profile(), EngineProfile::ExactGrid);
        let want = db.execute("SELECT COUNT(*) FROM pois").unwrap();
        let got = restored.execute("SELECT COUNT(*) FROM pois").unwrap();
        assert_eq!(want, got);

        // Indexes were rebuilt: spatial and ordered paths both answer.
        let r = restored
            .execute(
                "SELECT COUNT(*) FROM pois WHERE ST_DWithin(geom, \
                 ST_GeomFromText('POINT (10 10)'), 1.5)",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "3"); // points 9,10,11
        let r = restored.execute("SELECT id FROM pois WHERE name = 'p7'").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "7");
        // NULL row survived.
        let r = restored.execute("SELECT COUNT(*) FROM pois WHERE name IS NULL").unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "1");
    }

    #[test]
    fn rejects_garbage_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(SpatialDb::open(&path).is_err());
        std::fs::write(&path, b"JKPN\x63\x00\x00\x00").unwrap(); // wrong version
        assert!(SpatialDb::open(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(SpatialDb::open("/nonexistent/dir/x.db").is_err());
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        let path = temp_path("empty");
        db.save(&path).unwrap();
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.profile(), EngineProfile::ExactRtree);
        assert!(restored.table_names().is_empty());
    }
}
