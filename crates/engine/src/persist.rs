//! Database persistence: save a [`SpatialDb`] to a single file and open
//! it again, rebuilding indexes.
//!
//! Format v2 (all little-endian):
//!
//! ```text
//! header (25 bytes):
//!   magic "JKPN" | version u32 = 2 | profile u8
//!   table count u32 | body len u64 | body crc32 u32
//! body, per table:
//!   block len u32 | block bytes | block crc32 u32
//! block bytes:
//!   name (u32 len + utf8) | column count u32
//!   per column: name (u32 len + utf8) | type tag u8
//!   spatial-index column count u32 | column ids u32...
//!   ordered-index column count u32 | column ids u32...
//!   row count u64 | per row: u32 len + row bytes (the heap codec)
//! ```
//!
//! Durability rules:
//!
//! * **Atomic replacement** — [`SpatialDb::save`] writes to a `.tmp`
//!   sibling, fsyncs it, then renames over the destination (and fsyncs
//!   the directory). A crash at any point leaves either the old file or
//!   the new one, never a torn hybrid.
//! * **Checksums** — the header carries a CRC32 of the whole body and
//!   each table block carries its own; [`SpatialDb::open`] verifies both
//!   before trusting a byte, so truncation and bit rot surface as
//!   [`EngineError::Persist`], never as a panic or a silently short
//!   table.
//! * **Consistent counts** — row payloads are streamed into the block
//!   first and the row count written from what was actually streamed, so
//!   a concurrent insert cannot produce a count/payload mismatch.
//! * **Bounded allocation** — every `with_capacity` on a count read from
//!   the file is clamped by the bytes remaining, so a corrupt count
//!   cannot pre-allocate gigabytes before validation catches it.
//!
//! Version-1 files (no checksums) are still readable. Indexes are stored
//! as *definitions* and rebuilt on open (bulk loads are fast and this
//! keeps the file format independent of index internals — the same
//! trade-off SQLite's `REINDEX`-on-restore makes).

use crate::checksum::crc32;
use crate::{EngineError, EngineProfile, Result, SpatialDb};
use jackpine_geom::codec::{PutBytes, TakeBytes};
use jackpine_storage::{ColumnDef, DataType, Value};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"JKPN";
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;
/// magic + version + profile + table count + body len + body crc.
const HEADER_LEN: usize = 4 + 4 + 1 + 4 + 8 + 4;

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Persist(format!("persistence I/O: {e}"))
}

fn corrupt(msg: &str) -> EngineError {
    EngineError::Persist(format!("persistence: {msg}"))
}

pub(crate) fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Geometry => 3,
    }
}

pub(crate) fn tag_type(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Int),
        1 => Some(DataType::Float),
        2 => Some(DataType::Text),
        3 => Some(DataType::Geometry),
        _ => None,
    }
}

fn profile_tag(p: EngineProfile) -> u8 {
    match p {
        EngineProfile::ExactRtree => 0,
        EngineProfile::MbrOnly => 1,
        EngineProfile::ExactGrid => 2,
    }
}

fn tag_profile(tag: u8) -> Option<EngineProfile> {
    match tag {
        0 => Some(EngineProfile::ExactRtree),
        1 => Some(EngineProfile::MbrOnly),
        2 => Some(EngineProfile::ExactGrid),
        _ => None,
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut &[u8]) -> Result<String> {
    if data.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(corrupt("truncated string payload"));
    }
    let s = std::str::from_utf8(&data[..len]).map_err(|_| corrupt("invalid UTF-8"))?.to_string();
    data.advance(len);
    Ok(s)
}

/// Writes `bytes` to `path` atomically: temp sibling, fsync, rename,
/// directory fsync. Readers of `path` see either the old content or the
/// new content, whatever the crash timing.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        // The rename must not be reordered before the data reaches disk.
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    // Persist the rename itself. Directory fsync is not supported on
    // every platform/filesystem; failure to sync is not failure to save.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

impl SpatialDb {
    /// Serializes every table (schema, index definitions, rows) to the
    /// complete format-v2 byte image, checksums included.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>> {
        let names = self.table_names();
        let mut body: Vec<u8> = Vec::with_capacity(1 << 16);
        for name in &names {
            let table = self.table(name)?;
            let schema = table.schema().clone();
            let mut block: Vec<u8> = Vec::with_capacity(1 << 12);
            put_str(&mut block, &table.name);
            block.put_u32_le(schema.arity() as u32);
            for col in schema.columns() {
                put_str(&mut block, &col.name);
                block.put_u8(type_tag(col.ty));
            }
            let (spatial_cols, ordered_cols) = self.index_definitions(name);
            block.put_u32_le(spatial_cols.len() as u32);
            for c in spatial_cols {
                block.put_u32_le(c as u32);
            }
            block.put_u32_le(ordered_cols.len() as u32);
            for c in ordered_cols {
                block.put_u32_le(c as u32);
            }

            // One consistent view: stream the rows first, then write the
            // count of rows actually streamed. Reading `heap.len()` up
            // front would race with concurrent inserts and produce a
            // file that `open()` must reject.
            let mut rows_buf: Vec<u8> = Vec::with_capacity(1 << 12);
            let mut nrows: u64 = 0;
            table.heap.scan(|_, row| {
                let bytes = Value::encode_row(row);
                rows_buf.put_u32_le(bytes.len() as u32);
                rows_buf.put_slice(&bytes);
                nrows += 1;
            })?;
            block.put_u64_le(nrows);
            block.put_slice(&rows_buf);

            body.put_u32_le(block.len() as u32);
            let block_crc = crc32(&block);
            body.put_slice(&block);
            body.put_u32_le(block_crc);
        }

        let mut out: Vec<u8> = Vec::with_capacity(HEADER_LEN + body.len());
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        out.put_u8(profile_tag(self.profile()));
        out.put_u32_le(names.len() as u32);
        out.put_u64_le(body.len() as u64);
        out.put_u32_le(crc32(&body));
        out.put_slice(&body);
        Ok(out)
    }

    /// Serializes every table to `path`, atomically: the bytes go to a
    /// `<path>.tmp` sibling, are fsynced, and are renamed into place. A
    /// crash mid-save leaves the previous file untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = self.snapshot_bytes()?;
        atomic_write(path.as_ref(), &bytes)
    }

    /// Opens a database saved with [`SpatialDb::save`], verifying
    /// checksums and rebuilding every index. The stored engine profile
    /// is restored. Corrupt or truncated files fail with
    /// [`EngineError::Persist`]; they never panic and never load a
    /// silently short table.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<SpatialDb>> {
        let mut raw = Vec::new();
        std::fs::File::open(path).map_err(io_err)?.read_to_end(&mut raw).map_err(io_err)?;
        Self::open_bytes(&raw)
    }

    /// Opens a database from an in-memory snapshot image (the content of
    /// a [`SpatialDb::save`] file).
    pub fn open_bytes(raw: &[u8]) -> Result<Arc<SpatialDb>> {
        let mut data: &[u8] = raw;
        if data.remaining() < 9 || &data[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        data.advance(4);
        let version = data.get_u32_le();
        match version {
            VERSION_V1 => Self::open_v1(data),
            VERSION => Self::open_v2(data),
            other => Err(corrupt(&format!("unsupported version {other}"))),
        }
    }

    /// Format v2: checksummed header + framed table blocks.
    fn open_v2(mut data: &[u8]) -> Result<Arc<SpatialDb>> {
        if data.remaining() < HEADER_LEN - 8 {
            return Err(corrupt("truncated header"));
        }
        let profile = tag_profile(data.get_u8()).ok_or_else(|| corrupt("unknown profile tag"))?;
        let ntables = data.get_u32_le();
        let body_len = data.get_u64_le();
        let body_crc = data.get_u32_le();
        // The byte count is exact: truncation and appended garbage both
        // fail here, before any content is inspected.
        if data.remaining() as u64 != body_len {
            return Err(corrupt(&format!(
                "body length mismatch: header says {body_len}, file holds {}",
                data.remaining()
            )));
        }
        if crc32(data) != body_crc {
            return Err(corrupt("file checksum mismatch"));
        }

        let db = Arc::new(SpatialDb::new(profile));
        for _ in 0..ntables {
            if data.remaining() < 4 {
                return Err(corrupt("truncated table block length"));
            }
            let block_len = data.get_u32_le() as usize;
            if data.remaining() < block_len + 4 {
                return Err(corrupt("truncated table block"));
            }
            let block = &data[..block_len];
            data.advance(block_len);
            let want_crc = data.get_u32_le();
            if crc32(block) != want_crc {
                return Err(corrupt("table block checksum mismatch"));
            }
            let mut cursor = block;
            load_table(&db, &mut cursor)?;
            if cursor.remaining() != 0 {
                return Err(corrupt("trailing bytes in table block"));
            }
        }
        if data.remaining() != 0 {
            return Err(corrupt("trailing bytes after last table"));
        }
        Ok(db)
    }

    /// Legacy format v1: no checksums, one continuous stream.
    fn open_v1(mut data: &[u8]) -> Result<Arc<SpatialDb>> {
        if data.remaining() < 1 {
            return Err(corrupt("truncated profile tag"));
        }
        let profile = tag_profile(data.get_u8()).ok_or_else(|| corrupt("unknown profile tag"))?;
        let db = Arc::new(SpatialDb::new(profile));
        if data.remaining() < 4 {
            return Err(corrupt("truncated table count"));
        }
        let ntables = data.get_u32_le();
        for _ in 0..ntables {
            load_table(&db, &mut data)?;
        }
        Ok(db)
    }
}

/// Parses one serialized table (schema, index definitions, rows) from
/// `data` and loads it into `db`, rebuilding the indexes at the end (the
/// bulk path). Shared by the v1 and v2 readers and by WAL recovery.
fn load_table(db: &Arc<SpatialDb>, data: &mut &[u8]) -> Result<()> {
    let name = get_str(data)?;
    if data.remaining() < 4 {
        return Err(corrupt("truncated column count"));
    }
    let ncols = data.get_u32_le() as usize;
    // Clamp: a column needs ≥ 5 encoded bytes, so a corrupt count cannot
    // pre-allocate more than the data could possibly hold.
    let mut cols = Vec::with_capacity(ncols.min(data.remaining() / 5 + 1));
    for _ in 0..ncols {
        let cname = get_str(data)?;
        if data.remaining() < 1 {
            return Err(corrupt("truncated column type"));
        }
        let ty = tag_type(data.get_u8()).ok_or_else(|| corrupt("unknown type tag"))?;
        cols.push(ColumnDef::new(&cname, ty));
    }
    let schema_cols = cols.clone();
    db.create_table(&name, cols)?;

    let read_cols = |data: &mut &[u8]| -> Result<Vec<usize>> {
        if data.remaining() < 4 {
            return Err(corrupt("truncated index count"));
        }
        let n = data.get_u32_le() as usize;
        let mut out = Vec::with_capacity(n.min(data.remaining() / 4 + 1));
        for _ in 0..n {
            if data.remaining() < 4 {
                return Err(corrupt("truncated index column"));
            }
            out.push(data.get_u32_le() as usize);
        }
        Ok(out)
    };
    let spatial_cols = read_cols(data)?;
    let ordered_cols = read_cols(data)?;

    if data.remaining() < 8 {
        return Err(corrupt("truncated row count"));
    }
    let nrows = data.get_u64_le();
    for _ in 0..nrows {
        if data.remaining() < 4 {
            return Err(corrupt("truncated row length"));
        }
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(corrupt("truncated row payload"));
        }
        let row = Value::decode_row(&data[..len])?;
        data.advance(len);
        db.insert_row(&name, row)?;
    }

    // Rebuild indexes from their definitions (bulk path).
    for c in spatial_cols {
        let col_name = schema_cols
            .get(c)
            .ok_or_else(|| corrupt("spatial index column out of range"))?
            .name
            .clone();
        db.create_spatial_index(&name, &col_name)?;
    }
    for c in ordered_cols {
        let col_name = schema_cols
            .get(c)
            .ok_or_else(|| corrupt("ordered index column out of range"))?
            .name
            .clone();
        db.create_ordered_index(&name, &col_name)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("jackpine-persist-{name}-{}.db", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_data_and_indexes() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactGrid));
        db.execute("CREATE TABLE pois (id BIGINT, name TEXT, score DOUBLE, geom GEOMETRY)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!(
                "INSERT INTO pois VALUES ({i}, 'p{i}', {i}.5, \
                 ST_GeomFromText('POINT ({i} {i})'))"
            ))
            .unwrap();
        }
        db.execute("INSERT INTO pois VALUES (999, NULL, NULL, NULL)").unwrap();
        db.create_spatial_index("pois", "geom").unwrap();
        db.create_ordered_index("pois", "name").unwrap();

        let path = temp_path("roundtrip");
        db.save(&path).unwrap();
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.profile(), EngineProfile::ExactGrid);
        let want = db.execute("SELECT COUNT(*) FROM pois").unwrap();
        let got = restored.execute("SELECT COUNT(*) FROM pois").unwrap();
        assert_eq!(want, got);

        // Indexes were rebuilt: spatial and ordered paths both answer.
        let r = restored
            .execute(
                "SELECT COUNT(*) FROM pois WHERE ST_DWithin(geom, \
                 ST_GeomFromText('POINT (10 10)'), 1.5)",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "3"); // points 9,10,11
        let r = restored.execute("SELECT id FROM pois WHERE name = 'p7'").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "7");
        // NULL row survived.
        let r = restored.execute("SELECT COUNT(*) FROM pois WHERE name IS NULL").unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "1");
    }

    #[test]
    fn rejects_garbage_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(SpatialDb::open(&path).is_err());
        std::fs::write(&path, b"JKPN\x63\x00\x00\x00").unwrap(); // wrong version
        assert!(SpatialDb::open(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(SpatialDb::open("/nonexistent/dir/x.db").is_err());
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        let path = temp_path("empty");
        db.save(&path).unwrap();
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.profile(), EngineProfile::ExactRtree);
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn save_leaves_no_temp_file_and_replaces_atomically() {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let path = temp_path("atomic");
        db.save(&path).unwrap();
        // Save again over the existing file (the rename path).
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.save(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "temp file must not survive a save");
        let restored = SpatialDb::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let r = restored.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "2");
    }

    #[test]
    fn legacy_v1_files_still_open() {
        // Hand-build a minimal v1 image: one table, one row, no indexes.
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V1);
        buf.put_u8(profile_tag(EngineProfile::ExactRtree));
        buf.put_u32_le(1); // one table
        put_str(&mut buf, "t");
        buf.put_u32_le(1); // one column
        put_str(&mut buf, "id");
        buf.put_u8(type_tag(DataType::Int));
        buf.put_u32_le(0); // no spatial indexes
        buf.put_u32_le(0); // no ordered indexes
        buf.put_u64_le(1); // one row
        let row = Value::encode_row(&vec![Value::Int(42)]);
        buf.put_u32_le(row.len() as u32);
        buf.put_slice(&row);

        let db = SpatialDb::open_bytes(&buf).unwrap();
        let r = db.execute("SELECT id FROM t").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "42");
    }

    #[test]
    fn corrupt_count_cannot_preallocate() {
        // A v1 file claiming 4 billion columns must fail fast on the
        // clamped path, not allocate gigabytes first.
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V1);
        buf.put_u8(profile_tag(EngineProfile::ExactRtree));
        buf.put_u32_le(1);
        put_str(&mut buf, "t");
        buf.put_u32_le(u32::MAX); // absurd column count
        let err = SpatialDb::open_bytes(&buf).err().expect("must fail");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
    }

    #[test]
    fn persistence_errors_are_persist_variant() {
        let err = SpatialDb::open("/nonexistent/dir/x.db").err().expect("must fail");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
        let err = SpatialDb::open_bytes(b"garbage!!").err().expect("must fail");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
    }
}
