//! Append-only write-ahead log: every mutating operation since the last
//! snapshot is recorded as a length- and checksum-framed record, so
//! [`crate::SpatialDb::open_durable`] can replay writes that a crash
//! would otherwise lose.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic "JKWL" | version u32 | generation u64
//! per record: payload len u32 | crc32(payload) u32 | payload
//! ```
//!
//! Replay trusts a record only when its frame is complete *and* its
//! checksum matches; the first torn or corrupt frame ends the log — a
//! crash mid-append can only lose the suffix it was writing, never
//! resurrect garbage. That is the same tail-scan rule PostgreSQL and
//! SQLite's WAL use.
//!
//! The header's generation number ties the log to the snapshot it was
//! cut against: a checkpoint writes the new snapshot (stamped with the
//! next generation) *before* truncating the log, so a crash between the
//! two leaves a stale log whose generation no longer matches — recovery
//! sees the mismatch and discards it instead of replaying records the
//! snapshot already contains.

use crate::checksum::crc32;
use crate::persist::{tag_type, type_tag};
use crate::{EngineError, Result};
use jackpine_geom::codec::{PutBytes, TakeBytes};
use jackpine_storage::sync::Mutex;
use jackpine_storage::{ColumnDef, Row, RowId, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 4] = b"JKWL";
/// WAL format version (2 added the generation field; 3 added logical
/// `Delete` records so DML no longer forces a checkpoint; 4 added
/// `InsertAt`/`DeleteId`, which address rows by `RowId` — v3's
/// byte-matching `Delete` removes the *wrong* row when a table holds
/// duplicate rows).
pub const WAL_VERSION: u32 = 4;
/// Oldest version replay still accepts. Versions 2 and 3 contain strict
/// subsets of version 4's record kinds, so they replay unchanged.
pub const WAL_MIN_VERSION: u32 = 2;
/// Bytes of file header before the first record frame.
pub const WAL_HEADER_LEN: usize = 16;
/// Bytes of framing (length + checksum) per record.
pub const FRAME_OVERHEAD: usize = 8;

fn persist_err(msg: impl Into<String>) -> EngineError {
    EngineError::Persist(msg.into())
}

fn io_err(e: std::io::Error) -> EngineError {
    persist_err(format!("WAL I/O: {e}"))
}

/// One logged operation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE` with the full column list.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions, in schema order.
        columns: Vec<ColumnDef>,
    },
    /// One inserted row.
    Insert {
        /// Destination table.
        table: String,
        /// The row values.
        row: Row,
    },
    /// `CREATE INDEX` (spatial) on one geometry column.
    CreateSpatialIndex {
        /// Indexed table.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// `CREATE INDEX` (ordered) on one scalar column.
    CreateOrderedIndex {
        /// Indexed table.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// Legacy (v3) logical delete, identifying the row by its full
    /// encoded value. Kept for replaying v3 logs only — byte matching
    /// deletes an *arbitrary* copy when a table holds duplicate rows,
    /// which is wrong whenever later records address rows by id. New
    /// logs write [`WalRecord::DeleteId`] instead.
    Delete {
        /// Source table.
        table: String,
        /// The deleted row's values.
        row: Row,
    },
    /// One logically deleted row, addressed by its `RowId` (v4+).
    /// Row ids are stable across recovery because v4 snapshots record
    /// each row's id and reload restores rows to their original slots.
    DeleteId {
        /// Source table.
        table: String,
        /// The deleted row's heap address.
        id: RowId,
    },
    /// One inserted row together with the heap slot it landed in (v4+),
    /// so replay reproduces the exact same `RowId` the live run handed
    /// to indexes and later `DeleteId` records.
    InsertAt {
        /// Destination table.
        table: String,
        /// The heap address the row was placed at.
        id: RowId,
        /// The row values.
        row: Row,
    },
}

const KIND_CREATE_TABLE: u8 = 0;
const KIND_INSERT: u8 = 1;
const KIND_SPATIAL_INDEX: u8 = 2;
const KIND_ORDERED_INDEX: u8 = 3;
const KIND_DELETE: u8 = 4;
const KIND_DELETE_ID: u8 = 5;
const KIND_INSERT_AT: u8 = 6;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_row_id(buf: &mut Vec<u8>, id: RowId) {
    buf.put_u32_le(id.page);
    buf.put_u32_le(u32::from(id.slot));
}

fn get_row_id(data: &mut &[u8]) -> Result<RowId> {
    if data.remaining() < 8 {
        return Err(persist_err("WAL: truncated row id"));
    }
    let page = data.get_u32_le();
    let slot = data.get_u32_le();
    let slot =
        u16::try_from(slot).map_err(|_| persist_err("WAL: row id slot out of range"))?;
    Ok(RowId { page, slot })
}

fn get_str(data: &mut &[u8]) -> Result<String> {
    if data.remaining() < 4 {
        return Err(persist_err("WAL: truncated string length"));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(persist_err("WAL: truncated string payload"));
    }
    let s = std::str::from_utf8(&data[..len])
        .map_err(|_| persist_err("WAL: invalid UTF-8"))?
        .to_string();
    data.advance(len);
    Ok(s)
}

impl WalRecord {
    /// Serializes the record payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            WalRecord::CreateTable { name, columns } => {
                buf.put_u8(KIND_CREATE_TABLE);
                put_str(&mut buf, name);
                buf.put_u32_le(columns.len() as u32);
                for col in columns {
                    put_str(&mut buf, &col.name);
                    buf.put_u8(type_tag(col.ty));
                }
            }
            WalRecord::Insert { table, row } => {
                buf.put_u8(KIND_INSERT);
                put_str(&mut buf, table);
                buf.put_slice(&Value::encode_row(row));
            }
            WalRecord::CreateSpatialIndex { table, column } => {
                buf.put_u8(KIND_SPATIAL_INDEX);
                put_str(&mut buf, table);
                put_str(&mut buf, column);
            }
            WalRecord::CreateOrderedIndex { table, column } => {
                buf.put_u8(KIND_ORDERED_INDEX);
                put_str(&mut buf, table);
                put_str(&mut buf, column);
            }
            WalRecord::Delete { table, row } => {
                buf.put_u8(KIND_DELETE);
                put_str(&mut buf, table);
                buf.put_slice(&Value::encode_row(row));
            }
            WalRecord::DeleteId { table, id } => {
                buf.put_u8(KIND_DELETE_ID);
                put_str(&mut buf, table);
                put_row_id(&mut buf, *id);
            }
            WalRecord::InsertAt { table, id, row } => {
                buf.put_u8(KIND_INSERT_AT);
                put_str(&mut buf, table);
                put_row_id(&mut buf, *id);
                buf.put_slice(&Value::encode_row(row));
            }
        }
        buf
    }

    /// Decodes one record payload produced by [`WalRecord::encode`].
    pub fn decode(data: &[u8]) -> Result<WalRecord> {
        let mut data = data;
        if data.remaining() < 1 {
            return Err(persist_err("WAL: empty record"));
        }
        match data.get_u8() {
            KIND_CREATE_TABLE => {
                let name = get_str(&mut data)?;
                if data.remaining() < 4 {
                    return Err(persist_err("WAL: truncated column count"));
                }
                let ncols = data.get_u32_le() as usize;
                // A corrupt count cannot force a huge allocation: each
                // column needs at least 5 bytes on the wire.
                let mut columns = Vec::with_capacity(ncols.min(data.remaining() / 5 + 1));
                for _ in 0..ncols {
                    let cname = get_str(&mut data)?;
                    if data.remaining() < 1 {
                        return Err(persist_err("WAL: truncated column type"));
                    }
                    let ty = tag_type(data.get_u8())
                        .ok_or_else(|| persist_err("WAL: unknown type tag"))?;
                    columns.push(ColumnDef::new(&cname, ty));
                }
                Ok(WalRecord::CreateTable { name, columns })
            }
            KIND_INSERT => {
                let table = get_str(&mut data)?;
                let row = Value::decode_row(data)?;
                Ok(WalRecord::Insert { table, row })
            }
            KIND_SPATIAL_INDEX => {
                let table = get_str(&mut data)?;
                let column = get_str(&mut data)?;
                Ok(WalRecord::CreateSpatialIndex { table, column })
            }
            KIND_ORDERED_INDEX => {
                let table = get_str(&mut data)?;
                let column = get_str(&mut data)?;
                Ok(WalRecord::CreateOrderedIndex { table, column })
            }
            KIND_DELETE => {
                let table = get_str(&mut data)?;
                let row = Value::decode_row(data)?;
                Ok(WalRecord::Delete { table, row })
            }
            KIND_DELETE_ID => {
                let table = get_str(&mut data)?;
                let id = get_row_id(&mut data)?;
                Ok(WalRecord::DeleteId { table, id })
            }
            KIND_INSERT_AT => {
                let table = get_str(&mut data)?;
                let id = get_row_id(&mut data)?;
                let row = Value::decode_row(data)?;
                Ok(WalRecord::InsertAt { table, id, row })
            }
            other => Err(persist_err(format!("WAL: unknown record kind {other}"))),
        }
    }

    /// The record as a complete on-disk frame: `len | crc | payload`.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        out.put_u32_le(payload.len() as u32);
        out.put_u32_le(crc32(&payload));
        out.put_slice(&payload);
        out
    }
}

/// The WAL header bytes (magic + version + generation).
pub fn wal_header(generation: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN);
    buf.put_slice(WAL_MAGIC);
    buf.put_u32_le(WAL_VERSION);
    buf.put_u64_le(generation);
    buf
}

/// What a replay recovered.
#[derive(Debug)]
pub struct Replay {
    /// Every record with an intact frame, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn or corrupt tail that were ignored (0 for a clean log).
    pub ignored_tail: usize,
    /// The generation of the snapshot this log was cut against (0 when
    /// the file was missing or its header torn — `records` is empty in
    /// both cases). A log is replayable only over the snapshot whose
    /// generation matches.
    pub generation: u64,
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    sync: bool,
    /// Metrics registry counting appends and fsyncs, when attached.
    metrics: Option<std::sync::Arc<jackpine_obs::EngineMetrics>>,
    /// Fault injection (tests): when set, the next append attempts fail
    /// with an I/O-shaped error without touching the file.
    fail_appends: std::sync::atomic::AtomicBool,
}

impl Wal {
    /// Creates (or truncates to empty) the log at `path` and writes the
    /// file header, stamped with the generation of the snapshot the log
    /// is cut against. With `sync`, every append is fsynced.
    pub fn create(path: impl AsRef<Path>, sync: bool, generation: u64) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::create(&path).map_err(io_err)?;
        file.write_all(&wal_header(generation)).map_err(io_err)?;
        if sync {
            file.sync_data().map_err(io_err)?;
        }
        Ok(Wal {
            file: Mutex::new(file),
            path,
            sync,
            metrics: None,
            fail_appends: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Attaches a metrics registry: subsequent appends count into
    /// `wal_appends`, and their fsyncs into `wal_fsyncs`.
    pub fn set_metrics(&mut self, metrics: std::sync::Arc<jackpine_obs::EngineMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether appends are durable (fsync-backed). The group-commit
    /// pipeline consults this to decide if a batch needs an fsync at
    /// all.
    pub fn sync_enabled(&self) -> bool {
        self.sync
    }

    /// Fault injection for tests: while enabled, every append attempt
    /// fails without touching the file, simulating a full or failing
    /// disk at the worst possible moment.
    #[doc(hidden)]
    pub fn set_fail_appends(&self, fail: bool) {
        self.fail_appends.store(fail, std::sync::atomic::Ordering::SeqCst);
    }

    fn check_fail(&self) -> Result<()> {
        if self.fail_appends.load(std::sync::atomic::Ordering::SeqCst) {
            return Err(persist_err("WAL I/O: injected append failure"));
        }
        Ok(())
    }

    /// Appends one framed record. The frame is written with a single
    /// `write_all`, so a crash leaves at worst one torn frame at the tail
    /// — which replay detects and drops.
    pub fn append(&self, record: &WalRecord) -> Result<()> {
        self.check_fail()?;
        let frame = record.frame();
        let mut file = self.file.lock();
        file.write_all(&frame).map_err(io_err)?;
        if self.sync {
            file.sync_data().map_err(io_err)?;
        }
        if let Some(m) = &self.metrics {
            m.wal_appends.incr();
            if self.sync {
                m.wal_fsyncs.incr();
            }
        }
        Ok(())
    }

    /// Appends a batch of framed records with a single `write_all` and
    /// **no fsync** — the commit pipeline's staging write. A crash can
    /// tear at most the batch's own tail, which replay drops; durability
    /// arrives with the next [`Wal::sync`]. Counts one `wal_appends` per
    /// record.
    pub fn write_frames(&self, records: &[WalRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.check_fail()?;
        let mut buf = Vec::with_capacity(records.len() * 64);
        for rec in records {
            buf.extend_from_slice(&rec.frame());
        }
        let mut file = self.file.lock();
        file.write_all(&buf).map_err(io_err)?;
        drop(file);
        if let Some(m) = &self.metrics {
            m.wal_appends.add(records.len() as u64);
        }
        Ok(())
    }

    /// Flushes everything written so far to stable storage (one
    /// `sync_data`). The group-commit leader calls this once per batch,
    /// amortizing the fsync across every commit in it.
    pub fn sync(&self) -> Result<()> {
        let file = self.file.lock();
        file.sync_data().map_err(io_err)?;
        drop(file);
        if let Some(m) = &self.metrics {
            m.wal_fsyncs.incr();
        }
        Ok(())
    }

    /// Truncates the log back to an empty (header-only) state at the
    /// given generation, after a checkpoint has made its records
    /// redundant. Every intermediate crash state (empty file, partial
    /// header) replays to zero records, so the truncation itself is
    /// crash-safe.
    pub fn reset(&self, generation: u64) -> Result<()> {
        let mut file = self.file.lock();
        file.set_len(0).map_err(io_err)?;
        // Rewind: set_len does not move the write cursor.
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(0)).map_err(io_err)?;
        file.write_all(&wal_header(generation)).map_err(io_err)?;
        if self.sync {
            file.sync_data().map_err(io_err)?;
        }
        Ok(())
    }

    /// The generation stamp of the log at `path`, without replaying it.
    /// Best effort: a missing, legacy, or unreadable header reports 0.
    pub fn peek_generation(path: impl AsRef<Path>) -> u64 {
        use std::io::Read;
        let mut head = [0u8; WAL_HEADER_LEN];
        let Ok(mut f) = std::fs::File::open(path) else { return 0 };
        if f.read_exact(&mut head).is_err() {
            return 0;
        }
        let mut data: &[u8] = &head;
        if &data[..4] != WAL_MAGIC {
            return 0;
        }
        data.advance(4);
        let version = data.get_u32_le();
        if !(WAL_MIN_VERSION..=WAL_VERSION).contains(&version) {
            return 0;
        }
        data.get_u64_le()
    }

    /// Scans the log at `path`, returning every intact record, the log's
    /// generation, and the size of any ignored torn tail. A missing file
    /// replays to nothing, and so does a strict prefix of a valid header
    /// (a crash while [`Wal::create`] was writing it). Header bytes that
    /// could *not* have come from a torn header write — wrong magic or
    /// version — are rejected: that is corruption of the log head, which
    /// no crash during create or append can produce.
    pub fn replay(path: impl AsRef<Path>) -> Result<Replay> {
        let raw = match std::fs::read(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay { records: Vec::new(), ignored_tail: 0, generation: 0 })
            }
            Err(e) => return Err(io_err(e)),
        };
        let mut data: &[u8] = &raw;
        if data.remaining() < WAL_HEADER_LEN {
            // Short header: torn create if it is a prefix of a valid
            // header (the generation bytes, 8.., may hold any value),
            // corruption otherwise.
            let fixed = wal_header(0);
            let n = data.remaining().min(8);
            if data[..n] != fixed[..n] {
                return Err(persist_err("WAL: bad header"));
            }
            return Ok(Replay {
                records: Vec::new(),
                ignored_tail: data.remaining(),
                generation: 0,
            });
        }
        if &data[..4] != WAL_MAGIC {
            return Err(persist_err("WAL: bad magic"));
        }
        data.advance(4);
        let version = data.get_u32_le();
        if !(WAL_MIN_VERSION..=WAL_VERSION).contains(&version) {
            return Err(persist_err(format!("WAL: unsupported version {version}")));
        }
        let generation = data.get_u64_le();
        let mut records = Vec::new();
        while data.remaining() >= FRAME_OVERHEAD {
            let tail = data.remaining();
            let mut peek = data;
            let len = peek.get_u32_le() as usize;
            let want_crc = peek.get_u32_le();
            if peek.remaining() < len {
                // Torn frame: the append was cut off mid-payload.
                return Ok(Replay { records, ignored_tail: tail, generation });
            }
            if crc32(&peek[..len]) != want_crc {
                // Bit rot or a torn length field; nothing past this
                // point can be trusted.
                return Ok(Replay { records, ignored_tail: tail, generation });
            }
            // The checksum passed, so these are the bytes that were
            // appended — if they do not parse, that is a format bug or
            // version skew, not a torn write. Silently dropping this
            // record (and every committed record behind it) would be
            // data loss, so fail loudly instead.
            let rec = WalRecord::decode(&peek[..len]).map_err(|e| {
                persist_err(format!("WAL: checksum-valid record failed to decode: {e}"))
            })?;
            records.push(rec);
            data = &peek[len..];
        }
        let ignored_tail = data.remaining();
        Ok(Replay { records, ignored_tail, generation })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_storage::DataType;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("jackpine-wal-{name}-{}.log", std::process::id()));
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                ],
            },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![Value::Int(7), Value::Text("x".into())],
            },
            WalRecord::Insert { table: "t".into(), row: vec![Value::Int(8), Value::Null] },
            WalRecord::CreateOrderedIndex { table: "t".into(), column: "name".into() },
            WalRecord::CreateSpatialIndex { table: "t".into(), column: "geom".into() },
            WalRecord::Delete { table: "t".into(), row: vec![Value::Int(7), Value::Null] },
            WalRecord::InsertAt {
                table: "t".into(),
                id: RowId { page: 3, slot: 41 },
                row: vec![Value::Int(9), Value::Text("y".into())],
            },
            WalRecord::DeleteId { table: "t".into(), id: RowId { page: 3, slot: 41 } },
        ]
    }

    #[test]
    fn record_roundtrip() {
        for rec in sample_records() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("roundtrip");
        let wal = Wal::create(&path, false, 7).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.ignored_tail, 0);
        assert_eq!(replay.generation, 7);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        let wal = Wal::create(&path, false, 1).unwrap();
        let recs = sample_records();
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the last record's frame.
        let cut = full.len() - 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        let replay = Wal::replay(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.records, recs[..recs.len() - 1]);
        assert!(replay.ignored_tail > 0);
    }

    #[test]
    fn reset_empties_the_log_and_restamps_the_generation() {
        let path = temp_path("reset");
        let wal = Wal::create(&path, true, 1).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.reset(2).unwrap();
        wal.append(&sample_records()[3]).unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec![sample_records()[3].clone()]);
        assert_eq!(replay.generation, 2);
        assert_eq!(Wal::peek_generation(&path), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_head_is_rejected() {
        let path = temp_path("badhead");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(Wal::replay(&path).is_err());
        std::fs::write(&path, b"JKWL\x63\x00\x00\x00").unwrap();
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_replays_to_nothing() {
        let path = temp_path("tornhead");
        // Any strict prefix of a valid header is a crash during create.
        let head = wal_header(0x0102_0304_0506_0708);
        for cut in 0..head.len() {
            std::fs::write(&path, &head[..cut]).unwrap();
            let replay = Wal::replay(&path).unwrap();
            assert!(replay.records.is_empty(), "cut at {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_logs_still_replay() {
        let path = temp_path("v2");
        let wal = Wal::create(&path, false, 4).unwrap();
        // v2 record kinds only (Delete is v3-new; InsertAt/DeleteId v4).
        let recs: Vec<WalRecord> = sample_records()
            .into_iter()
            .filter(|r| {
                !matches!(
                    r,
                    WalRecord::Delete { .. }
                        | WalRecord::DeleteId { .. }
                        | WalRecord::InsertAt { .. }
                )
            })
            .collect();
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        drop(wal);
        // Restamp the header version to 2.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.generation, 4);
        assert_eq!(Wal::peek_generation(&path), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_logs_with_byte_matching_deletes_still_replay() {
        let path = temp_path("v3");
        let wal = Wal::create(&path, false, 9).unwrap();
        // v3 record kinds only (InsertAt/DeleteId are v4-new).
        let recs: Vec<WalRecord> = sample_records()
            .into_iter()
            .filter(|r| !matches!(r, WalRecord::DeleteId { .. } | WalRecord::InsertAt { .. }))
            .collect();
        assert!(recs.iter().any(|r| matches!(r, WalRecord::Delete { .. })));
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        drop(wal);
        // Restamp the header version to 3.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.generation, 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_frames_batch_replays_like_individual_appends() {
        let path = temp_path("frames");
        let wal = Wal::create(&path, false, 1).unwrap();
        let recs = sample_records();
        wal.write_frames(&recs).unwrap();
        wal.write_frames(&[]).unwrap(); // no-op
        wal.sync().unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.ignored_tail, 0);
    }

    #[test]
    fn injected_append_failure_leaves_no_partial_frames() {
        let path = temp_path("failinject");
        let wal = Wal::create(&path, false, 1).unwrap();
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        wal.set_fail_appends(true);
        assert!(wal.append(&recs[1]).is_err());
        assert!(wal.write_frames(&recs[1..3]).is_err());
        wal.set_fail_appends(false);
        wal.append(&recs[1]).unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.records, recs[..2]);
        assert_eq!(replay.ignored_tail, 0, "failed appends wrote nothing");
    }

    #[test]
    fn checksum_valid_but_undecodable_record_is_an_error() {
        let path = temp_path("undecodable");
        // A frame whose CRC is correct but whose payload is an unknown
        // record kind: format bug or version skew, not a torn write.
        let payload = [0xEEu8, 0x01, 0x02];
        let mut bytes = wal_header(0);
        bytes.put_u32_le(payload.len() as u32);
        bytes.put_u32_le(crc32(&payload));
        bytes.put_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::replay(&path).expect_err("must fail, not silently drop");
        assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
        std::fs::remove_file(&path).ok();
    }
}
