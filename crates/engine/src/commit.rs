//! Group commit: amortizes WAL fsyncs across concurrent sessions.
//!
//! A committing session first stages its frames into the log file
//! ([`crate::wal::Wal::write_frames`] — one `write_all`, no fsync), then
//! asks the pipeline to make them durable. The pipeline hands out
//! monotonically increasing tickets; the first waiter whose ticket is
//! not yet durable becomes the **leader**, runs one `sync_data` covering
//! every ticket issued so far, and wakes the **followers** it carried.
//! Under contention a single fsync therefore commits a whole batch of
//! sessions — the classic group-commit design (DeWitt et al. 1984), and
//! the reason the `group_commit_batches`/`group_commit_size` counters
//! satisfy "at most one fsync per batch" by construction.
//!
//! A failed fsync poisons the pipeline: the data the kernel could not
//! flush is in an unknown state, so every current and future commit
//! reports the failure instead of pretending to be durable (the same
//! reasoning behind PostgreSQL's post-fsync-error panic).

use crate::{EngineError, Result};
use jackpine_obs::EngineMetrics;
use jackpine_storage::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct PipelineState {
    /// Next ticket to hand out; ticket n is the n-th commit (1-based).
    next_ticket: u64,
    /// Highest ticket whose frames have reached stable storage.
    synced: u64,
    /// Whether a leader is currently running an fsync.
    leader_active: bool,
    /// Set once an fsync fails; all commits fail from then on.
    poisoned: Option<String>,
}

/// The group-commit pipeline. One per durable [`crate::SpatialDb`];
/// cheap to construct, all methods take `&self`.
#[derive(Debug)]
pub struct CommitPipeline {
    state: Mutex<PipelineState>,
    cv: Condvar,
}

impl Default for CommitPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitPipeline {
    /// A fresh pipeline with no pending commits.
    pub fn new() -> Self {
        CommitPipeline {
            state: Mutex::new(PipelineState {
                next_ticket: 1,
                synced: 0,
                leader_active: false,
                poisoned: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Makes this session's already-written frames durable, batching the
    /// fsync with other sessions committing concurrently. `sync` is the
    /// flush operation (one `sync_data` over the shared log); only the
    /// batch leader runs it. Call with the session's frames already in
    /// the log file and **no WAL or engine locks held** — followers
    /// block until their leader's fsync completes.
    pub fn commit(
        &self,
        sync: impl Fn() -> Result<()>,
        metrics: Option<&EngineMetrics>,
    ) -> Result<()> {
        let start = Instant::now();
        // Time spent parked as a follower (leader fsync in flight),
        // separated out of `commit_wait_us` for the wait-state profiler.
        let mut follower_wait = std::time::Duration::ZERO;
        let mut followed = false;
        let mut state = self.state.lock();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let result = loop {
            if let Some(msg) = &state.poisoned {
                break Err(EngineError::Persist(msg.clone()));
            }
            if state.synced >= ticket {
                break Ok(());
            }
            if state.leader_active {
                // A leader is flushing; it (or a successor) will wake us.
                let parked = Instant::now();
                state = self.cv.wait(state);
                follower_wait += parked.elapsed();
                followed = true;
                continue;
            }
            // Become the leader: one fsync covers every ticket issued so
            // far, because each of those sessions staged its frames
            // before asking for durability.
            state.leader_active = true;
            let flush_upto = state.next_ticket - 1;
            let already_synced = state.synced;
            drop(state);
            let flushed = sync();
            state = self.state.lock();
            state.leader_active = false;
            match flushed {
                Ok(()) => {
                    state.synced = state.synced.max(flush_upto);
                    if let Some(m) = metrics {
                        m.group_commit_batches.incr();
                        m.group_commit_size.add(flush_upto - already_synced);
                    }
                    self.cv.notify_all();
                    break Ok(());
                }
                Err(e) => {
                    let msg = format!("group commit fsync failed: {e}");
                    state.poisoned = Some(msg.clone());
                    self.cv.notify_all();
                    break Err(EngineError::Persist(msg));
                }
            }
        };
        drop(state);
        if let Some(m) = metrics {
            if followed {
                m.commit_follower_wait_us
                    .record(follower_wait.as_micros().min(u64::MAX as u128) as u64);
            }
            m.commit_wait_us.record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
        result
    }
}

/// Shared handle alias used by the engine.
pub type SharedPipeline = Arc<CommitPipeline>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_commit_syncs_once() {
        let p = CommitPipeline::new();
        let m = EngineMetrics::new();
        let syncs = AtomicU64::new(0);
        p.commit(
            || {
                syncs.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
            Some(&m),
        )
        .unwrap();
        assert_eq!(syncs.load(Ordering::SeqCst), 1);
        let snap = m.snapshot();
        assert_eq!(snap.counter("group_commit_batches"), 1);
        assert_eq!(snap.counter("group_commit_size"), 1);
        assert_eq!(snap.commit_wait_us.count, 1);
    }

    #[test]
    fn concurrent_commits_batch_fsyncs() {
        const SESSIONS: u64 = 16;
        let p = Arc::new(CommitPipeline::new());
        let m = Arc::new(EngineMetrics::new());
        let syncs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..SESSIONS {
                let p = p.clone();
                let m = m.clone();
                let syncs = syncs.clone();
                s.spawn(move || {
                    p.commit(
                        || {
                            // A slow fsync gives followers time to pile up.
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            syncs.fetch_add(1, Ordering::SeqCst);
                            Ok(())
                        },
                        Some(&m),
                    )
                    .unwrap();
                });
            }
        });
        let snap = m.snapshot();
        // Every commit is accounted to exactly one batch, and each batch
        // ran exactly one fsync.
        assert_eq!(snap.counter("group_commit_size"), SESSIONS);
        assert_eq!(snap.counter("group_commit_batches"), syncs.load(Ordering::SeqCst));
        assert!(snap.counter("group_commit_batches") <= SESSIONS);
        assert_eq!(snap.commit_wait_us.count, SESSIONS);
    }

    #[test]
    fn followers_record_pipeline_wait() {
        let p = Arc::new(CommitPipeline::new());
        let m = Arc::new(EngineMetrics::new());
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            {
                let (p, m) = (p.clone(), m.clone());
                s.spawn(move || {
                    p.commit(
                        || {
                            release_rx.recv().unwrap();
                            Ok(())
                        },
                        Some(&m),
                    )
                    .unwrap();
                });
            }
            // Wait until the first session is mid-fsync (it blocks on the
            // channel), so the second session must enter as a follower.
            while !p.state.lock().leader_active {
                std::thread::yield_now();
            }
            {
                let (p, m) = (p.clone(), m.clone());
                s.spawn(move || p.commit(|| Ok(()), Some(&m)).unwrap());
            }
            // The follower holds the state lock from taking its ticket
            // until it parks on the condvar, so once we can observe
            // next_ticket == 3 it is provably parked.
            while p.state.lock().next_ticket != 3 {
                std::thread::yield_now();
            }
            release_tx.send(()).unwrap();
        });
        let snap = m.snapshot();
        assert_eq!(snap.wait("commit_follower_wait_us").count, 1, "one session followed");
        assert_eq!(snap.counter("group_commit_batches"), 2, "follower led its own batch");
        assert_eq!(snap.commit_wait_us.count, 2);
    }

    #[test]
    fn fsync_failure_poisons_the_pipeline() {
        let p = CommitPipeline::new();
        let err = p
            .commit(|| Err(EngineError::Persist("disk gone".into())), None)
            .expect_err("leader sees the failure");
        assert!(matches!(err, EngineError::Persist(_)));
        // Later commits refuse too: durability can no longer be promised.
        let err = p.commit(|| Ok(()), None).expect_err("poisoned");
        assert!(format!("{err}").contains("fsync failed"));
    }
}
