//! Fault injection for the durability tests: an [`std::io::Write`]
//! wrapper that simulates a crash (stop writing at a byte offset) or bit
//! rot (flip one bit at a byte offset) in whatever stream passes through
//! it.
//!
//! The durability suite drives snapshot and WAL byte streams through a
//! [`FailpointFile`] at *every* offset and asserts that
//! [`crate::SpatialDb::open`] / [`crate::SpatialDb::open_durable`] come
//! back with either the pre-crash or the post-crash consistent state —
//! never a panic, an OOM-sized allocation, or a silently short table.

use std::io::Write;

/// The fault a [`FailpointFile`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Failpoint {
    /// Write bytes `0..offset` faithfully, then fail every further write
    /// with an I/O error — the moment the process "crashed".
    Truncate {
        /// Byte offset at which the stream is cut.
        offset: u64,
    },
    /// Flip one bit of the byte at `offset` and otherwise pass every
    /// write through untouched — silent media corruption.
    BitFlip {
        /// Byte offset of the corrupted byte.
        offset: u64,
        /// Bit index (0–7) to flip within that byte.
        bit: u8,
    },
}

/// A writer that injects a single configured fault into the stream.
#[derive(Debug)]
pub struct FailpointFile<W: Write> {
    inner: W,
    failpoint: Failpoint,
    written: u64,
}

impl<W: Write> FailpointFile<W> {
    /// Wraps `inner`, arming the given failpoint.
    pub fn new(inner: W, failpoint: Failpoint) -> FailpointFile<W> {
        FailpointFile { inner, failpoint, written: 0 }
    }

    /// Bytes successfully passed to the inner writer so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointFile<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.failpoint {
            Failpoint::Truncate { offset } => {
                if self.written >= offset {
                    return Err(std::io::Error::other(format!(
                        "failpoint: simulated crash at byte {offset}"
                    )));
                }
                let room = (offset - self.written) as usize;
                let take = buf.len().min(room);
                let n = self.inner.write(&buf[..take])?;
                self.written += n as u64;
                Ok(n)
            }
            Failpoint::BitFlip { offset, bit } => {
                let start = self.written;
                let end = start + buf.len() as u64;
                let n = if (start..end).contains(&offset) {
                    let mut corrupted = buf.to_vec();
                    corrupted[(offset - start) as usize] ^= 1 << (bit & 7);
                    // write_all so the flipped byte cannot be split from
                    // its buffer by a short write.
                    self.inner.write_all(&corrupted)?;
                    corrupted.len()
                } else {
                    self.inner.write(buf)?
                };
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Convenience for tests: the result of pushing `bytes` through a
/// failpoint into an in-memory buffer — the exact content a real file
/// would hold after the fault.
pub fn apply_failpoint(bytes: &[u8], failpoint: Failpoint) -> Vec<u8> {
    let mut fp = FailpointFile::new(Vec::new(), failpoint);
    // A torn write errors part-way; whatever landed before the error is
    // the surviving file content.
    let _ = fp.write_all(bytes);
    fp.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_cuts_exactly_at_offset() {
        let data: Vec<u8> = (0..=255).collect();
        for offset in [0u64, 1, 7, 100, 255] {
            let got = apply_failpoint(&data, Failpoint::Truncate { offset });
            assert_eq!(got, data[..offset as usize]);
        }
        // Offset past the end: nothing fails.
        let got = apply_failpoint(&data, Failpoint::Truncate { offset: 10_000 });
        assert_eq!(got, data);
    }

    #[test]
    fn bitflip_flips_one_bit() {
        let data = vec![0u8; 32];
        let got = apply_failpoint(&data, Failpoint::BitFlip { offset: 9, bit: 3 });
        assert_eq!(got.len(), 32);
        assert_eq!(got[9], 1 << 3);
        assert!(got.iter().enumerate().all(|(i, &b)| i == 9 || b == 0));
    }

    #[test]
    fn bitflip_across_chunked_writes() {
        let data: Vec<u8> = (0..64).collect();
        let mut fp = FailpointFile::new(Vec::new(), Failpoint::BitFlip { offset: 33, bit: 0 });
        for chunk in data.chunks(5) {
            fp.write_all(chunk).unwrap();
        }
        let got = fp.into_inner();
        assert_eq!(got[33], 33 ^ 1);
        assert_eq!(got.len(), 64);
    }
}
