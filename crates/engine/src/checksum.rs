//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every persisted byte: per-table blocks and the file-level
//! digest (header fields + body) in snapshot format v3, and every
//! write-ahead-log frame.
//!
//! In-tree (the workspace builds fully offline with zero external
//! crates); the 256-entry table is computed at compile time. CRC32
//! detects all single-bit errors and all burst errors up to 32 bits,
//! which is exactly the failure model of the torn-write and bit-rot
//! faults the durability tests inject.

/// Reflected CRC32 lookup table, one entry per byte value.
const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32 state, for checksumming data produced in pieces.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let base = b"durability test payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
