//! The SQL-queryable system catalog: `jp_*` virtual tables.
//!
//! Every table here is a point-in-time materialization of engine
//! observability state into a [`VirtualTable`], resolved by name in
//! [`provider`] when the planner binds a `FROM` clause. Because the
//! result is an ordinary [`TableProvider`], introspection queries run
//! through the normal planner and executor — `WHERE`, `ORDER BY`,
//! `LIMIT`, aggregates and `EXPLAIN ANALYZE` all work with zero special
//! cases, the way `pg_stat_*` views do in PostgreSQL.
//!
//! The tables:
//!
//! | name | one row per | backing state |
//! |---|---|---|
//! | `jp_stat_statements` | statement fingerprint | the query-stats table |
//! | `jp_flight_recorder` | retained trace | the flight-recorder ring |
//! | `jp_slow_queries` | retained slow trace | the slow-query log |
//! | `jp_metrics` | counter/gauge/histogram | the metrics registry |
//! | `jp_metrics_history` | (sample, metric) pair | the history ring |
//! | `jp_sessions` | in-flight statement | the session registry |
//! | `jp_snapshots` | pinned generation | the MVCC snapshot registry |
//! | `jp_wal` | engine (single row) | WAL + group-commit state |
//! | `jp_buffer_pool` | engine (single row) | buffer-pool frames + counters |
//!
//! Schemas are documented in DESIGN.md ("System catalog"). Tables are
//! read-only by construction: DML never resolves through the SQL
//! catalog-provider path, and `CREATE TABLE` rejects the `jp_` prefix.

use crate::SpatialDb;
use jackpine_obs::{MetricsSnapshot, QueryTrace, Stage};
use jackpine_sqlmini::provider::TableProvider;
use jackpine_sqlmini::virt::VirtualTable;
use jackpine_storage::{ColumnDef, DataType, Row, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

/// Whether `name` is reserved for the system catalog (the `jp_` prefix,
/// case-insensitive).
pub(crate) fn is_system_table(name: &str) -> bool {
    name.get(..3).is_some_and(|p| p.eq_ignore_ascii_case("jp_"))
}

/// Resolves a system-table name to a freshly materialized provider.
/// `None` for names outside the catalog (including unknown `jp_*`
/// names, which the caller turns into the ordinary not-found error).
pub(crate) fn provider(
    db: &Arc<SpatialDb>,
    name: &str,
) -> Option<jackpine_sqlmini::Result<Arc<dyn TableProvider>>> {
    let table = match name.to_ascii_lowercase().as_str() {
        "jp_stat_statements" => stat_statements(db),
        "jp_flight_recorder" => trace_ring(db.recent_traces()),
        "jp_slow_queries" => trace_ring(db.slow_queries()),
        "jp_metrics" => metrics(&db.metrics_snapshot()),
        "jp_metrics_history" => metrics_history(db),
        "jp_sessions" => sessions(db),
        "jp_snapshots" => snapshots(db),
        "jp_wal" => wal(db),
        "jp_buffer_pool" => buffer_pool(db),
        _ => return None,
    };
    Some(table.map(|t| Arc::new(t) as Arc<dyn TableProvider>))
}

fn int(v: u64) -> Value {
    Value::Int(v.min(i64::MAX as u64) as i64)
}

fn ms(d: Duration) -> Value {
    Value::Float(d.as_secs_f64() * 1e3)
}

fn ns_to_ms(ns: u64) -> Value {
    Value::Float(ns as f64 / 1e6)
}

fn cols(defs: &[(&str, DataType)]) -> jackpine_sqlmini::Result<Schema> {
    Schema::new(defs.iter().map(|(n, ty)| ColumnDef::new(n, *ty)).collect())
        .map_err(jackpine_sqlmini::SqlError::from)
}

/// `jp_stat_statements`: one row per statement fingerprint, ordered by
/// execution count descending (the table's natural "top statements"
/// reading; ORDER BY re-sorts like any other table).
fn stat_statements(db: &Arc<SpatialDb>) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("fingerprint", DataType::Text),
        ("statement", DataType::Text),
        ("calls", DataType::Int),
        ("errors", DataType::Int),
        ("rows", DataType::Int),
        ("mean_ms", DataType::Float),
        ("p95_ms", DataType::Float),
    ])?;
    let rows: Vec<Row> = db
        .query_stats(usize::MAX)
        .into_iter()
        .map(|s| {
            vec![
                Value::Text(format!("{:016x}", s.digest)),
                Value::Text(s.normalized.clone()),
                int(s.executions()),
                int(s.errors),
                int(s.rows),
                Value::Float(s.mean_ms()),
                Value::Float(s.p95_ms()),
            ]
        })
        .collect();
    VirtualTable::new(schema, rows)
}

/// `jp_flight_recorder` / `jp_slow_queries`: one row per retained trace,
/// oldest first, with per-stage self-times as columns.
fn trace_ring(traces: Vec<Arc<QueryTrace>>) -> jackpine_sqlmini::Result<VirtualTable> {
    let mut defs: Vec<(&str, DataType)> = vec![
        ("seq", DataType::Int),
        ("statement", DataType::Text),
        ("total_ms", DataType::Float),
        ("rows", DataType::Int),
    ];
    let stage_cols: Vec<String> = Stage::ALL.iter().map(|s| format!("{}_ms", s.name())).collect();
    for name in &stage_cols {
        defs.push((name.as_str(), DataType::Float));
    }
    defs.push(("index_probes", DataType::Int));
    defs.push(("refine_hits", DataType::Int));
    let schema = cols(&defs)?;
    let rows: Vec<Row> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut row =
                vec![int(i as u64), Value::Text(t.sql.clone()), ms(t.total), int(t.rows as u64)];
            for s in Stage::ALL {
                row.push(ns_to_ms(t.stage_ns(s.name())));
            }
            row.push(int(t.counter("index_probes")));
            row.push(int(t.counter("refine_hits")));
            row
        })
        .collect();
    VirtualTable::new(schema, rows)
}

/// `jp_metrics`: the whole registry flattened to rows. Counters and
/// gauges carry `value`; histograms carry `count`/`sum`/`max`/`p50`/
/// `p99` (quantiles are log2-bucket upper bounds). Columns that do not
/// apply to a kind are NULL.
fn metrics(snap: &MetricsSnapshot) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("name", DataType::Text),
        ("kind", DataType::Text),
        ("value", DataType::Int),
        ("count", DataType::Int),
        ("sum", DataType::Int),
        ("max", DataType::Int),
        ("p50", DataType::Int),
        ("p99", DataType::Int),
    ])?;
    let mut rows: Vec<Row> = Vec::new();
    for (name, v) in &snap.counters {
        rows.push(scalar_row(name, "counter", *v));
    }
    for (name, v) in &snap.gauges {
        rows.push(scalar_row(name, "gauge", *v));
    }
    for (stage, h) in &snap.stages {
        rows.push(histogram_row(&format!("stage_{}_ns", stage.name()), h));
    }
    rows.push(histogram_row("morsel_wait_ns", &snap.morsel_wait_ns));
    rows.push(histogram_row("commit_wait_us", &snap.commit_wait_us));
    for (name, h) in &snap.waits {
        rows.push(histogram_row(name, h));
    }
    VirtualTable::new(schema, rows)
}

fn scalar_row(name: &str, kind: &str, v: u64) -> Row {
    vec![
        Value::Text(name.to_string()),
        Value::Text(kind.to_string()),
        int(v),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
    ]
}

fn histogram_row(name: &str, h: &jackpine_obs::HistogramSnapshot) -> Row {
    vec![
        Value::Text(name.to_string()),
        Value::Text("histogram".to_string()),
        Value::Null,
        int(h.count),
        int(h.sum),
        int(h.max),
        int(h.quantile(0.5)),
        int(h.quantile(0.99)),
    ]
}

/// `jp_metrics_history`: the retained time series, flattened to one row
/// per (sample, counter-or-gauge) pair, oldest sample first.
fn metrics_history(db: &Arc<SpatialDb>) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("seq", DataType::Int),
        ("age_ms", DataType::Float),
        ("name", DataType::Text),
        ("kind", DataType::Text),
        ("value", DataType::Int),
    ])?;
    let mut rows: Vec<Row> = Vec::new();
    for point in db.metrics_history() {
        let age = ms(point.at.elapsed());
        for (name, v) in &point.snapshot.counters {
            rows.push(vec![
                int(point.seq),
                age.clone(),
                Value::Text(name.to_string()),
                Value::Text("counter".to_string()),
                int(*v),
            ]);
        }
        for (name, v) in &point.snapshot.gauges {
            rows.push(vec![
                int(point.seq),
                age.clone(),
                Value::Text(name.to_string()),
                Value::Text("gauge".to_string()),
                int(*v),
            ]);
        }
    }
    VirtualTable::new(schema, rows)
}

/// `jp_sessions`: in-flight statements. The introspection query itself
/// appears — it registered before its own planning resolved this table.
fn sessions(db: &Arc<SpatialDb>) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("session_id", DataType::Int),
        ("statement", DataType::Text),
        ("elapsed_ms", DataType::Float),
    ])?;
    let rows: Vec<Row> = db
        .active_sessions()
        .into_iter()
        .map(|(id, sql, elapsed)| vec![int(id), Value::Text(sql), ms(elapsed)])
        .collect();
    VirtualTable::new(schema, rows)
}

/// `jp_snapshots`: pinned MVCC snapshot generations with reader counts
/// and ages. The statement's own pin is taken at execution, after this
/// materialization, so an otherwise-idle engine shows zero rows.
fn snapshots(db: &Arc<SpatialDb>) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("generation", DataType::Int),
        ("readers", DataType::Int),
        ("age_ms", DataType::Float),
    ])?;
    let rows: Vec<Row> = db
        .snapshot_pins()
        .into_iter()
        .map(|(gen, readers, age)| vec![int(gen), int(readers as u64), ms(age)])
        .collect();
    VirtualTable::new(schema, rows)
}

/// `jp_wal`: one row of durability state. With durability detached,
/// `attached` is 0 and the per-WAL columns are NULL; the commit
/// counters still report historical totals.
fn wal(db: &Arc<SpatialDb>) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("attached", DataType::Int),
        ("generation", DataType::Int),
        ("sync_each_append", DataType::Int),
        ("wal_appends", DataType::Int),
        ("wal_fsyncs", DataType::Int),
        ("group_commit_batches", DataType::Int),
        ("group_commit_size", DataType::Int),
    ])?;
    let snap = db.metrics_snapshot();
    let (attached, generation, sync) = match db.wal_status() {
        Some((gen, sync)) => (Value::Int(1), int(gen), Value::Int(sync as i64)),
        None => (Value::Int(0), Value::Null, Value::Null),
    };
    let row = vec![
        attached,
        generation,
        sync,
        int(snap.counter("wal_appends")),
        int(snap.counter("wal_fsyncs")),
        int(snap.counter("group_commit_batches")),
        int(snap.counter("group_commit_size")),
    ];
    VirtualTable::new(schema, vec![row])
}

/// `jp_buffer_pool`: one row of buffer-pool state under the active
/// replacement policy. `capacity_frames` is 0 when the pool is
/// unbounded (every page stays resident and nothing evicts).
fn buffer_pool(db: &Arc<SpatialDb>) -> jackpine_sqlmini::Result<VirtualTable> {
    let schema = cols(&[
        ("policy", DataType::Text),
        ("capacity_frames", DataType::Int),
        ("resident_frames", DataType::Int),
        ("pinned_frames", DataType::Int),
        ("pin_hits", DataType::Int),
        ("cold_pins", DataType::Int),
        ("evictions", DataType::Int),
        ("dirty_writebacks", DataType::Int),
    ])?;
    let stats = db.pool_stats();
    let row = vec![
        Value::Text(db.pool_policy().name().to_string()),
        int(stats.capacity_frames),
        int(stats.resident_frames),
        int(stats.pinned_frames),
        int(stats.pin_hits),
        int(stats.cold_pins),
        int(stats.evictions),
        int(stats.dirty_writebacks),
    ];
    VirtualTable::new(schema, vec![row])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jp_prefix_is_case_insensitive_and_bounded() {
        assert!(is_system_table("jp_metrics"));
        assert!(is_system_table("JP_WAL"));
        assert!(is_system_table("Jp_anything"));
        assert!(!is_system_table("jp"));
        assert!(!is_system_table("jpx_metrics"));
        assert!(!is_system_table(""));
        assert!(!is_system_table("réjp_"));
    }

    #[test]
    fn unknown_jp_names_fall_through() {
        let db = Arc::new(SpatialDb::new(crate::EngineProfile::ExactRtree));
        assert!(provider(&db, "jp_no_such_table").is_none());
        assert!(provider(&db, "regular_table").is_none());
    }

    #[test]
    fn every_table_materializes_on_a_fresh_engine() {
        let db = Arc::new(SpatialDb::new(crate::EngineProfile::ExactRtree));
        for name in [
            "jp_stat_statements",
            "jp_flight_recorder",
            "jp_slow_queries",
            "jp_metrics",
            "jp_metrics_history",
            "jp_sessions",
            "jp_snapshots",
            "jp_wal",
            "jp_buffer_pool",
        ] {
            let p = provider(&db, name).unwrap_or_else(|| panic!("{name} resolves"));
            let p = p.unwrap_or_else(|e| panic!("{name} materializes: {e}"));
            // Schema and rows agree (VirtualTable type-checked them).
            let ids = p.row_ids();
            for id in ids {
                p.fetch(id).unwrap();
            }
        }
    }
}
