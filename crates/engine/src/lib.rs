//! # jackpine-engine
//!
//! The spatial database engines under benchmark: a storage + index + SQL
//! facade ([`SpatialDb`]) instantiated under three profiles
//! ([`EngineProfile`]) that model the systems compared in the Jackpine
//! paper, and the portability layer ([`SpatialConnector`]) that plays the
//! role JDBC played in the original harness.
//!
//! | Profile | Models | Index | Predicates |
//! |---|---|---|---|
//! | [`EngineProfile::ExactRtree`] | PostgreSQL/PostGIS | R\*-tree (GiST-like) | exact, filter-refine |
//! | [`EngineProfile::MbrOnly`] | MySQL (paper era) | R-tree | MBR-only, reduced function set |
//! | [`EngineProfile::ExactGrid`] | commercial "DBMS X" | fixed grid (tessellation) | exact, filter-refine |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod commit;
mod connector;
mod db;
pub mod failpoint;
mod persist;
mod profile;
mod syscat;
pub mod wal;

pub use connector::{all_profiles, SpatialConnector};
pub use db::{
    DurabilityOptions, EngineError, SpatialDb, FLIGHT_RECORDER_CAPACITY, METRICS_HISTORY_CAPACITY,
    METRICS_HISTORY_INTERVAL, QUERY_STATS_CAPACITY, SLOW_LOG_CAPACITY, SLOW_QUERY_THRESHOLD,
    SNAPSHOT_FILE, WAL_FILE,
};
pub use profile::EngineProfile;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
