//! Plain-text and CSV rendering of benchmark results.

use std::fmt::Write as _;

/// A rectangular report table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Run-context note rendered under the title (e.g. `workers=8`).
    pub context: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (strings, pre-formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a titled table with the given headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            context: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Attaches a run-context note (shown in parentheses under the title).
    pub fn with_context(mut self, context: impl Into<String>) -> Table {
        self.context = context.into();
        self
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        if !self.context.is_empty() {
            let _ = writeln!(out, "({})", self.context);
        }
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', pad));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as RFC-4180-style CSV (quotes doubled, cells with
    /// commas/quotes/newlines quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a milliseconds value with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a throughput value.
pub fn fmt_qps(qps: f64) -> String {
    if qps >= 100.0 {
        format!("{qps:.0}")
    } else {
        format!("{qps:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("Demo", &["query", "ms"]);
        t.push_row(vec!["T01 long name".into(), "1.23".into()]);
        t.push_row(vec!["T2".into(), "100".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("query"));
        assert!(lines[2].starts_with("---"));
    }

    #[test]
    fn context_line_under_title() {
        let t = Table::new("Demo", &["a"]).with_context("workers=8");
        let s = t.render();
        assert!(s.contains("## Demo\n(workers=8)\n"));
        // CSV stays pure data.
        assert!(!t.to_csv().contains("workers"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["quote\"inside".into(), "ok".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.01234), "0.0123");
        assert_eq!(fmt_qps(1234.0), "1234");
        assert_eq!(fmt_qps(12.34), "12.3");
    }
}
