//! Bench-run JSON schema and the noise-aware regression comparator.
//!
//! The repro harness persists benchmark runs as `BENCH_*.json`. Two
//! schema versions exist in the wild:
//!
//! * **v1** — a bare array of `{name, value, unit}` entries (the
//!   original format; no variance information).
//! * **v2** — an object `{"schema_version": 2, "entries": [...]}` where
//!   each entry may additionally carry per-query sample statistics
//!   (`n`, `mean_ms`, `std_ms`, `min_ms`, `p50_ms`, `p95_ms`,
//!   `max_ms`), enabling statistically grounded comparisons.
//!
//! [`diff_runs`] pairs entries by name and classifies each delta with a
//! [`Verdict`]. The rule is deliberately conservative: a pair is only a
//! **Regression** (or **Improvement**) when both sides carry variance
//! data *and* the Welch 95% confidence interval around the difference
//! of means excludes zero *and* the relative change exceeds the caller's
//! threshold. Pairs without variance data — v1 baselines, ratio
//! entries — are **Advisory**: reported, never failing. That is what
//! makes `bench-diff old.json new.json` usable as a CI gate: cross-
//! machine timing noise cannot produce a spurious hard failure, while a
//! reproducible slowdown with tight intervals still trips it.
//!
//! Everything here is hand-rolled because the workspace is
//! zero-dependency: a minimal recursive-descent JSON reader lives at the
//! bottom of the file.

use crate::stats::{t95, Stats};

/// Current bench JSON schema version written by the harness.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// One measured quantity in a bench run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Stable identifier, e.g. `micro/T02 workers=1`. Pairing key.
    pub name: String,
    /// The headline value (mean for timed entries).
    pub value: f64,
    /// Unit label: `ms`, `ms/query`, `ratio`.
    pub unit: String,
    /// Per-sample statistics (v2 entries only).
    pub stats: Option<Stats>,
}

/// A parsed `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRun {
    /// Schema version the file declared (1 for bare-array files).
    pub schema_version: u64,
    /// Entries in file order.
    pub entries: Vec<BenchEntry>,
}

impl BenchRun {
    /// Serializes as schema v2 JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", BENCH_SCHEMA_VERSION));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": {}, \"value\": {:.6}, \"unit\": {}",
                json_string(&e.name),
                e.value,
                json_string(&e.unit)
            ));
            if let Some(s) = &e.stats {
                out.push_str(&format!(
                    ", \"n\": {}, \"mean_ms\": {:.6}, \"std_ms\": {:.6}, \"min_ms\": {:.6}, \
                     \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"max_ms\": {:.6}",
                    s.n, s.mean_ms, s.std_ms, s.min_ms, s.p50_ms, s.p95_ms, s.max_ms
                ));
            }
            out.push_str(" }");
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses a bench JSON file, accepting schema v1 (bare array) and v2
/// (versioned object). Unknown versions are rejected with an error
/// naming the version found and the versions understood.
pub fn parse_bench_json(text: &str) -> Result<BenchRun, String> {
    let json = Json::parse(text)?;
    match json {
        Json::Arr(items) => {
            // v1: bare array, no version marker.
            let entries =
                items.iter().map(parse_entry).collect::<Result<Vec<BenchEntry>, String>>()?;
            Ok(BenchRun { schema_version: 1, entries })
        }
        Json::Obj(_) => {
            let version = json
                .get("schema_version")
                .and_then(Json::as_f64)
                .ok_or("object-form bench JSON must carry a numeric \"schema_version\"")?
                as u64;
            if version != BENCH_SCHEMA_VERSION {
                return Err(format!(
                    "unsupported bench schema_version {version}; this tool understands \
                     version {BENCH_SCHEMA_VERSION} (and version 1 bare-array files)"
                ));
            }
            let entries = json
                .get("entries")
                .and_then(Json::as_arr)
                .ok_or("bench JSON missing \"entries\" array")?
                .iter()
                .map(parse_entry)
                .collect::<Result<Vec<BenchEntry>, String>>()?;
            Ok(BenchRun { schema_version: version, entries })
        }
        _ => Err("bench JSON must be an array (v1) or object (v2)".into()),
    }
}

fn parse_entry(j: &Json) -> Result<BenchEntry, String> {
    let name =
        j.get("name").and_then(Json::as_str).ok_or("bench entry missing \"name\"")?.to_string();
    let value =
        j.get("value").and_then(Json::as_f64).ok_or_else(|| format!("{name}: missing value"))?;
    let unit = j.get("unit").and_then(Json::as_str).unwrap_or("").to_string();
    let stats = match j.get("n").and_then(Json::as_f64) {
        Some(n) if n >= 1.0 => {
            let f = |k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            Some(Stats {
                n: n as usize,
                mean_ms: j.get("mean_ms").and_then(Json::as_f64).unwrap_or(value),
                std_ms: f("std_ms"),
                min_ms: f("min_ms"),
                p50_ms: f("p50_ms"),
                p95_ms: f("p95_ms"),
                max_ms: f("max_ms"),
            })
        }
        _ => None,
    };
    Ok(BenchEntry { name, value, unit, stats })
}

/// Classification of one paired delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Statistically significant slowdown beyond the threshold.
    Regression,
    /// Statistically significant speedup beyond the threshold.
    Improvement,
    /// Within noise or below the threshold.
    Unchanged,
    /// No variance data on one or both sides — reported, never failing.
    Advisory,
}

impl Verdict {
    /// Stable lowercase label for report output.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Unchanged => "unchanged",
            Verdict::Advisory => "advisory",
        }
    }
}

/// One paired comparison in a diff report.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// The shared entry name.
    pub name: String,
    /// Unit label (from the newer run).
    pub unit: String,
    /// Baseline headline value.
    pub base: f64,
    /// New headline value.
    pub new: f64,
    /// Relative change in percent ((new-base)/base · 100).
    pub delta_pct: f64,
    /// Welch 95% half-width on the difference of means, in the entry's
    /// unit; `None` when either side lacks variance data.
    pub ci95_ms: Option<f64>,
    /// The classification.
    pub verdict: Verdict,
}

/// The full comparison of two runs.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Paired entries, file order of the newer run.
    pub entries: Vec<DiffEntry>,
    /// Names present only in the baseline run.
    pub only_in_base: Vec<String>,
    /// Names present only in the newer run.
    pub only_in_new: Vec<String>,
}

impl DiffReport {
    /// Number of hard regressions.
    pub fn regressions(&self) -> usize {
        self.entries.iter().filter(|e| e.verdict == Verdict::Regression).count()
    }

    /// Renders the report as aligned text, one line per pair, with a
    /// summary line at the bottom (the line tier1 greps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(4).max(4);
        for e in &self.entries {
            let ci = match e.ci95_ms {
                Some(hw) => format!("±{hw:.3}"),
                None => "±n/a".to_string(),
            };
            out.push_str(&format!(
                "{:<width$}  {:>12.6} -> {:>12.6} {:<8} {:>+8.2}% {:>10}  {}\n",
                e.name,
                e.base,
                e.new,
                e.unit,
                e.delta_pct,
                ci,
                e.verdict.label()
            ));
        }
        for name in &self.only_in_base {
            out.push_str(&format!("{name:<width$}  only in baseline\n"));
        }
        for name in &self.only_in_new {
            out.push_str(&format!("{name:<width$}  only in new run\n"));
        }
        let improvements =
            self.entries.iter().filter(|e| e.verdict == Verdict::Improvement).count();
        let advisory = self.entries.iter().filter(|e| e.verdict == Verdict::Advisory).count();
        out.push_str(&format!(
            "compared {} entries: {} regressions, {} improvements, {} advisory\n",
            self.entries.len(),
            self.regressions(),
            improvements,
            advisory
        ));
        out
    }
}

/// Pairs two runs by entry name and classifies every delta.
/// `threshold_pct` is the minimum relative change (percent) a
/// statistically significant delta must reach to count as a regression
/// or improvement.
pub fn diff_runs(base: &BenchRun, new: &BenchRun, threshold_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for e in &new.entries {
        match base.entries.iter().find(|b| b.name == e.name) {
            Some(b) => report.entries.push(classify(b, e, threshold_pct)),
            None => report.only_in_new.push(e.name.clone()),
        }
    }
    for b in &base.entries {
        if !new.entries.iter().any(|e| e.name == b.name) {
            report.only_in_base.push(b.name.clone());
        }
    }
    report
}

fn classify(base: &BenchEntry, new: &BenchEntry, threshold_pct: f64) -> DiffEntry {
    let delta = new.value - base.value;
    let delta_pct = if base.value.abs() > 1e-12 { delta / base.value * 100.0 } else { 0.0 };

    let (ci95_ms, verdict) = match (&base.stats, &new.stats) {
        (Some(sb), Some(sn)) if sb.n >= 2 && sn.n >= 2 && base.value.abs() > 1e-12 => {
            let hw = welch_ci95(sb, sn);
            let mean_delta = sn.mean_ms - sb.mean_ms;
            let significant = mean_delta.abs() > hw;
            let v = if significant && delta_pct > threshold_pct {
                Verdict::Regression
            } else if significant && delta_pct < -threshold_pct {
                Verdict::Improvement
            } else {
                Verdict::Unchanged
            };
            (Some(hw), v)
        }
        // No variance estimate on one or both sides: the delta may be
        // pure noise (different machine, single rep, derived ratio), so
        // it can inform but never fail.
        _ => (None, Verdict::Advisory),
    };

    DiffEntry {
        name: new.name.clone(),
        unit: new.unit.clone(),
        base: base.value,
        new: new.value,
        delta_pct,
        ci95_ms,
        verdict,
    }
}

/// Welch 95% half-width on the difference of two sample means, with the
/// Welch–Satterthwaite degrees-of-freedom approximation feeding the
/// Student-t table in [`crate::stats::t95`].
fn welch_ci95(a: &Stats, b: &Stats) -> f64 {
    let va = a.std_ms * a.std_ms / a.n as f64;
    let vb = b.std_ms * b.std_ms / b.n as f64;
    let se = (va + vb).sqrt();
    if se == 0.0 {
        return 0.0;
    }
    let df_num = (va + vb) * (va + vb);
    let df_den = va * va / (a.n - 1) as f64 + vb * vb / (b.n - 1) as f64;
    let df = if df_den > 0.0 { (df_num / df_den).floor() as usize } else { a.n + b.n - 2 };
    t95(df.max(1)) * se
}

// ---------------------------------------------------------------------
// Minimal JSON reader (zero-dependency workspace).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unmodified.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(n: usize, mean: f64, std: f64) -> Stats {
        Stats {
            n,
            mean_ms: mean,
            std_ms: std,
            min_ms: 0.0,
            p50_ms: mean,
            p95_ms: mean,
            max_ms: mean,
        }
    }

    fn entry(name: &str, value: f64, stats: Option<Stats>) -> BenchEntry {
        BenchEntry { name: name.into(), value, unit: "ms".into(), stats }
    }

    #[test]
    fn parses_v1_bare_array() {
        let run = parse_bench_json(
            r#"[ { "name": "micro/T02 workers=1", "value": 1.911062, "unit": "ms" } ]"#,
        )
        .unwrap();
        assert_eq!(run.schema_version, 1);
        assert_eq!(run.entries.len(), 1);
        assert_eq!(run.entries[0].name, "micro/T02 workers=1");
        assert!(run.entries[0].stats.is_none());
    }

    #[test]
    fn v2_roundtrips_through_to_json() {
        let run = BenchRun {
            schema_version: BENCH_SCHEMA_VERSION,
            entries: vec![entry("a", 1.5, Some(stats(5, 1.5, 0.2))), entry("b", 2.0, None)],
        };
        let reparsed = parse_bench_json(&run.to_json()).unwrap();
        assert_eq!(reparsed.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(reparsed.entries.len(), 2);
        let s = reparsed.entries[0].stats.as_ref().unwrap();
        assert_eq!(s.n, 5);
        assert!((s.std_ms - 0.2).abs() < 1e-9);
        assert!(reparsed.entries[1].stats.is_none());
    }

    #[test]
    fn unknown_schema_version_rejected_with_clear_error() {
        let err = parse_bench_json(r#"{ "schema_version": 99, "entries": [] }"#).unwrap_err();
        assert!(err.contains("unsupported bench schema_version 99"), "{err}");
        assert!(err.contains("understands version 2"), "{err}");
    }

    #[test]
    fn self_diff_is_all_unchanged() {
        let run = BenchRun {
            schema_version: 2,
            entries: vec![
                entry("a", 1.5, Some(stats(5, 1.5, 0.2))),
                entry("b", 9.0, Some(stats(3, 9.0, 1.0))),
            ],
        };
        let report = diff_runs(&run, &run, 5.0);
        assert_eq!(report.regressions(), 0);
        assert!(report.entries.iter().all(|e| e.verdict == Verdict::Unchanged));
        assert!(report.render().contains("0 regressions"));
    }

    #[test]
    fn significant_slowdown_is_a_regression() {
        let base = BenchRun {
            schema_version: 2,
            entries: vec![entry("q", 10.0, Some(stats(10, 10.0, 0.1)))],
        };
        let new = BenchRun {
            schema_version: 2,
            entries: vec![entry("q", 13.0, Some(stats(10, 13.0, 0.1)))],
        };
        let report = diff_runs(&base, &new, 5.0);
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.entries[0].verdict, Verdict::Regression);
        // Reversed direction: an improvement, never a regression.
        let report = diff_runs(&new, &base, 5.0);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.entries[0].verdict, Verdict::Improvement);
    }

    #[test]
    fn noisy_delta_stays_unchanged() {
        // +30% but the spread dwarfs the delta → not significant.
        let base = BenchRun {
            schema_version: 2,
            entries: vec![entry("q", 10.0, Some(stats(3, 10.0, 8.0)))],
        };
        let new = BenchRun {
            schema_version: 2,
            entries: vec![entry("q", 13.0, Some(stats(3, 13.0, 8.0)))],
        };
        let report = diff_runs(&base, &new, 5.0);
        assert_eq!(report.entries[0].verdict, Verdict::Unchanged);
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn v1_pairs_are_advisory_never_failing() {
        let base = BenchRun { schema_version: 1, entries: vec![entry("q", 1.0, None)] };
        let new = BenchRun {
            schema_version: 2,
            entries: vec![entry("q", 100.0, Some(stats(5, 100.0, 0.1)))],
        };
        let report = diff_runs(&base, &new, 5.0);
        assert_eq!(report.entries[0].verdict, Verdict::Advisory);
        assert_eq!(report.regressions(), 0);
        assert!(report.render().contains("advisory"));
    }

    #[test]
    fn unpaired_entries_are_listed_not_failed() {
        let base = BenchRun { schema_version: 1, entries: vec![entry("old", 1.0, None)] };
        let new = BenchRun { schema_version: 1, entries: vec![entry("new", 1.0, None)] };
        let report = diff_runs(&base, &new, 5.0);
        assert_eq!(report.entries.len(), 0);
        assert_eq!(report.only_in_base, vec!["old"]);
        assert_eq!(report.only_in_new, vec!["new"]);
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn json_reader_handles_nesting_and_escapes() {
        let v =
            Json::parse(r#"{ "a": [1, -2.5e1, "x\nyA"], "b": { "c": true, "d": null } }"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-25.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\nyA"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn real_baseline_file_shape_parses() {
        // The exact shape BENCH_1.json uses.
        let text = r#"[
  { "name": "micro/T02 workers=1", "value": 1.911062, "unit": "ms" },
  { "name": "macro/M6 parallel_over_serial", "value": 0.584321, "unit": "ratio" }
]"#;
        let run = parse_bench_json(text).unwrap();
        assert_eq!(run.schema_version, 1);
        assert_eq!(run.entries.len(), 2);
        assert_eq!(run.entries[1].unit, "ratio");
    }
}
