//! Latency statistics over repeated query executions.

use std::time::Duration;

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
/// Exact table through 30 df, then the asymptotic normal value — the
/// interpolation error above 30 df is under 0.5%, far below benchmark
/// noise. `df == 0` (fewer than two samples) returns infinity: no
/// variance estimate, no finite interval.
pub fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= TABLE.len() => TABLE[d - 1],
        _ => 1.960,
    }
}

/// Summary statistics of a sample of durations, in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std_ms: f64,
    /// Minimum.
    pub min_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl Stats {
    /// Computes statistics from a sample. Returns a zeroed struct for an
    /// empty sample.
    pub fn from_durations(samples: &[Duration]) -> Stats {
        if samples.is_empty() {
            return Stats {
                n: 0,
                mean_ms: 0.0,
                std_ms: 0.0,
                min_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                max_ms: 0.0,
            };
        }
        let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(f64::total_cmp);
        let n = ms.len();
        let mean = ms.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            ms.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let rank = |p: f64| -> f64 {
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            ms[idx]
        };
        Stats {
            n,
            mean_ms: mean,
            std_ms: var.sqrt(),
            min_ms: ms[0],
            p50_ms: rank(0.50),
            p95_ms: rank(0.95),
            max_ms: ms[n - 1],
        }
    }

    /// Half-width of the 95% confidence interval around the mean
    /// (`t95(n-1) * s / sqrt(n)`). Infinite for n < 2, where the sample
    /// carries no variance information.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        t95(self.n - 1) * self.std_ms / (self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: &[u64]) -> Vec<Duration> {
        v.iter().map(|&m| Duration::from_millis(m)).collect()
    }

    #[test]
    fn basic_statistics() {
        let s = Stats::from_durations(&ms(&[10, 20, 30, 40, 50]));
        assert_eq!(s.n, 5);
        assert!((s.mean_ms - 30.0).abs() < 1e-9);
        assert!((s.min_ms - 10.0).abs() < 1e-9);
        assert!((s.max_ms - 50.0).abs() < 1e-9);
        assert!((s.p50_ms - 30.0).abs() < 1e-9);
        assert!((s.p95_ms - 50.0).abs() < 1e-9);
        // Sample std of 10..50 step 10 = sqrt(250) ≈ 15.81.
        assert!((s.std_ms - 250.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = Stats::from_durations(&ms(&[7]));
        assert_eq!(s.n, 1);
        assert_eq!(s.std_ms, 0.0);
        assert_eq!(s.p50_ms, s.mean_ms);
    }

    #[test]
    fn empty_sample() {
        let s = Stats::from_durations(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn unsorted_input() {
        let s = Stats::from_durations(&ms(&[50, 10, 30]));
        assert_eq!(s.min_ms, 10.0);
        assert_eq!(s.max_ms, 50.0);
        assert_eq!(s.p50_ms, 30.0);
    }

    #[test]
    fn t_table_decreases_toward_normal() {
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!((t95(30) - 2.042).abs() < 1e-9);
        assert!((t95(31) - 1.960).abs() < 1e-9);
        assert!(t95(0).is_infinite());
        for df in 1..40 {
            assert!(t95(df) >= t95(df + 1), "t95 must be non-increasing at df={df}");
        }
    }

    #[test]
    fn ci_halfwidth() {
        let s = Stats::from_durations(&ms(&[10, 20, 30, 40, 50]));
        // t95(4) * sqrt(250) / sqrt(5) = 2.776 * 7.0710678...
        let expect = 2.776 * 250.0f64.sqrt() / 5.0f64.sqrt();
        assert!((s.ci95_halfwidth() - expect).abs() < 1e-9);
        assert!(Stats::from_durations(&ms(&[7])).ci95_halfwidth().is_infinite());
    }
}
