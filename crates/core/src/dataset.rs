//! Loading the synthetic TIGER-like dataset into an engine instance:
//! schema creation, bulk row insertion and index builds.

use crate::{ctx, Result};
use jackpine_datagen::TigerDataset;
use jackpine_engine::SpatialDb;
use jackpine_geom::Geometry;
use jackpine_storage::{ColumnDef, DataType, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What was loaded, with table cardinalities and build times — the raw
/// material of the paper's dataset-inventory table (T1).
#[derive(Clone, Debug)]
pub struct LoadSummary {
    /// `(table name, row count)` pairs in load order.
    pub tables: Vec<(String, usize)>,
    /// Wall time spent inserting rows.
    pub load_time: Duration,
    /// Wall time spent building spatial + ordered indexes.
    pub index_time: Duration,
}

impl LoadSummary {
    /// Total rows across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|(_, n)| n).sum()
    }
}

/// The five benchmark tables and their schemas.
pub fn table_schemas() -> Vec<(&'static str, Vec<ColumnDef>)> {
    vec![
        (
            "county",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("geom", DataType::Geometry),
            ],
        ),
        (
            "roads",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("zip", DataType::Int),
                ColumnDef::new("from_addr", DataType::Int),
                ColumnDef::new("to_addr", DataType::Int),
                ColumnDef::new("geom", DataType::Geometry),
            ],
        ),
        (
            "arealm",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("category", DataType::Text),
                ColumnDef::new("geom", DataType::Geometry),
            ],
        ),
        (
            "pointlm",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("category", DataType::Text),
                ColumnDef::new("geom", DataType::Geometry),
            ],
        ),
        (
            "areawater",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("geom", DataType::Geometry),
            ],
        ),
    ]
}

/// Loads `data` into `db`: creates the five tables, inserts every record,
/// then builds a spatial index on each geometry column plus the ordered
/// indexes the geocoding scenarios rely on (`roads.name`, `roads.zip`,
/// `arealm.id`, `county.name`).
pub fn load_dataset(db: &Arc<SpatialDb>, data: &TigerDataset) -> Result<LoadSummary> {
    for (name, cols) in table_schemas() {
        ctx(db.create_table(name, cols), format!("creating table {name}"))?;
    }

    let start = Instant::now();
    for c in &data.counties {
        ctx(
            db.insert_row(
                "county",
                vec![
                    Value::Int(c.id),
                    Value::Text(c.name.clone()),
                    Value::Geom(Geometry::Polygon(c.geom.clone())),
                ],
            ),
            "loading county",
        )?;
    }
    for r in &data.roads {
        ctx(
            db.insert_row(
                "roads",
                vec![
                    Value::Int(r.id),
                    Value::Text(r.name.clone()),
                    Value::Int(r.zip),
                    Value::Int(r.from_addr),
                    Value::Int(r.to_addr),
                    Value::Geom(Geometry::LineString(r.geom.clone())),
                ],
            ),
            "loading roads",
        )?;
    }
    for a in &data.arealm {
        ctx(
            db.insert_row(
                "arealm",
                vec![
                    Value::Int(a.id),
                    Value::Text(a.name.clone()),
                    Value::Text(a.category.clone()),
                    Value::Geom(Geometry::Polygon(a.geom.clone())),
                ],
            ),
            "loading arealm",
        )?;
    }
    for p in &data.pointlm {
        ctx(
            db.insert_row(
                "pointlm",
                vec![
                    Value::Int(p.id),
                    Value::Text(p.name.clone()),
                    Value::Text(p.category.clone()),
                    Value::Geom(Geometry::Point(p.geom)),
                ],
            ),
            "loading pointlm",
        )?;
    }
    for w in &data.areawater {
        ctx(
            db.insert_row(
                "areawater",
                vec![
                    Value::Int(w.id),
                    Value::Text(w.name.clone()),
                    Value::Geom(Geometry::Polygon(w.geom.clone())),
                ],
            ),
            "loading areawater",
        )?;
    }
    let load_time = start.elapsed();

    let start = Instant::now();
    for table in ["county", "roads", "arealm", "pointlm", "areawater"] {
        ctx(db.create_spatial_index(table, "geom"), format!("indexing {table}.geom"))?;
    }
    ctx(db.create_ordered_index("roads", "name"), "indexing roads.name")?;
    ctx(db.create_ordered_index("roads", "zip"), "indexing roads.zip")?;
    ctx(db.create_ordered_index("arealm", "id"), "indexing arealm.id")?;
    ctx(db.create_ordered_index("county", "name"), "indexing county.name")?;
    let index_time = start.elapsed();

    Ok(LoadSummary {
        tables: vec![
            ("county".into(), data.counties.len()),
            ("roads".into(), data.roads.len()),
            ("arealm".into(), data.arealm.len()),
            ("pointlm".into(), data.pointlm.len()),
            ("areawater".into(), data.areawater.len()),
        ],
        load_time,
        index_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_datagen::TigerConfig;
    use jackpine_engine::EngineProfile;

    #[test]
    fn load_small_dataset_into_every_profile() {
        let data = TigerDataset::generate(&TigerConfig { seed: 7, scale: 0.02 });
        for profile in EngineProfile::ALL {
            let db = Arc::new(SpatialDb::new(profile));
            let summary = load_dataset(&db, &data).unwrap();
            assert_eq!(summary.total_rows(), data.total_rows(), "profile {profile}");
            let r = db.execute("SELECT COUNT(*) FROM roads").unwrap();
            assert_eq!(
                r.scalar().unwrap().as_i64().unwrap() as usize,
                data.roads.len(),
                "profile {profile}"
            );
            // Spatial index live: window query through SQL.
            let r = db
                .execute(
                    "SELECT COUNT(*) FROM pointlm WHERE MBRIntersects(geom, \
                     ST_MakeEnvelope(-106, 25.8, -93.5, 36.5))",
                )
                .unwrap();
            assert_eq!(r.scalar().unwrap().as_i64().unwrap() as usize, data.pointlm.len());
        }
    }

    #[test]
    fn geocoding_indexes_usable() {
        let data = TigerDataset::generate(&TigerConfig { seed: 7, scale: 0.02 });
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        load_dataset(&db, &data).unwrap();
        let name = &data.roads[0].name;
        let r = db.execute(&format!("SELECT COUNT(*) FROM roads WHERE name = '{name}'")).unwrap();
        assert!(r.scalar().unwrap().as_i64().unwrap() >= 1);
    }
}
