//! The topological-relations micro suite: one query per DE-9IM relation ×
//! geometry-type combination, mirroring the structure of the paper's
//! micro benchmark.

use super::{BenchQuery, QueryConstants};
use jackpine_datagen::TigerDataset;

/// Builds the 19-query topological suite against `data`.
///
/// The operand-type coverage follows the paper: polygon/polygon from
/// `arealm` × `areawater` and `county` × `county`, line/polygon from
/// `roads` × water, line/line between roads, point/polygon and point/line
/// from `pointlm`, plus the bounding-box search every spatial benchmark
/// starts from. Join queries run through the spatial-index path; the
/// constant-operand queries measure index filter + refinement on a single
/// table.
pub fn topo_suite(data: &TigerDataset) -> Vec<BenchQuery> {
    let c = QueryConstants::from_dataset(data);
    let q = |id: &'static str, name: &'static str, sql: String| BenchQuery { id, name, sql };
    vec![
        // ---- bounding box ------------------------------------------------
        q(
            "T01",
            "BoundingBox search (polygon table)",
            format!(
                "SELECT COUNT(*) FROM arealm WHERE MBRIntersects(geom, ST_GeomFromText('{}'))",
                c.window_wkt
            ),
        ),
        // ---- polygon / polygon -------------------------------------------
        q(
            "T02",
            "Equals polygon/polygon",
            "SELECT COUNT(*) FROM arealm a JOIN areawater b ON ST_Equals(a.geom, b.geom)"
                .to_string(),
        ),
        q(
            "T03",
            "Disjoint polygon/polygon (constant region)",
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Disjoint(geom, ST_GeomFromText('{}'))",
                c.window_wkt
            ),
        ),
        q(
            "T04",
            "Intersects polygon/polygon",
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Intersects(geom, ST_GeomFromText('{}'))",
                c.river_wkt
            ),
        ),
        q(
            "T05",
            "Touches polygon/polygon (county adjacency)",
            "SELECT COUNT(*) FROM county a JOIN county b ON ST_Touches(a.geom, b.geom) \
             WHERE a.id < b.id"
                .to_string(),
        ),
        q(
            "T06",
            "Within polygon/polygon",
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Within(geom, ST_GeomFromText('{}'))",
                c.window_wkt
            ),
        ),
        q(
            "T07",
            "Contains polygon/polygon",
            format!(
                "SELECT COUNT(*) FROM county WHERE ST_Contains(geom, ST_GeomFromText('{}'))",
                c.arealm_wkt
            ),
        ),
        q(
            "T08",
            "Overlaps polygon/polygon",
            "SELECT COUNT(*) FROM arealm a JOIN areawater b ON ST_Overlaps(a.geom, b.geom)"
                .to_string(),
        ),
        // ---- line / polygon -----------------------------------------------
        q(
            "T09",
            "Crosses line/polygon (roads × river)",
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Crosses(geom, ST_GeomFromText('{}'))",
                c.river_wkt
            ),
        ),
        q(
            "T10",
            "Intersects line/polygon",
            "SELECT COUNT(*) FROM roads r JOIN areawater w ON ST_Intersects(r.geom, w.geom)"
                .to_string(),
        ),
        q(
            "T11",
            "Within line/polygon",
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Within(geom, ST_GeomFromText('{}'))",
                c.window_wkt
            ),
        ),
        q(
            "T12",
            "Touches line/polygon",
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Touches(geom, ST_GeomFromText('{}'))",
                c.arealm_wkt
            ),
        ),
        // ---- line / line ----------------------------------------------------
        q(
            "T13",
            "Equals line/line",
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Equals(geom, ST_GeomFromText('{}'))",
                c.road_wkt
            ),
        ),
        q(
            "T14",
            "Crosses line/line (intersections with a road)",
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Crosses(geom, ST_GeomFromText('{}'))",
                c.road_wkt
            ),
        ),
        q(
            "T15",
            "Overlaps line/line",
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Overlaps(geom, ST_GeomFromText('{}'))",
                c.road_wkt
            ),
        ),
        // ---- point / polygon ------------------------------------------------
        q(
            "T16",
            "Within point/polygon (selective window)",
            format!(
                "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, ST_GeomFromText('{}'))",
                c.small_window_wkt
            ),
        ),
        q(
            "T17",
            "Contains polygon/point (landmarks containing a point)",
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Contains(geom, ST_GeomFromText('{}'))",
                c.center_point_wkt
            ),
        ),
        // ---- point / line ----------------------------------------------------
        q(
            "T18",
            "Intersects point/line",
            format!(
                "SELECT COUNT(*) FROM pointlm WHERE ST_Intersects(geom, ST_GeomFromText('{}'))",
                c.road_wkt
            ),
        ),
        // ---- generic relate ---------------------------------------------------
        q(
            "T19",
            "Relate with explicit DE-9IM pattern (overlaps)",
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Relate(geom, ST_GeomFromText('{}'), \
                 'T*T***T**')",
                c.window_wkt
            ),
        ),
    ]
}
