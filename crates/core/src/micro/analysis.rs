//! The spatial-analysis micro suite: one query per analysis function,
//! mirroring the paper's second micro-benchmark half.

use super::{BenchQuery, QueryConstants};
use jackpine_datagen::TigerDataset;

/// Builds the 12-query analysis-function suite against `data`.
///
/// Aggregations force the function to run over every qualifying row, so
/// the measured time is dominated by the function itself rather than by
/// result transfer — the isolation property the micro benchmark is after.
pub fn analysis_suite(data: &TigerDataset) -> Vec<BenchQuery> {
    let c = QueryConstants::from_dataset(data);
    let q = |id: &'static str, name: &'static str, sql: String| BenchQuery { id, name, sql };
    vec![
        q(
            "A01",
            "Dimension over polygons",
            "SELECT COUNT(*) FROM arealm WHERE ST_Dimension(geom) = 2".to_string(),
        ),
        q(
            "A02",
            "Envelope area over polygons",
            "SELECT AVG(ST_Area(ST_Envelope(geom))) FROM arealm".to_string(),
        ),
        q("A03", "Length over all roads", "SELECT SUM(ST_Length(geom)) FROM roads".to_string()),
        q("A04", "Area over all polygons", "SELECT SUM(ST_Area(geom)) FROM arealm".to_string()),
        q(
            "A05",
            "Boundary complexity of water bodies",
            "SELECT COUNT(*) FROM areawater WHERE ST_NumPoints(ST_Boundary(geom)) > 10".to_string(),
        ),
        q(
            "A06",
            "Buffer around point landmarks",
            "SELECT SUM(ST_Area(ST_Buffer(geom, 0.01))) FROM pointlm".to_string(),
        ),
        q(
            "A07",
            "ConvexHull of landmarks",
            "SELECT SUM(ST_Area(ST_ConvexHull(geom))) FROM arealm".to_string(),
        ),
        q(
            "A08",
            "Centroid of landmarks (western half)",
            format!("SELECT COUNT(*) FROM arealm WHERE ST_X(ST_Centroid(geom)) < {}", c.mid_x),
        ),
        q(
            "A09",
            "Distance from a fixed point",
            format!(
                "SELECT COUNT(*) FROM pointlm WHERE \
                 ST_Distance(geom, ST_GeomFromText('{}')) < 1.0",
                c.center_point_wkt
            ),
        ),
        q(
            "A10",
            "Union of overlapping landmark/water pairs",
            "SELECT SUM(ST_Area(ST_Union(a.geom, b.geom))) FROM arealm a \
             JOIN areawater b ON ST_Overlaps(a.geom, b.geom)"
                .to_string(),
        ),
        q(
            "A11",
            "Intersection of overlapping landmark/water pairs",
            "SELECT SUM(ST_Area(ST_Intersection(a.geom, b.geom))) FROM arealm a \
             JOIN areawater b ON ST_Overlaps(a.geom, b.geom)"
                .to_string(),
        ),
        q(
            "A12",
            "Simplify all roads",
            "SELECT SUM(ST_NumPoints(ST_Simplify(geom, 0.005))) FROM roads".to_string(),
        ),
    ]
}
