//! The micro benchmark component: basic spatial operations in isolation.
//!
//! As in the paper, the suite has two halves:
//! * [`topo_suite`] — queries based on the Dimensionally Extended
//!   9-Intersection Model of topological relations, over every geometry
//!   type combination the dataset offers,
//! * [`analysis_suite`] — queries based on the spatial analysis
//!   functions (area, length, buffer, convex hull, overlay, …).

mod analysis;
mod topo;

pub use analysis::analysis_suite;
pub use topo::topo_suite;

use jackpine_datagen::TigerDataset;
use jackpine_geom::{wkt, Envelope, Geometry};

/// One micro-benchmark query.
#[derive(Clone, Debug)]
pub struct BenchQuery {
    /// Stable identifier (`T01` … / `A01` …).
    pub id: &'static str,
    /// Human-readable description (relation and operand types).
    pub name: &'static str,
    /// The SQL text.
    pub sql: String,
}

/// Constant geometries extracted deterministically from the dataset, used
/// as literal operands inside the micro queries.
pub(crate) struct QueryConstants {
    /// WKT of a mid-sized query window (≈ 4 % of the state).
    pub window_wkt: String,
    /// WKT of a small query window (≈ 0.1 % of the state).
    pub small_window_wkt: String,
    /// WKT of one river band polygon.
    pub river_wkt: String,
    /// WKT of a sample road polyline.
    pub road_wkt: String,
    /// WKT of a sample area landmark polygon.
    pub arealm_wkt: String,
    /// WKT of a point near the centre of the extent.
    pub center_point_wkt: String,
    /// x-coordinate of the extent centre.
    pub mid_x: f64,
}

impl QueryConstants {
    pub(crate) fn from_dataset(data: &TigerDataset) -> QueryConstants {
        let extent = jackpine_datagen::EXTENT;
        let cx = (extent.min_x + extent.max_x) * 0.5;
        let cy = (extent.min_y + extent.max_y) * 0.5;
        let window = Envelope::new(
            cx - extent.width() * 0.1,
            cy - extent.height() * 0.1,
            cx + extent.width() * 0.1,
            cy + extent.height() * 0.1,
        );
        let small = Envelope::new(
            cx - extent.width() * 0.016,
            cy - extent.height() * 0.016,
            cx + extent.width() * 0.016,
            cy + extent.height() * 0.016,
        );
        let river =
            data.areawater.iter().find(|w| w.name.ends_with("RIVER")).unwrap_or(&data.areawater[0]);
        let road = &data.roads[data.roads.len() / 2];
        let lm = &data.arealm[data.arealm.len() / 3];
        QueryConstants {
            window_wkt: env_wkt(&window),
            small_window_wkt: env_wkt(&small),
            river_wkt: wkt::write(&Geometry::Polygon(river.geom.clone())),
            road_wkt: wkt::write(&Geometry::LineString(road.geom.clone())),
            arealm_wkt: wkt::write(&Geometry::Polygon(lm.geom.clone())),
            center_point_wkt: format!("POINT ({cx} {cy})"),
            mid_x: cx,
        }
    }
}

fn env_wkt(e: &Envelope) -> String {
    format!(
        "POLYGON (({x0} {y0}, {x1} {y0}, {x1} {y1}, {x0} {y1}, {x0} {y0}))",
        x0 = e.min_x,
        y0 = e.min_y,
        x1 = e.max_x,
        y1 = e.max_y
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_datagen::TigerConfig;

    #[test]
    fn suites_have_expected_sizes_and_distinct_ids() {
        let data = TigerDataset::generate(&TigerConfig { seed: 3, scale: 0.02 });
        let t = topo_suite(&data);
        let a = analysis_suite(&data);
        assert_eq!(t.len(), 19, "topological relation suite");
        assert_eq!(a.len(), 12, "analysis function suite");
        let mut ids: Vec<&str> = t.iter().chain(a.iter()).map(|q| q.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate query ids");
    }

    #[test]
    fn all_queries_parse() {
        let data = TigerDataset::generate(&TigerConfig { seed: 3, scale: 0.02 });
        for q in topo_suite(&data).iter().chain(analysis_suite(&data).iter()) {
            jackpine_sqlmini::parser::parse(&q.sql)
                .unwrap_or_else(|e| panic!("{}: {} in {}", q.id, e, q.sql));
        }
    }
}
