//! The workload driver: repeated, timed query execution with warm or
//! cold cache behaviour.

use crate::stats::Stats;
use crate::{ctx, Result};
use jackpine_engine::SpatialConnector;
use std::time::{Duration, Instant};

/// Whether caches persist between repetitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Warm-up runs first; caches persist across repetitions.
    Warm,
    /// Every repetition starts from evicted caches (buffer-pool-miss
    /// behaviour of the paper's cold runs).
    Cold,
}

/// One benchmarked query's outcome.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// Query label (e.g. `T03 Crosses line/polygon`).
    pub label: String,
    /// The SQL that ran.
    pub sql: String,
    /// Latency statistics over the repetitions.
    pub stats: Stats,
    /// Rows returned (from the last repetition).
    pub rows: usize,
    /// The scalar result if the query returns one (for result validation
    /// across engines).
    pub scalar: Option<String>,
}

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct Driver {
    /// Timed repetitions per query.
    pub repetitions: usize,
    /// Untimed warm-up executions (ignored in cold mode).
    pub warmup: usize,
    /// Cache behaviour.
    pub cache_mode: CacheMode,
}

impl Default for Driver {
    fn default() -> Self {
        Driver { repetitions: 5, warmup: 1, cache_mode: CacheMode::Warm }
    }
}

impl Driver {
    /// Runs one query to completion `repetitions` times and reports
    /// statistics.
    pub fn run_query(
        &self,
        conn: &dyn SpatialConnector,
        label: &str,
        sql: &str,
    ) -> Result<QueryMeasurement> {
        let context = || format!("query {label}");
        if self.cache_mode == CacheMode::Warm {
            for _ in 0..self.warmup {
                ctx(conn.execute(sql), context())?;
            }
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.repetitions);
        let mut rows = 0;
        let mut scalar = None;
        for _ in 0..self.repetitions.max(1) {
            if self.cache_mode == CacheMode::Cold {
                conn.clear_caches();
            }
            let start = Instant::now();
            let result = ctx(conn.execute(sql), context())?;
            samples.push(start.elapsed());
            rows = result.len();
            scalar = result.scalar().map(|v| v.to_string());
        }
        Ok(QueryMeasurement {
            label: label.to_string(),
            sql: sql.to_string(),
            stats: Stats::from_durations(&samples),
            rows,
            scalar,
        })
    }

    /// Runs a sequence of `(label, sql)` steps once each, timing the whole
    /// sequence; used by the macro scenarios where throughput over a
    /// session matters more than per-query statistics.
    pub fn run_session(
        &self,
        conn: &dyn SpatialConnector,
        steps: &[(String, String)],
    ) -> Result<SessionMeasurement> {
        if self.cache_mode == CacheMode::Cold {
            conn.clear_caches();
        }
        let mut per_step: Vec<(String, Duration, usize)> = Vec::with_capacity(steps.len());
        let start = Instant::now();
        for (label, sql) in steps {
            let qstart = Instant::now();
            let result = ctx(conn.execute(sql), format!("session step {label}"))?;
            per_step.push((label.clone(), qstart.elapsed(), result.len()));
        }
        Ok(SessionMeasurement { total: start.elapsed(), per_step })
    }
}

/// Timing of one macro-scenario session.
#[derive(Clone, Debug)]
pub struct SessionMeasurement {
    /// Wall time of the whole session.
    pub total: Duration,
    /// `(step label, elapsed, rows)` per query.
    pub per_step: Vec<(String, Duration, usize)>,
}

impl SessionMeasurement {
    /// Queries per second over the session.
    pub fn throughput_qps(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.per_step.len() as f64 / self.total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_engine::{EngineProfile, SpatialDb};
    use std::sync::Arc;

    fn conn() -> Arc<SpatialDb> {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db
    }

    #[test]
    fn measures_repetitions() {
        let db = conn();
        let d = Driver { repetitions: 3, warmup: 1, cache_mode: CacheMode::Warm };
        let m = d.run_query(&db, "count", "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(m.stats.n, 3);
        assert_eq!(m.rows, 1);
        assert_eq!(m.scalar.as_deref(), Some("50"));
    }

    #[test]
    fn cold_mode_runs() {
        let db = conn();
        let d = Driver { repetitions: 2, warmup: 0, cache_mode: CacheMode::Cold };
        let m = d.run_query(&db, "count", "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(m.stats.n, 2);
        let stats = db.table("t").unwrap().heap.stats();
        assert!(stats.cache_misses >= 50, "cold repetitions must decode rows");
    }

    #[test]
    fn session_throughput() {
        let db = conn();
        let d = Driver::default();
        let steps = vec![
            ("a".to_string(), "SELECT COUNT(*) FROM t".to_string()),
            ("b".to_string(), "SELECT COUNT(*) FROM t WHERE id > 10".to_string()),
        ];
        let m = d.run_session(&db, &steps).unwrap();
        assert_eq!(m.per_step.len(), 2);
        assert!(m.throughput_qps() > 0.0);
    }

    #[test]
    fn errors_carry_context() {
        let db = conn();
        let d = Driver::default();
        let err = d.run_query(&db, "bad", "SELECT * FROM missing").unwrap_err();
        assert!(err.to_string().contains("bad"));
    }
}
