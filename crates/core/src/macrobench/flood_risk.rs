//! Scenario M4 — flood risk analysis.
//!
//! An analyst buffers a river to form the flood zone, then inventories
//! what falls inside it: landmarks at risk, road segments cut off,
//! settlements (point landmarks) affected, and the exact flooded area of
//! each affected landmark.
//!
//! The first step computes the buffer inside the database (`ST_Buffer`),
//! which the MBR-only profile cannot run — the step is skipped there,
//! exactly the feature-gap behaviour the paper reports. The remaining
//! steps use an application-side flood-zone geometry (computed here with
//! the geometry kernel) so every engine answers the same questions.

use super::{scenario_rng, Scenario, ScenarioConfig};
use jackpine_datagen::TigerDataset;
use jackpine_geom::algorithms::buffer::buffer_with_segments;
use jackpine_geom::{wkt, Geometry};

/// Buffer distance in degrees (≈ 2 km at this latitude).
const FLOOD_DISTANCE: f64 = 0.02;

/// Builds the flood-risk scenario.
pub fn flood_risk(data: &TigerDataset, config: &ScenarioConfig) -> Scenario {
    let mut rng = scenario_rng(config, 4);
    let rivers: Vec<_> = data.areawater.iter().filter(|w| w.name.ends_with("RIVER")).collect();
    let mut steps = Vec::new();

    for _ in 0..config.sessions {
        let river = rivers[rng.gen_range(0..rivers.len())];
        let river_geom = Geometry::Polygon(river.geom.clone());
        let river_wkt = wkt::write(&river_geom);

        // Step 1: in-database flood-zone construction (exact profiles).
        steps.push((
            "buffer river (in DB)".to_string(),
            format!(
                "SELECT ST_Area(ST_Buffer(ST_GeomFromText('{river_wkt}'), {FLOOD_DISTANCE}, 4))"
            ),
        ));

        // Application-side zone for the inventory steps. A coarse arc
        // approximation keeps the constant geometry manageable.
        let zone = buffer_with_segments(&river_geom, FLOOD_DISTANCE, 2)
            .expect("river buffer is well-defined");
        let zone_wkt = wkt::write(&zone);

        steps.push((
            "landmarks at risk".to_string(),
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Intersects(geom, \
                 ST_GeomFromText('{zone_wkt}'))"
            ),
        ));
        steps.push((
            "roads cut off".to_string(),
            format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Intersects(geom, \
                 ST_GeomFromText('{zone_wkt}'))"
            ),
        ));
        steps.push((
            "settlements affected".to_string(),
            format!(
                "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, \
                 ST_GeomFromText('{zone_wkt}'))"
            ),
        ));
        steps.push((
            "flooded area per landmark".to_string(),
            format!(
                "SELECT SUM(ST_Area(ST_Intersection(geom, ST_GeomFromText('{zone_wkt}')))) \
                 FROM arealm WHERE ST_Intersects(geom, ST_GeomFromText('{zone_wkt}'))"
            ),
        ));
    }
    Scenario { id: "M4", name: "Flood risk analysis", steps }
}
