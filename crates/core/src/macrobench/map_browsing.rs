//! Scenario M1 — map search and browsing.
//!
//! A user opens a map, then pans and zooms: each map view fetches every
//! visible layer (roads, area landmarks, water, point landmarks) with a
//! bounding-box query, at three successive zoom levels per session. This
//! is the window-query-dominated workload web map servers put on a
//! spatial database.

use super::{scenario_rng, Scenario, ScenarioConfig};
use jackpine_datagen::{TigerDataset, EXTENT};

/// Builds the map search & browsing scenario.
pub fn map_browsing(data: &TigerDataset, config: &ScenarioConfig) -> Scenario {
    let mut rng = scenario_rng(config, 1);
    let mut steps = Vec::new();
    // Zoom half-sizes in degrees: region, city, neighbourhood.
    const ZOOMS: [f64; 3] = [0.8, 0.2, 0.05];
    const LAYERS: [&str; 4] = ["roads", "arealm", "areawater", "pointlm"];

    for _ in 0..config.sessions {
        // Start the session at a random landmark (users search for a
        // place, then browse around it).
        let lm = &data.arealm[rng.gen_range(0..data.arealm.len())];
        let center = lm.geom.envelope().center().expect("landmark envelope non-empty");
        for (zi, half) in ZOOMS.iter().enumerate() {
            // Small pan between zoom levels.
            let cx = center.x + rng.gen_range(-0.1..0.1);
            let cy = center.y + rng.gen_range(-0.1..0.1);
            let x0 = (cx - half).max(EXTENT.min_x);
            let x1 = (cx + half).min(EXTENT.max_x);
            let y0 = (cy - half).max(EXTENT.min_y);
            let y1 = (cy + half).min(EXTENT.max_y);
            for layer in LAYERS {
                steps.push((
                    format!("zoom{} {layer}", zi + 1),
                    format!(
                        "SELECT COUNT(*) FROM {layer} WHERE MBRIntersects(geom, \
                         ST_MakeEnvelope({x0}, {y0}, {x1}, {y1}))"
                    ),
                ));
            }
        }
    }
    Scenario { id: "M1", name: "Map search and browsing", steps }
}
