//! The macro workload component: six application scenarios, each a
//! sequence of queries modelled on a common spatial-data application, as
//! named in the paper — map search and browsing, geocoding, reverse
//! geocoding, flood risk analysis, land information management and toxic
//! spill analysis.
//!
//! Each scenario pre-generates a deterministic set of *sessions* (a user
//! interaction's worth of queries) from the dataset and a seed; the
//! runner measures total throughput and per-step latency. Steps a system
//! cannot execute (missing functions in the MBR-only profile) are counted
//! as skipped, which is how the paper reports feature gaps inside macro
//! workloads.

mod flood_risk;
mod geocoding;
mod land_mgmt;
mod map_browsing;
mod reverse_geocoding;
mod toxic_spill;

pub use flood_risk::flood_risk;
pub use geocoding::geocoding;
pub use land_mgmt::land_management;
pub use map_browsing::map_browsing;
pub use reverse_geocoding::reverse_geocoding;
pub use toxic_spill::toxic_spill;

use crate::stats::Stats;
use crate::Result;
use jackpine_datagen::TigerDataset;
use jackpine_engine::{EngineError, SpatialConnector};
use jackpine_sqlmini::SqlError;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A macro workload: an id, a name and the pre-generated query steps.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable identifier (`M1` … `M6`).
    pub id: &'static str,
    /// Scenario name as in the paper.
    pub name: &'static str,
    /// `(step label, sql)` pairs across all sessions.
    pub steps: Vec<(String, String)>,
}

/// Parameters shared by the scenario generators.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// RNG seed (independent of the dataset seed).
    pub seed: u64,
    /// Number of user sessions to generate.
    pub sessions: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig { seed: 0xbead, sessions: 10 }
    }
}

/// Builds all six scenarios.
pub fn all_scenarios(data: &TigerDataset, config: &ScenarioConfig) -> Vec<Scenario> {
    vec![
        map_browsing(data, config),
        geocoding(data, config),
        reverse_geocoding(data, config),
        flood_risk(data, config),
        land_management(data, config),
        toxic_spill(data, config),
    ]
}

/// Outcome of running one scenario on one engine.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario id.
    pub id: &'static str,
    /// Scenario name.
    pub name: &'static str,
    /// Engine name.
    pub engine: String,
    /// Successfully executed queries.
    pub executed: usize,
    /// Steps skipped because the engine lacks a required function.
    pub skipped: usize,
    /// Total wall time over executed queries.
    pub elapsed: Duration,
    /// Per-step-label latency statistics (the F7 drill-down).
    pub per_step: Vec<(String, Stats)>,
}

impl ScenarioResult {
    /// Queries per second over the executed steps.
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.executed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs a scenario start to finish on one connection.
///
/// Steps failing with [`SqlError::UnsupportedFeature`] are skipped and
/// counted; any other failure aborts the run.
pub fn run_scenario(conn: &dyn SpatialConnector, scenario: &Scenario) -> Result<ScenarioResult> {
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut elapsed = Duration::ZERO;
    let mut buckets: BTreeMap<String, Vec<Duration>> = BTreeMap::new();

    for (label, sql) in &scenario.steps {
        let start = Instant::now();
        match conn.execute(sql) {
            Ok(_) => {
                let d = start.elapsed();
                elapsed += d;
                executed += 1;
                buckets.entry(label.clone()).or_default().push(d);
            }
            Err(EngineError::Sql(SqlError::UnsupportedFeature(_))) => {
                skipped += 1;
            }
            Err(source) => {
                return Err(crate::BenchError {
                    context: format!("scenario {} step {label}", scenario.id),
                    source,
                })
            }
        }
    }

    Ok(ScenarioResult {
        id: scenario.id,
        name: scenario.name,
        engine: conn.name(),
        executed,
        skipped,
        elapsed,
        per_step: buckets
            .into_iter()
            .map(|(label, samples)| (label, Stats::from_durations(&samples)))
            .collect(),
    })
}

/// Shared helper: deterministic RNG for a scenario.
pub(crate) fn scenario_rng(config: &ScenarioConfig, tag: u64) -> jackpine_datagen::rng::Rng {
    jackpine_datagen::rng::Rng::seed_from_u64(
        config.seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(tag),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::load_dataset;
    use jackpine_datagen::TigerConfig;
    use jackpine_engine::{EngineProfile, SpatialDb};
    use std::sync::Arc;

    fn tiny() -> (TigerDataset, ScenarioConfig) {
        (
            TigerDataset::generate(&TigerConfig { seed: 11, scale: 0.02 }),
            ScenarioConfig { seed: 5, sessions: 2 },
        )
    }

    #[test]
    fn scenarios_generate_deterministic_steps() {
        let (data, cfg) = tiny();
        let a = all_scenarios(&data, &cfg);
        let b = all_scenarios(&data, &cfg);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.steps, y.steps, "{} not deterministic", x.id);
            assert!(!x.steps.is_empty(), "{} has no steps", x.id);
        }
        // All six named scenarios of the paper are present.
        let ids: Vec<&str> = a.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec!["M1", "M2", "M3", "M4", "M5", "M6"]);
    }

    #[test]
    fn scenarios_run_on_exact_engine() {
        let (data, cfg) = tiny();
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        load_dataset(&db, &data).unwrap();
        for s in all_scenarios(&data, &cfg) {
            let r = run_scenario(&db, &s).unwrap();
            assert_eq!(r.skipped, 0, "{} skipped steps on exact engine", s.id);
            assert_eq!(r.executed, s.steps.len());
            assert!(r.throughput_qps() > 0.0);
            assert!(!r.per_step.is_empty());
        }
    }

    #[test]
    fn mbr_engine_skips_unsupported_steps_only() {
        let (data, cfg) = tiny();
        let db = Arc::new(SpatialDb::new(EngineProfile::MbrOnly));
        load_dataset(&db, &data).unwrap();
        let mut any_skipped = false;
        for s in all_scenarios(&data, &cfg) {
            let r = run_scenario(&db, &s).unwrap();
            any_skipped |= r.skipped > 0;
            assert_eq!(r.executed + r.skipped, s.steps.len());
        }
        assert!(any_skipped, "flood-risk buffering must be unsupported on mbr-only");
    }
}

/// Outcome of a multi-client run: the F8 concurrency experiment.
#[derive(Clone, Debug)]
pub struct ParallelResult {
    /// Scenario id.
    pub id: &'static str,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Total queries executed across clients.
    pub executed: usize,
    /// Steps skipped (unsupported functions), across clients.
    pub skipped: usize,
    /// Wall time of the whole run (not the per-client sum).
    pub wall: Duration,
}

impl ParallelResult {
    /// Aggregate throughput across all clients.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.executed as f64 / self.wall.as_secs_f64()
    }
}

/// Runs a scenario with `clients` concurrent workers, each executing the
/// full step list against the shared connection (the multi-user load the
/// paper applied to measure throughput scaling).
///
/// Steps failing with [`SqlError::UnsupportedFeature`] are counted as
/// skipped; any other error aborts the run.
pub fn run_scenario_parallel(
    conn: &(dyn SpatialConnector + Sync),
    scenario: &Scenario,
    clients: usize,
) -> Result<ParallelResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let executed = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let failure: jackpine_storage::sync::Mutex<Option<crate::BenchError>> =
        jackpine_storage::sync::Mutex::new(None);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| {
                for (label, sql) in &scenario.steps {
                    if failure.lock().is_some() {
                        return;
                    }
                    match conn.execute(sql) {
                        Ok(_) => {
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EngineError::Sql(SqlError::UnsupportedFeature(_))) => {
                            skipped.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(source) => {
                            *failure.lock() = Some(crate::BenchError {
                                context: format!("parallel scenario {} step {label}", scenario.id),
                                source,
                            });
                            return;
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    if let Some(err) = failure.into_inner() {
        return Err(err);
    }
    Ok(ParallelResult {
        id: scenario.id,
        clients,
        executed: executed.into_inner(),
        skipped: skipped.into_inner(),
        wall,
    })
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::dataset::load_dataset;
    use jackpine_datagen::TigerConfig;
    use jackpine_engine::{EngineProfile, SpatialDb};
    use std::sync::Arc;

    #[test]
    fn parallel_clients_execute_everything() {
        let data = TigerDataset::generate(&TigerConfig { seed: 4, scale: 0.02 });
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        load_dataset(&db, &data).unwrap();
        let cfg = ScenarioConfig { seed: 2, sessions: 1 };
        let s = super::map_browsing(&data, &cfg);
        let r = run_scenario_parallel(&db, &s, 4).unwrap();
        assert_eq!(r.executed, 4 * s.steps.len());
        assert_eq!(r.skipped, 0);
        assert!(r.throughput_qps() > 0.0);
    }

    #[test]
    fn parallel_run_skips_unsupported_like_serial() {
        let data = TigerDataset::generate(&TigerConfig { seed: 4, scale: 0.02 });
        let db = Arc::new(SpatialDb::new(EngineProfile::MbrOnly));
        load_dataset(&db, &data).unwrap();
        let cfg = ScenarioConfig { seed: 2, sessions: 1 };
        let s = super::flood_risk(&data, &cfg);
        let r = run_scenario_parallel(&db, &s, 2).unwrap();
        assert!(r.skipped >= 2, "buffer steps must be skipped on both clients");
        assert_eq!(r.executed + r.skipped, 2 * s.steps.len());
    }
}
