//! Scenario M6 — toxic spill analysis.
//!
//! Emergency response around a spill site: impact rings at three radii,
//! roads to close, water bodies at contamination risk, population proxy
//! (point landmarks) inside each ring, and the nearest large facilities
//! for staging. Ring geometries are built application-side (a circle
//! around the spill point) so every profile can answer.

use super::{scenario_rng, Scenario, ScenarioConfig};
use jackpine_datagen::{TigerDataset, EXTENT};
use jackpine_geom::algorithms::buffer::buffer_with_segments;
use jackpine_geom::{wkt, Geometry, Point};

/// Impact ring radii in degrees.
const RADII: [f64; 3] = [0.02, 0.05, 0.1];

/// Builds the toxic-spill scenario.
pub fn toxic_spill(data: &TigerDataset, config: &ScenarioConfig) -> Scenario {
    let mut rng = scenario_rng(config, 6);
    let mut steps = Vec::new();

    for _ in 0..config.sessions {
        // Spills happen on roads: pick a random road vertex.
        let road = &data.roads[rng.gen_range(0..data.roads.len())];
        let site = road.geom.coords()[rng.gen_range(0..road.geom.num_coords())];
        let site_geom = Geometry::Point(Point::from_coord(site).expect("road vertex is finite"));

        for (ri, radius) in RADII.iter().enumerate() {
            let ring =
                buffer_with_segments(&site_geom, *radius, 4).expect("point buffer is well-defined");
            let ring_wkt = wkt::write(&ring);
            steps.push((
                format!("ring{} roads to close", ri + 1),
                format!(
                    "SELECT COUNT(*) FROM roads WHERE ST_Intersects(geom, \
                     ST_GeomFromText('{ring_wkt}'))"
                ),
            ));
            steps.push((
                format!("ring{} water at risk", ri + 1),
                format!(
                    "SELECT COUNT(*) FROM areawater WHERE ST_Intersects(geom, \
                     ST_GeomFromText('{ring_wkt}'))"
                ),
            ));
            steps.push((
                format!("ring{} population proxy", ri + 1),
                format!(
                    "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, \
                     ST_GeomFromText('{ring_wkt}'))"
                ),
            ));
        }
        // Staging: nearest large facilities, bounded to the state extent.
        let x = site.x.clamp(EXTENT.min_x, EXTENT.max_x);
        let y = site.y.clamp(EXTENT.min_y, EXTENT.max_y);
        steps.push((
            "staging facilities".to_string(),
            format!(
                "SELECT id, name FROM arealm \
                 ORDER BY ST_Distance(geom, ST_GeomFromText('POINT ({x} {y})')) LIMIT 3"
            ),
        ));
    }
    Scenario { id: "M6", name: "Toxic spill analysis", steps }
}
