//! Scenario M3 — reverse geocoding: coordinates → nearest address.
//!
//! Each query finds the road nearest to a GPS-style fix. The access path
//! is the k-nearest-neighbour search on the spatial index (the planner's
//! `ORDER BY ST_Distance(...) LIMIT k` recognition), with exact distance
//! refinement on the candidates.

use super::{scenario_rng, Scenario, ScenarioConfig};
use jackpine_datagen::TigerDataset;

/// Fixes per session.
const FIXES: usize = 10;

/// Builds the reverse-geocoding scenario.
pub fn reverse_geocoding(data: &TigerDataset, config: &ScenarioConfig) -> Scenario {
    let mut rng = scenario_rng(config, 3);
    let mut steps = Vec::new();
    for _ in 0..config.sessions {
        for _ in 0..FIXES {
            // GPS fixes cluster near roads: perturb a random road vertex.
            let road = &data.roads[rng.gen_range(0..data.roads.len())];
            let base = road.geom.coords()[rng.gen_range(0..road.geom.num_coords())];
            let x = base.x + rng.gen_range(-0.002..0.002);
            let y = base.y + rng.gen_range(-0.002..0.002);
            steps.push((
                "nearest road".to_string(),
                format!(
                    "SELECT id, name FROM roads \
                     ORDER BY ST_Distance(geom, ST_GeomFromText('POINT ({x} {y})')) LIMIT 1"
                ),
            ));
        }
    }
    Scenario { id: "M3", name: "Reverse geocoding", steps }
}
