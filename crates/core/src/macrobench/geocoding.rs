//! Scenario M2 — geocoding: street address → coordinates.
//!
//! Each lookup resolves `"<number> <street name>, <zip>"` to the road
//! segment holding that address range; the application interpolates the
//! position along the returned centreline. The database-side work is the
//! attribute-index lookup plus range filter — the workload that made the
//! paper's systems lean on their B-tree indexes rather than the spatial
//! ones.

use super::{scenario_rng, Scenario, ScenarioConfig};
use jackpine_datagen::TigerDataset;

/// Lookups per session.
const LOOKUPS: usize = 10;

/// Builds the geocoding scenario.
pub fn geocoding(data: &TigerDataset, config: &ScenarioConfig) -> Scenario {
    let mut rng = scenario_rng(config, 2);
    let mut steps = Vec::new();
    for _ in 0..config.sessions {
        for _ in 0..LOOKUPS {
            // Address sampled from a real road, so most lookups hit; a few
            // miss on purpose (wrong zip), as real geocoding traffic does.
            let road = &data.roads[rng.gen_range(0..data.roads.len())];
            let number = rng.gen_range(road.from_addr..=road.to_addr);
            let zip = if rng.gen_bool(0.9) { road.zip } else { road.zip + 7777 };
            steps.push((
                "address lookup".to_string(),
                format!(
                    "SELECT id, name, from_addr, to_addr, geom FROM roads \
                     WHERE name = '{}' AND zip = {} AND from_addr <= {} AND to_addr >= {}",
                    road.name.replace('\'', "''"),
                    zip,
                    number,
                    number
                ),
            ));
        }
    }
    Scenario { id: "M2", name: "Geocoding", steps }
}
