//! Scenario M5 — land information management.
//!
//! Cadastral-office traffic over the landmark ("parcel") table: fetch a
//! parcel by id, find its neighbours (`Touches`), list parcels inside a
//! county, total registered area per land-use category, and the public
//! facilities nearest to the parcel.

use super::{scenario_rng, Scenario, ScenarioConfig};
use jackpine_datagen::TigerDataset;
use jackpine_geom::{wkt, Geometry};

/// Builds the land-information-management scenario.
pub fn land_management(data: &TigerDataset, config: &ScenarioConfig) -> Scenario {
    let mut rng = scenario_rng(config, 5);
    let mut steps = Vec::new();

    for _ in 0..config.sessions {
        let parcel = &data.arealm[rng.gen_range(0..data.arealm.len())];
        let parcel_wkt = wkt::write(&Geometry::Polygon(parcel.geom.clone()));
        let county = &data.counties[rng.gen_range(0..data.counties.len())];
        let county_wkt = wkt::write(&Geometry::Polygon(county.geom.clone()));

        steps.push((
            "parcel by id".to_string(),
            format!("SELECT id, name, category FROM arealm WHERE id = {}", parcel.id),
        ));
        steps.push((
            "neighbouring parcels".to_string(),
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Intersects(geom, \
                 ST_GeomFromText('{parcel_wkt}')) AND id <> {}",
                parcel.id
            ),
        ));
        steps.push((
            "parcels in county".to_string(),
            format!(
                "SELECT COUNT(*) FROM arealm WHERE ST_Within(geom, \
                 ST_GeomFromText('{county_wkt}'))"
            ),
        ));
        steps.push((
            "registered area in county".to_string(),
            format!(
                "SELECT SUM(ST_Area(geom)) FROM arealm WHERE ST_Within(geom, \
                 ST_GeomFromText('{county_wkt}'))"
            ),
        ));
        steps.push((
            "area by land-use category".to_string(),
            "SELECT category, COUNT(*), SUM(ST_Area(geom)) FROM arealm \
             GROUP BY category ORDER BY 1"
                .to_string(),
        ));
        let c = parcel.geom.envelope().center().expect("parcel envelope non-empty");
        steps.push((
            "nearest facilities".to_string(),
            format!(
                "SELECT id, name FROM pointlm \
                 ORDER BY ST_Distance(geom, ST_GeomFromText('POINT ({} {})')) LIMIT 5",
                c.x, c.y
            ),
        ));
    }
    Scenario { id: "M5", name: "Land information management", steps }
}
