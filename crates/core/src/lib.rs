//! # jackpine-core
//!
//! The Jackpine spatial database benchmark (Ray, Simion & Demke Brown,
//! ICDE 2011), reimplemented in Rust over in-process engine profiles.
//!
//! The benchmark has two components, exactly as in the paper:
//!
//! * **Micro benchmarks** ([`micro`]): queries exercising the DE-9IM
//!   topological relations in isolation ([`micro::topo_suite`]) and the
//!   spatial analysis functions ([`micro::analysis_suite`]).
//! * **Macro workloads** ([`macrobench`]): six application scenarios —
//!   map search and browsing, geocoding, reverse geocoding, flood risk
//!   analysis, land information management and toxic spill analysis.
//!
//! Supporting pieces: a deterministic dataset loader ([`dataset`]), a
//! timing driver with warm/cold modes ([`driver`]), the feature-support
//! matrix ([`features`]) and text/CSV reporting ([`report`]).
//!
//! Everything is written against
//! [`jackpine_engine::SpatialConnector`] — the portability layer that
//! plays the role JDBC played in the original harness — so any backend
//! implementing that trait can be benchmarked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchreport;
pub mod dataset;
pub mod driver;
pub mod features;
pub mod macrobench;
pub mod micro;
pub mod report;
pub mod stats;

pub use dataset::{load_dataset, LoadSummary};
pub use driver::{CacheMode, Driver, QueryMeasurement};
pub use stats::Stats;

/// Benchmark-level errors: engine failures carrying query context.
#[derive(Debug)]
pub struct BenchError {
    /// What the harness was doing.
    pub context: String,
    /// The underlying engine error.
    pub source: jackpine_engine::EngineError,
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for BenchError {}

/// Result alias for benchmark operations.
pub type Result<T> = std::result::Result<T, BenchError>;

/// Helper to attach context to engine errors.
pub(crate) fn ctx<T>(
    r: std::result::Result<T, jackpine_engine::EngineError>,
    context: impl Into<String>,
) -> Result<T> {
    r.map_err(|source| BenchError { context: context.into(), source })
}
