//! The feature-support matrix (the paper's T2): which spatial predicates
//! and analysis functions each system under test provides.

use jackpine_engine::SpatialConnector;

/// Functions probed for the matrix, grouped as in the paper: the DE-9IM
/// predicates first, then the analysis functions.
pub const PROBED_FUNCTIONS: [&str; 24] = [
    "ST_Equals",
    "ST_Disjoint",
    "ST_Intersects",
    "ST_Touches",
    "ST_Crosses",
    "ST_Within",
    "ST_Contains",
    "ST_Overlaps",
    "ST_Relate",
    "ST_Area",
    "ST_Length",
    "ST_Dimension",
    "ST_Envelope",
    "ST_Boundary",
    "ST_Centroid",
    "ST_Buffer",
    "ST_ConvexHull",
    "ST_Union",
    "ST_Intersection",
    "ST_Distance",
    "ST_Simplify",
    "ST_DistanceSphere",
    "ST_LengthSphere",
    "ST_AreaSphere",
];

/// One engine's support row.
#[derive(Clone, Debug)]
pub struct FeatureRow {
    /// Engine name.
    pub engine: String,
    /// `(function, supported)` pairs in [`PROBED_FUNCTIONS`] order.
    pub support: Vec<(&'static str, bool)>,
}

impl FeatureRow {
    /// Number of supported functions.
    pub fn supported_count(&self) -> usize {
        self.support.iter().filter(|(_, s)| *s).count()
    }
}

/// Probes every function on every connector.
pub fn feature_matrix(conns: &[&dyn SpatialConnector]) -> Vec<FeatureRow> {
    conns
        .iter()
        .map(|c| FeatureRow {
            engine: c.name(),
            support: PROBED_FUNCTIONS.iter().map(|f| (*f, c.supports_function(f))).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_engine::{EngineProfile, SpatialDb};
    use std::sync::Arc;

    #[test]
    fn matrix_reflects_profiles() {
        let dbs: Vec<Arc<SpatialDb>> =
            EngineProfile::ALL.iter().map(|p| Arc::new(SpatialDb::new(*p))).collect();
        let conns: Vec<&dyn SpatialConnector> =
            dbs.iter().map(|d| d as &dyn SpatialConnector).collect();
        let m = feature_matrix(&conns);
        assert_eq!(m.len(), 3);
        let exact = &m[0];
        let mbr = &m[1];
        assert_eq!(exact.supported_count(), PROBED_FUNCTIONS.len());
        assert!(mbr.supported_count() < PROBED_FUNCTIONS.len());
        // The specific paper-era gaps.
        let lookup = |row: &FeatureRow, f: &str| {
            row.support.iter().find(|(n, _)| *n == f).map(|(_, s)| *s).unwrap()
        };
        assert!(!lookup(mbr, "ST_Buffer"));
        assert!(!lookup(mbr, "ST_ConvexHull"));
        assert!(!lookup(mbr, "ST_Union"));
        assert!(lookup(mbr, "ST_Area"));
        assert!(lookup(mbr, "ST_Intersects"));
    }
}
