//! Poison-free lock wrappers over `std::sync`.
//!
//! The workspace previously used `parking_lot`, whose locks have no
//! poisoning and whose `lock()`/`read()`/`write()` return guards
//! directly. These thin wrappers keep that calling convention on top of
//! the standard library (zero-dependency offline builds): a panic while
//! holding a lock does not poison it for other threads — the next
//! acquirer simply proceeds, which matches `parking_lot` semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock and reports how long acquisition blocked —
    /// the engine's wait-state profiler wraps contended locks (the
    /// writer txn lock) with this to attribute contention per site.
    /// An uncontended `try_lock` fast path keeps the common case at
    /// one atomic, with no clock reads.
    pub fn lock_timed(&self) -> (MutexGuard<'_, T>, Duration) {
        match self.0.try_lock() {
            Ok(guard) => (guard, Duration::ZERO),
            Err(std::sync::TryLockError::Poisoned(e)) => (e.into_inner(), Duration::ZERO),
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                (self.lock(), start.elapsed())
            }
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable whose waits ignore poisoning, pairing with
/// [`Mutex`] the way `parking_lot::Condvar` pairs with its mutex. Used
/// by the engine's group-commit pipeline for leader/follower handoff.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, re-acquiring the guard's lock.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until notified or `dur` elapses. Returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, timeout) = self.0.wait_timeout(guard, dur).unwrap_or_else(|e| e.into_inner());
        (guard, timeout.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn lock_timed_uncontended_reports_zero_wait() {
        let m = Mutex::new(3);
        let (guard, waited) = m.lock_timed();
        assert_eq!(*guard, 3);
        assert_eq!(waited, Duration::ZERO);
    }

    #[test]
    fn lock_timed_contended_reports_nonzero_wait() {
        // Retry the whole race until the waiter demonstrably blocked:
        // scheduling can let the waiter in after the drop, in which case
        // the fast path correctly reports zero and we try again.
        for _ in 0..100 {
            let m = std::sync::Arc::new(Mutex::new(0));
            let m2 = m.clone();
            let (tx, rx) = std::sync::mpsc::channel();
            let g = m.lock();
            let t = std::thread::spawn(move || {
                tx.send(()).unwrap();
                let (mut g, waited) = m2.lock_timed();
                *g += 1;
                waited
            });
            rx.recv().unwrap();
            std::thread::sleep(Duration::from_millis(10));
            drop(g);
            let waited = t.join().unwrap();
            assert_eq!(*m.lock(), 1);
            if waited > Duration::ZERO {
                return;
            }
        }
        panic!("waiter never observed a blocked acquisition in 100 attempts");
    }

    #[test]
    fn rwlock_read_and_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_notifies_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
    }
}
