use std::fmt;

/// Errors from the storage layer.
#[derive(Clone, Debug, PartialEq)]
pub enum StorageError {
    /// A row did not match the table schema.
    SchemaMismatch(String),
    /// A value could not be decoded from its page representation.
    Corrupt(String),
    /// A referenced row does not exist (deleted or never written).
    RowNotFound {
        /// Page index of the missing row.
        page: u32,
        /// Slot index of the missing row.
        slot: u16,
    },
    /// A referenced table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// Geometry (de)serialization failed.
    Geometry(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::RowNotFound { page, slot } => {
                write!(f, "row not found at page {page} slot {slot}")
            }
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::TableExists(t) => write!(f, "table already exists: {t}"),
            StorageError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StorageError::Geometry(m) => write!(f, "geometry codec: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<jackpine_geom::GeomError> for StorageError {
    fn from(e: jackpine_geom::GeomError) -> Self {
        StorageError::Geometry(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(StorageError::NoSuchTable("roads".into()).to_string().contains("roads"));
        assert!(StorageError::RowNotFound { page: 3, slot: 7 }.to_string().contains("page 3"));
    }
}
