//! Slotted pages: the serialized resting place of rows.
//!
//! A page is a byte buffer with tuples packed from the front and a slot
//! directory (offset, length) growing from the back, the classic heap-file
//! layout. Deleted slots are tombstoned (length 0) so row ids stay stable.

use crate::{Result, StorageError};

/// Target page payload size in bytes. A tuple larger than this gets a
/// dedicated oversized page (spatial rows with large polygons are common
/// in cadastral data, so this must not be a hard limit).
pub const PAGE_SIZE: usize = 8192;

const SLOT_BYTES: usize = 8; // u32 offset + u32 length

/// A slotted page.
#[derive(Clone, Debug)]
pub struct Page {
    data: Vec<u8>,
    /// (offset, len) per slot; len == 0 marks a tombstone.
    slots: Vec<(u32, u32)>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Page {
        Page { data: Vec::with_capacity(PAGE_SIZE), slots: Vec::new() }
    }

    /// Bytes used by tuples plus slot directory.
    pub fn used(&self) -> usize {
        self.data.len() + self.slots.len() * SLOT_BYTES
    }

    /// `true` when `tuple_len` more bytes (plus a slot) would overflow the
    /// target page size. Oversized tuples report `false` only on an empty
    /// page, where they are always accepted.
    pub fn fits(&self, tuple_len: usize) -> bool {
        if self.slots.is_empty() {
            return true; // an empty page accepts anything (oversized page)
        }
        self.used() + tuple_len + SLOT_BYTES <= PAGE_SIZE
    }

    /// Number of slots, live and tombstoned.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Appends a tuple, returning its slot number.
    pub fn insert(&mut self, tuple: &[u8]) -> u16 {
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(tuple);
        self.slots.push((offset, tuple.len() as u32));
        (self.slots.len() - 1) as u16
    }

    /// Reads the tuple in `slot`.
    ///
    /// # Errors
    /// [`StorageError::RowNotFound`] for out-of-range or tombstoned slots.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        match self.slots.get(slot as usize) {
            Some(&(off, len)) if len > 0 => {
                Ok(&self.data[off as usize..off as usize + len as usize])
            }
            _ => Err(StorageError::RowNotFound { page: u32::MAX, slot }),
        }
    }

    /// Tombstones `slot`. Returns whether a live tuple was removed.
    pub fn delete(&mut self, slot: u16) -> bool {
        match self.slots.get_mut(slot as usize) {
            Some(s) if s.1 > 0 => {
                s.1 = 0;
                true
            }
            _ => false,
        }
    }

    /// Iterates the live tuples as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        self.slots.iter().enumerate().filter(|&(_i, &(_off, len))| len > 0).map(
            |(i, &(off, len))| (i as u16, &self.data[off as usize..off as usize + len as usize]),
        )
    }

    /// Writes a tuple into a *specific* slot — WAL replay and snapshot
    /// load, where `RowId`s recorded on disk must be reproduced exactly.
    /// Missing intermediate slots are padded with tombstones; a
    /// tombstoned slot is refilled in place.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] when the slot already holds a live tuple.
    pub fn place(&mut self, slot: u16, tuple: &[u8]) -> Result<()> {
        let idx = slot as usize;
        while self.slots.len() <= idx {
            self.slots.push((0, 0)); // tombstone padding
        }
        if self.slots[idx].1 > 0 {
            return Err(StorageError::Corrupt(format!("slot {slot} already occupied")));
        }
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(tuple);
        self.slots[idx] = (offset, tuple.len() as u32);
        Ok(())
    }

    /// Serializes the page for the buffer pool's backing store:
    /// `slot count u32 | (offset u32, len u32)* | data len u32 | data`,
    /// all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.slots.len() * SLOT_BYTES + self.data.len());
        out.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        for &(off, len) in &self.slots {
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserializes a page written by [`Page::to_bytes`].
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] when the bytes are truncated or a slot
    /// points outside the data area.
    pub fn from_bytes(bytes: &[u8]) -> Result<Page> {
        let corrupt = || StorageError::Corrupt("page image truncated".into());
        let take_u32 = |b: &[u8], at: usize| -> Result<u32> {
            let raw: [u8; 4] = b.get(at..at + 4).ok_or_else(corrupt)?.try_into().unwrap();
            Ok(u32::from_le_bytes(raw))
        };
        let nslots = take_u32(bytes, 0)? as usize;
        let mut slots = Vec::with_capacity(nslots.min(bytes.len() / SLOT_BYTES + 1));
        let mut at = 4;
        for _ in 0..nslots {
            let off = take_u32(bytes, at)?;
            let len = take_u32(bytes, at + 4)?;
            slots.push((off, len));
            at += SLOT_BYTES;
        }
        let dlen = take_u32(bytes, at)? as usize;
        at += 4;
        let data = bytes.get(at..at + dlen).ok_or_else(corrupt)?.to_vec();
        for &(off, len) in &slots {
            if len > 0 && (off as usize + len as usize) > data.len() {
                return Err(StorageError::Corrupt("page slot out of bounds".into()));
            }
        }
        Ok(Page { data, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello");
        let s1 = p.insert(b"world!");
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert!(p.delete(s0));
        assert!(!p.delete(s0)); // already gone
        assert!(p.get(s0).is_err());
        assert_eq!(p.get(s1).unwrap(), b"world!"); // untouched
        assert!(p.get(99).is_err());
    }

    #[test]
    fn iteration_skips_tombstones() {
        let mut p = Page::new();
        p.insert(b"a");
        let s1 = p.insert(b"b");
        p.insert(b"c");
        p.delete(s1);
        let live: Vec<&[u8]> = p.iter().map(|(_, b)| b).collect();
        assert_eq!(live, vec![b"a".as_slice(), b"c".as_slice()]);
        assert_eq!(p.slot_count(), 3);
    }

    #[test]
    fn serialization_roundtrip_preserves_slots_and_tombstones() {
        let mut p = Page::new();
        p.insert(b"alpha");
        let s1 = p.insert(b"beta");
        p.insert(b"gamma");
        p.delete(s1);
        let img = p.to_bytes();
        let q = Page::from_bytes(&img).unwrap();
        assert_eq!(q.slot_count(), 3);
        assert_eq!(q.get(0).unwrap(), b"alpha");
        assert!(q.get(1).is_err(), "tombstone survives the roundtrip");
        assert_eq!(q.get(2).unwrap(), b"gamma");
        assert_eq!(q.to_bytes(), img, "re-serialization is byte-identical");
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Page::from_bytes(&[]).is_err());
        assert!(Page::from_bytes(&[9, 0, 0, 0, 1]).is_err());
        // Slot pointing past the data area.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes()); // 1 slot
        bad.extend_from_slice(&100u32.to_le_bytes()); // offset 100
        bad.extend_from_slice(&8u32.to_le_bytes()); // len 8
        bad.extend_from_slice(&2u32.to_le_bytes()); // data len 2
        bad.extend_from_slice(b"xy");
        assert!(Page::from_bytes(&bad).is_err());
    }

    #[test]
    fn place_pads_refills_and_refuses_live_slots() {
        let mut p = Page::new();
        p.place(2, b"two").unwrap();
        assert_eq!(p.slot_count(), 3);
        assert!(p.get(0).is_err(), "padding slots are tombstones");
        assert_eq!(p.get(2).unwrap(), b"two");
        p.place(0, b"zero").unwrap();
        assert_eq!(p.get(0).unwrap(), b"zero");
        assert!(p.place(2, b"clash").is_err(), "live slot refused");
        p.delete(2);
        p.place(2, b"again").unwrap();
        assert_eq!(p.get(2).unwrap(), b"again");
    }

    #[test]
    fn capacity_accounting() {
        let mut p = Page::new();
        assert!(p.fits(PAGE_SIZE * 10)); // empty page accepts oversized
        p.insert(&vec![0u8; 4000]);
        assert!(p.fits(4000));
        assert!(!p.fits(5000));
        p.insert(&vec![0u8; 4000]);
        assert!(!p.fits(500));
    }
}
