//! Slotted pages: the serialized resting place of rows.
//!
//! A page is a byte buffer with tuples packed from the front and a slot
//! directory (offset, length) growing from the back, the classic heap-file
//! layout. Deleted slots are tombstoned (length 0) so row ids stay stable.

use crate::{Result, StorageError};

/// Target page payload size in bytes. A tuple larger than this gets a
/// dedicated oversized page (spatial rows with large polygons are common
/// in cadastral data, so this must not be a hard limit).
pub const PAGE_SIZE: usize = 8192;

const SLOT_BYTES: usize = 8; // u32 offset + u32 length

/// A slotted page.
#[derive(Clone, Debug)]
pub struct Page {
    data: Vec<u8>,
    /// (offset, len) per slot; len == 0 marks a tombstone.
    slots: Vec<(u32, u32)>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Page {
        Page { data: Vec::with_capacity(PAGE_SIZE), slots: Vec::new() }
    }

    /// Bytes used by tuples plus slot directory.
    pub fn used(&self) -> usize {
        self.data.len() + self.slots.len() * SLOT_BYTES
    }

    /// `true` when `tuple_len` more bytes (plus a slot) would overflow the
    /// target page size. Oversized tuples report `false` only on an empty
    /// page, where they are always accepted.
    pub fn fits(&self, tuple_len: usize) -> bool {
        if self.slots.is_empty() {
            return true; // an empty page accepts anything (oversized page)
        }
        self.used() + tuple_len + SLOT_BYTES <= PAGE_SIZE
    }

    /// Number of slots, live and tombstoned.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Appends a tuple, returning its slot number.
    pub fn insert(&mut self, tuple: &[u8]) -> u16 {
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(tuple);
        self.slots.push((offset, tuple.len() as u32));
        (self.slots.len() - 1) as u16
    }

    /// Reads the tuple in `slot`.
    ///
    /// # Errors
    /// [`StorageError::RowNotFound`] for out-of-range or tombstoned slots.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        match self.slots.get(slot as usize) {
            Some(&(off, len)) if len > 0 => {
                Ok(&self.data[off as usize..off as usize + len as usize])
            }
            _ => Err(StorageError::RowNotFound { page: u32::MAX, slot }),
        }
    }

    /// Tombstones `slot`. Returns whether a live tuple was removed.
    pub fn delete(&mut self, slot: u16) -> bool {
        match self.slots.get_mut(slot as usize) {
            Some(s) if s.1 > 0 => {
                s.1 = 0;
                true
            }
            _ => false,
        }
    }

    /// Iterates the live tuples as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        self.slots.iter().enumerate().filter(|&(_i, &(_off, len))| len > 0).map(
            |(i, &(off, len))| (i as u16, &self.data[off as usize..off as usize + len as usize]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello");
        let s1 = p.insert(b"world!");
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert!(p.delete(s0));
        assert!(!p.delete(s0)); // already gone
        assert!(p.get(s0).is_err());
        assert_eq!(p.get(s1).unwrap(), b"world!"); // untouched
        assert!(p.get(99).is_err());
    }

    #[test]
    fn iteration_skips_tombstones() {
        let mut p = Page::new();
        p.insert(b"a");
        let s1 = p.insert(b"b");
        p.insert(b"c");
        p.delete(s1);
        let live: Vec<&[u8]> = p.iter().map(|(_, b)| b).collect();
        assert_eq!(live, vec![b"a".as_slice(), b"c".as_slice()]);
        assert_eq!(p.slot_count(), 3);
    }

    #[test]
    fn capacity_accounting() {
        let mut p = Page::new();
        assert!(p.fits(PAGE_SIZE * 10)); // empty page accepts oversized
        p.insert(&vec![0u8; 4000]);
        assert!(p.fits(4000));
        assert!(!p.fits(5000));
        p.insert(&vec![0u8; 4000]);
        assert!(!p.fits(500));
    }
}
