//! Heap files: unordered collections of rows in slotted pages, with a
//! decoded-row cache that the benchmark's cold mode can evict.
//!
//! # Row visibility (MVCC)
//!
//! Each row optionally carries a `(born, died)` generation pair in a
//! side table. A reader pinned at generation `g` sees exactly the rows
//! with `born <= g && died > g`; rows without an entry are visible at
//! every generation. Writers stamp new rows with their commit
//! generation ([`HeapFile::insert_at`]) and delete logically
//! ([`HeapFile::mark_deleted`]) so concurrent snapshot readers keep
//! seeing the old version until every snapshot that could need it is
//! gone — at which point [`HeapFile::reclaim`] tombstones the bytes and
//! [`HeapFile::settle`] prunes entries the visibility horizon has
//! passed, restoring the metadata-free fast path. Slots are never
//! reused (deletes tombstone, inserts append), so a `RowId` names one
//! row version forever.

use crate::page::Page;
use crate::sync::{Mutex, RwLock};
use crate::{Result, Row, Schema, StorageError, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A stable row address: page number plus slot within the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page index in the heap.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// Cache and access counters, for the benchmark's instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeapStats {
    /// Row fetches served from the decoded-row cache.
    pub cache_hits: u64,
    /// Row fetches that had to decode from the page bytes.
    pub cache_misses: u64,
}

/// Shards in the decoded-row cache. The morsel executor fetches rows
/// from many worker threads at once; sharding the cache lock by row id
/// keeps those fetches from serializing on one mutex.
const CACHE_SHARDS: usize = 16;

/// One shard of the row cache.
type RowCacheShard = Mutex<HashMap<RowId, Arc<Row>>>;
/// One shard of the MBR quad cache, keyed by `(row, column)`.
type MbrCacheShard = Mutex<HashMap<(RowId, usize), Option<[f64; 4]>>>;

/// A heap file: pages of serialized rows plus a decoded-row cache.
///
/// All methods take `&self`; interior locks make the heap shareable across
/// the benchmark driver's worker threads.
#[derive(Debug)]
pub struct HeapFile {
    schema: Arc<Schema>,
    pages: RwLock<Vec<Page>>,
    cache: [RowCacheShard; CACHE_SHARDS],
    /// Per-(row, column) geometry MBR quads, gathered batch-wise by the
    /// vectorized executor. Computing an envelope walks every coordinate
    /// of the geometry, so caching the 32-byte quad here turns the
    /// executor's MBR-column gather into an O(1) copy per row. Sharded
    /// like the row cache; invalidated with it.
    mbr_cache: [MbrCacheShard; CACHE_SHARDS],
    /// Per-row `(born, died)` visibility generations. Absent = visible
    /// at every generation. Kept small by [`HeapFile::settle`]: when
    /// empty, every visibility query takes the metadata-free fast path.
    meta: RwLock<HashMap<RowId, (u64, u64)>>,
    row_count: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// `died` value of a live row: visible to every future generation.
const LIVE: u64 = u64::MAX;

impl HeapFile {
    /// Creates an empty heap for rows of `schema`.
    pub fn new(schema: Arc<Schema>) -> HeapFile {
        HeapFile {
            schema,
            pages: RwLock::new(vec![Page::new()]),
            cache: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            mbr_cache: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            meta: RwLock::new(HashMap::new()),
            row_count: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn cache_shard(&self, id: RowId) -> &RowCacheShard {
        // Consecutive slots land in different shards, so a scan's worker
        // threads spread their lock traffic.
        &self.cache
            [(id.page as usize).wrapping_mul(31).wrapping_add(id.slot as usize) % CACHE_SHARDS]
    }

    fn mbr_shard(&self, id: RowId) -> &MbrCacheShard {
        &self.mbr_cache
            [(id.page as usize).wrapping_mul(31).wrapping_add(id.slot as usize) % CACHE_SHARDS]
    }

    /// Drops any cached MBR quads for `id`. Slots are never reused, so
    /// only deletion (physical removal of the bytes) must invalidate.
    fn invalidate_mbrs(&self, id: RowId) {
        let ncols = self.schema.columns().len();
        let mut shard = self.mbr_shard(id).lock();
        for col in 0..ncols {
            shard.remove(&(id, col));
        }
    }

    /// The row schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.row_count.load(Ordering::Relaxed) as usize
    }

    /// `true` when the heap holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates and appends a row visible at every generation; returns
    /// its id.
    pub fn insert(&self, row: Row) -> Result<RowId> {
        self.insert_at(row, 0)
    }

    /// Validates and appends a row born at generation `born` (`0` =
    /// visible since the beginning); returns its id. The row is
    /// invisible to snapshot readers pinned before `born` and becomes
    /// visible to later snapshots once the owning transaction publishes
    /// that generation.
    pub fn insert_at(&self, row: Row, born: u64) -> Result<RowId> {
        self.schema.check_row(&row)?;
        let bytes = Value::encode_row(&row);
        let mut pages = self.pages.write();
        let last = pages.len() - 1;
        let page_idx = if pages[last].fits(bytes.len()) {
            last
        } else {
            pages.push(Page::new());
            pages.len() - 1
        };
        let slot = pages[page_idx].insert(&bytes);
        let id = RowId { page: page_idx as u32, slot };
        if born > 0 {
            // Publish the visibility entry while still holding the pages
            // lock (lock order: pages before meta): a concurrent snapshot
            // scan takes both and must never observe the bytes without
            // the entry gating them, or an unpublished row would leak
            // into an older snapshot.
            self.meta.write().insert(id, (born, LIVE));
        }
        drop(pages);
        self.row_count.fetch_add(1, Ordering::Relaxed);
        // Slots are never reused, so no stale cache entry can exist for
        // this id; just warm the row cache.
        self.cache_shard(id).lock().insert(id, Arc::new(row));
        Ok(id)
    }

    /// Logically deletes a row at generation `died`: snapshots pinned
    /// before `died` keep seeing it; the bytes stay in place until
    /// [`HeapFile::reclaim`]. Returns whether a live row existed.
    pub fn mark_deleted(&self, id: RowId, died: u64) -> bool {
        let live = {
            let pages = self.pages.read();
            pages.get(id.page as usize).is_some_and(|p| p.get(id.slot).is_ok())
        };
        if !live {
            return false;
        }
        let mut meta = self.meta.write();
        match meta.get_mut(&id) {
            Some((_, d)) if *d != LIVE => return false, // already deleted
            Some((_, d)) => *d = died,
            None => {
                meta.insert(id, (0, died));
            }
        }
        drop(meta);
        self.row_count.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Undoes a [`HeapFile::mark_deleted`] (transaction rollback):
    /// the row becomes live again. Returns whether it was dead.
    pub fn revive(&self, id: RowId) -> bool {
        let mut meta = self.meta.write();
        let revived = match meta.get_mut(&id) {
            Some((born, d)) if *d != LIVE => {
                if *born == 0 {
                    meta.remove(&id);
                } else {
                    *d = LIVE;
                }
                true
            }
            _ => false,
        };
        drop(meta);
        if revived {
            self.row_count.fetch_add(1, Ordering::Relaxed);
        }
        revived
    }

    /// Physically tombstones a logically-deleted row once no snapshot
    /// can see it (vacuum). The live-row count was already adjusted by
    /// [`HeapFile::mark_deleted`].
    pub fn reclaim(&self, id: RowId) {
        let mut pages = self.pages.write();
        if let Some(page) = pages.get_mut(id.page as usize) {
            page.delete(id.slot);
        }
        drop(pages);
        self.meta.write().remove(&id);
        self.cache_shard(id).lock().remove(&id);
        self.invalidate_mbrs(id);
    }

    /// Prunes visibility entries the horizon has passed: a row born at
    /// or before `horizon` and never deleted is visible to every
    /// remaining snapshot, so its entry can revert to the metadata-free
    /// default. Keeps the common all-settled case on the fast path.
    pub fn settle(&self, horizon: u64) {
        let mut meta = self.meta.write();
        if !meta.is_empty() {
            meta.retain(|_, (born, died)| *born > horizon || *died != LIVE);
        }
    }

    /// Visibility entries currently held (tests and diagnostics).
    pub fn meta_len(&self) -> usize {
        self.meta.read().len()
    }

    /// Filters `ids` down to the rows visible at `gen`, preserving
    /// order, under one metadata lock take. Ids are assumed physically
    /// present (index candidates): a probe can only return an id whose
    /// entries have not been vacuumed yet, and vacuum removes a row from
    /// every index before it touches the heap, so a metadata-free id
    /// here is a settled always-visible row. The common settled case
    /// (no metadata at all) is a single is-empty check.
    pub fn retain_visible(&self, ids: &mut Vec<RowId>, gen: u64) {
        let meta = self.meta.read();
        if meta.is_empty() {
            return;
        }
        ids.retain(|id| match meta.get(id) {
            Some((born, died)) => *born <= gen && *died > gen,
            None => true,
        });
    }

    /// Whether `id` is visible to a reader pinned at `gen`.
    pub fn is_visible(&self, id: RowId, gen: u64) -> bool {
        if let Some((born, died)) = self.meta.read().get(&id) {
            return *born <= gen && *died > gen;
        }
        // No entry: visible at every generation, if physically present.
        let pages = self.pages.read();
        pages.get(id.page as usize).is_some_and(|p| p.get(id.slot).is_ok())
    }

    /// Fetches a row, consulting the decoded-row cache first.
    pub fn get(&self, id: RowId) -> Result<Arc<Row>> {
        if let Some(row) = self.cache_shard(id).lock().get(&id).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(row);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.read();
        let page = pages
            .get(id.page as usize)
            .ok_or(StorageError::RowNotFound { page: id.page, slot: id.slot })?;
        let bytes = page
            .get(id.slot)
            .map_err(|_| StorageError::RowNotFound { page: id.page, slot: id.slot })?;
        let row = Arc::new(Value::decode_row(bytes)?);
        drop(pages);
        self.cache_shard(id).lock().insert(id, row.clone());
        Ok(row)
    }

    /// Immediately and physically deletes a row (single-session paths
    /// and vacuum). Returns whether it existed. Snapshot-aware deletes
    /// go through [`HeapFile::mark_deleted`] instead.
    pub fn delete(&self, id: RowId) -> bool {
        let mut pages = self.pages.write();
        let Some(page) = pages.get_mut(id.page as usize) else {
            return false;
        };
        let deleted = page.delete(id.slot);
        drop(pages);
        if deleted {
            self.meta.write().remove(&id);
            self.row_count.fetch_sub(1, Ordering::Relaxed);
            self.cache_shard(id).lock().remove(&id);
            self.invalidate_mbrs(id);
        }
        deleted
    }

    /// All currently-live row ids (latest committed state), in storage
    /// order. Excludes logically-deleted rows awaiting reclaim.
    pub fn row_ids(&self) -> Vec<RowId> {
        let pages = self.pages.read();
        let meta = self.meta.read();
        let mut out = Vec::with_capacity(self.len());
        if meta.is_empty() {
            // Settled heap: every physically-present row is live.
            for (pidx, page) in pages.iter().enumerate() {
                for (slot, _) in page.iter() {
                    out.push(RowId { page: pidx as u32, slot });
                }
            }
        } else {
            for (pidx, page) in pages.iter().enumerate() {
                for (slot, _) in page.iter() {
                    let id = RowId { page: pidx as u32, slot };
                    match meta.get(&id) {
                        Some((_, died)) if *died != LIVE => {}
                        _ => out.push(id),
                    }
                }
            }
        }
        out
    }

    /// Row ids visible to a snapshot pinned at generation `gen`, in
    /// storage order: `born <= gen && died > gen`, plus every
    /// metadata-free row.
    pub fn row_ids_visible(&self, gen: u64) -> Vec<RowId> {
        let pages = self.pages.read();
        let meta = self.meta.read();
        let mut out = Vec::with_capacity(self.len());
        if meta.is_empty() {
            // Settled heap: every physically-present row is visible at
            // every generation.
            for (pidx, page) in pages.iter().enumerate() {
                for (slot, _) in page.iter() {
                    out.push(RowId { page: pidx as u32, slot });
                }
            }
        } else {
            for (pidx, page) in pages.iter().enumerate() {
                for (slot, _) in page.iter() {
                    let id = RowId { page: pidx as u32, slot };
                    match meta.get(&id) {
                        Some((born, died)) if *born > gen || *died <= gen => {}
                        _ => out.push(id),
                    }
                }
            }
        }
        out
    }

    /// Every physically-present row id, including logically-deleted rows
    /// awaiting reclaim. Index builds use this so rows still visible to
    /// an older pinned snapshot remain probe-able through the new index.
    pub fn row_ids_any(&self) -> Vec<RowId> {
        let pages = self.pages.read();
        let mut out = Vec::with_capacity(self.len());
        for (pidx, page) in pages.iter().enumerate() {
            for (slot, _) in page.iter() {
                out.push(RowId { page: pidx as u32, slot });
            }
        }
        out
    }

    /// Full scan over the latest committed state: calls `visit` with
    /// every live row.
    pub fn scan(&self, mut visit: impl FnMut(RowId, &Arc<Row>)) -> Result<()> {
        for id in self.row_ids() {
            let row = self.get(id)?;
            visit(id, &row);
        }
        Ok(())
    }

    /// Full scan over every physically-present row, including
    /// logically-deleted ones (index builds).
    pub fn scan_any(&self, mut visit: impl FnMut(RowId, &Arc<Row>)) -> Result<()> {
        for id in self.row_ids_any() {
            let row = self.get(id)?;
            visit(id, &row);
        }
        Ok(())
    }

    /// Cached MBR quad of `row[col]` (see [`Value::mbr`]); computes and
    /// caches on miss. `None` when the column holds a non-geometry.
    pub fn mbr(&self, id: RowId, col: usize) -> Result<Option<[f64; 4]>> {
        if let Some(m) = self.mbr_shard(id).lock().get(&(id, col)) {
            return Ok(*m);
        }
        let row = self.get(id)?;
        let m = row.get(col).and_then(Value::mbr);
        self.mbr_shard(id).lock().insert((id, col), m);
        Ok(m)
    }

    /// Batch MBR gather: one quad per id, in input order — the
    /// vectorized executor's column-load path.
    pub fn mbrs(&self, col: usize, ids: &[RowId]) -> Result<Vec<Option<[f64; 4]>>> {
        ids.iter().map(|&id| self.mbr(id, col)).collect()
    }

    /// Drops the decoded-row cache — the benchmark's cold-run switch.
    pub fn clear_cache(&self) {
        for shard in &self.cache {
            shard.lock().clear();
        }
        for shard in &self.mbr_cache {
            shard.lock().clear();
        }
    }

    /// Cache counters.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType};

    fn heap() -> HeapFile {
        let schema = Arc::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ])
            .unwrap(),
        );
        HeapFile::new(schema)
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let id = h.insert(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        let row = h.get(id).unwrap();
        assert_eq!(*row, vec![Value::Int(1), Value::Text("a".into())]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn schema_enforced() {
        let h = heap();
        assert!(h.insert(vec![Value::Int(1)]).is_err());
        assert!(h.insert(vec![Value::Text("x".into()), Value::Int(1)]).is_err());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn many_rows_span_pages() {
        let h = heap();
        let long = "x".repeat(1000);
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(h.insert(vec![Value::Int(i), Value::Text(long.clone())]).unwrap());
        }
        // Must have used several pages.
        assert!(ids.iter().map(|id| id.page).max().unwrap() > 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap()[0], Value::Int(i as i64));
        }
        assert_eq!(h.row_ids().len(), 100);
    }

    #[test]
    fn delete_and_scan() {
        let h = heap();
        let a = h.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = h.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert!(h.delete(a));
        assert!(!h.delete(a));
        assert!(h.get(a).is_err());
        assert_eq!(h.len(), 1);
        let mut seen = Vec::new();
        h.scan(|id, row| {
            seen.push((id, row[0].clone()));
        })
        .unwrap();
        assert_eq!(seen, vec![(b, Value::Int(2))]);
    }

    #[test]
    fn cold_cache_counts_misses() {
        let h = heap();
        let id = h.insert(vec![Value::Int(1), Value::Text("warm".into())]).unwrap();
        h.get(id).unwrap(); // hit (insert warms the cache)
        let s1 = h.stats();
        assert_eq!(s1.cache_hits, 1);
        assert_eq!(s1.cache_misses, 0);
        h.clear_cache();
        h.get(id).unwrap(); // miss: decode from page
        h.get(id).unwrap(); // hit again
        let s2 = h.stats();
        assert_eq!(s2.cache_misses, 1);
        assert_eq!(s2.cache_hits, 2);
    }

    #[test]
    fn mbr_cache_round_trip_and_invalidation() {
        let schema = Arc::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("geom", DataType::Geometry),
            ])
            .unwrap(),
        );
        let h = HeapFile::new(schema);
        let g = jackpine_geom::wkt::parse("LINESTRING (0 0, 4 2)").unwrap();
        let id = h.insert(vec![Value::Int(1), Value::Geom(g)]).unwrap();

        assert_eq!(h.mbr(id, 1).unwrap(), Some([0.0, 0.0, 4.0, 2.0]));
        assert_eq!(h.mbr(id, 0).unwrap(), None, "non-geometry column has no MBR");
        // Batch accessor agrees with the scalar one and preserves order.
        assert_eq!(h.mbrs(1, &[id, id]).unwrap(), vec![Some([0.0, 0.0, 4.0, 2.0]); 2]);

        // Delete then insert again (slots are never reused, so the new
        // row gets a fresh id and cannot see the old quad).
        assert!(h.delete(id));
        let g2 = jackpine_geom::wkt::parse("POINT (9 9)").unwrap();
        let id2 = h.insert(vec![Value::Int(2), Value::Geom(g2)]).unwrap();
        assert_eq!(h.mbr(id2, 1).unwrap(), Some([9.0, 9.0, 9.0, 9.0]));

        // clear_cache drops MBR quads too (cold-run switch), and the
        // value is recomputed identically from page bytes.
        h.clear_cache();
        assert_eq!(h.mbr(id2, 1).unwrap(), Some([9.0, 9.0, 9.0, 9.0]));
    }

    #[test]
    fn visibility_generations_gate_readers() {
        let h = heap();
        let a = h.insert(vec![Value::Int(1), Value::Null]).unwrap(); // born 0
        let b = h.insert_at(vec![Value::Int(2), Value::Null], 5).unwrap();
        assert_eq!(h.len(), 2, "len counts latest state, not a snapshot");

        // A snapshot pinned before b's birth sees only a.
        assert_eq!(h.row_ids_visible(4), vec![a]);
        assert!(h.is_visible(a, 4));
        assert!(!h.is_visible(b, 4));
        // At or after the birth generation, both.
        assert_eq!(h.row_ids_visible(5), vec![a, b]);
        assert_eq!(h.row_ids(), vec![a, b]);

        // Logical delete of a at gen 7: old snapshots keep it, newer
        // ones and the latest view lose it; the bytes stay readable.
        assert!(h.mark_deleted(a, 7));
        assert!(!h.mark_deleted(a, 8), "double delete refused");
        assert_eq!(h.len(), 1);
        assert_eq!(h.row_ids_visible(6), vec![a, b]);
        assert_eq!(h.row_ids_visible(7), vec![b]);
        assert_eq!(h.row_ids(), vec![b]);
        assert_eq!(h.row_ids_any(), vec![a, b]);
        assert!(h.get(a).is_ok(), "dead row readable until reclaim");

        // Vacuum: reclaim tombstones the bytes without touching len.
        h.reclaim(a);
        assert_eq!(h.len(), 1);
        assert!(h.get(a).is_err());
        assert_eq!(h.row_ids_any(), vec![b]);

        // Settling past b's birth drops its entry; the heap is back on
        // the metadata-free fast path with identical answers.
        h.settle(5);
        assert_eq!(h.meta_len(), 0);
        assert_eq!(h.row_ids(), vec![b]);
        assert!(h.is_visible(b, 0), "settled rows visible everywhere");
    }

    #[test]
    fn revive_rolls_back_logical_delete() {
        let h = heap();
        let a = h.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = h.insert_at(vec![Value::Int(2), Value::Null], 3).unwrap();
        assert!(h.mark_deleted(a, 9));
        assert!(h.mark_deleted(b, 9));
        assert_eq!(h.len(), 0);

        assert!(h.revive(a));
        assert!(h.revive(b));
        assert!(!h.revive(a), "revive of a live row is a no-op");
        assert_eq!(h.len(), 2);
        assert_eq!(h.row_ids(), vec![a, b]);
        // a reverts to metadata-free; b keeps its birth generation.
        assert!(!h.is_visible(b, 2));
        assert!(h.is_visible(a, 0));
    }

    #[test]
    fn settle_keeps_unreachable_births_and_pending_deletes() {
        let h = heap();
        let a = h.insert_at(vec![Value::Int(1), Value::Null], 4).unwrap();
        let b = h.insert_at(vec![Value::Int(2), Value::Null], 8).unwrap();
        assert!(h.mark_deleted(a, 9));
        h.settle(8);
        // a is logically deleted (must keep its entry until reclaim);
        // b's birth has settled.
        assert_eq!(h.meta_len(), 1);
        assert!(!h.is_visible(a, 10));
        assert!(h.is_visible(b, 0));
    }

    #[test]
    fn oversized_row_gets_own_page() {
        let h = heap();
        let huge = "g".repeat(100_000);
        let id = h.insert(vec![Value::Int(1), Value::Text(huge.clone())]).unwrap();
        h.clear_cache();
        assert_eq!(h.get(id).unwrap()[1].as_str(), Some(huge.as_str()));
    }
}
