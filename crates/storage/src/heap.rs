//! Heap files: unordered collections of rows in slotted pages pinned
//! through the shared [`BufferPool`], with a decoded-row cache that the
//! benchmark's cold mode can evict.
//!
//! # Out-of-core layout
//!
//! Rows live in slotted 8 KiB pages registered as one page file in the
//! heap's buffer pool. Every page access goes through
//! [`BufferPool::pin`]; a bounded pool evicts cold pages (writing dirty
//! ones back to the backing store) and reloads them on demand, so the
//! heap no longer has to fit in memory. All readers copy rows out while
//! holding the pin, so no reference ever outlives a frame.
//!
//! # Row visibility (MVCC)
//!
//! Each row optionally carries a `(born, died)` generation pair in a
//! side table. A reader pinned at generation `g` sees exactly the rows
//! with `born <= g && died > g`; rows without an entry are visible at
//! every generation. Writers stamp new rows with their commit
//! generation ([`HeapFile::insert_at`]) and delete logically
//! ([`HeapFile::mark_deleted`]) so concurrent snapshot readers keep
//! seeing the old version until every snapshot that could need it is
//! gone — at which point [`HeapFile::reclaim`] tombstones the bytes and
//! [`HeapFile::settle`] prunes entries the visibility horizon has
//! passed, restoring the metadata-free fast path. Slots are never
//! reused by normal inserts (deletes tombstone, inserts append), so a
//! `RowId` names one row version forever; only WAL replay and snapshot
//! load ([`HeapFile::place_at`]) write to explicit slots, reproducing
//! ids recorded on disk.
//!
//! # Lock order
//!
//! The append path holds a page **write** guard while publishing the
//! row's visibility entry (meta lock), so the meta lock nests *inside*
//! page pins. Readers must therefore never hold the meta lock while
//! pinning a page: scan paths first collect physically-present ids
//! under individual pins, drop them, and only then consult the meta
//! table — any row whose bytes they observed has its entry published
//! by the time the page guard was released.

use crate::pool::BufferPool;
use crate::sync::{Mutex, RwLock};
use crate::{Result, Row, Schema, StorageError, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A stable row address: page number plus slot within the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page index in the heap.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// Cache and access counters, for the benchmark's instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeapStats {
    /// Row fetches served from the decoded-row cache.
    pub cache_hits: u64,
    /// Row fetches that had to decode from the page bytes.
    pub cache_misses: u64,
}

/// Shards in the decoded-row cache. The morsel executor fetches rows
/// from many worker threads at once; sharding the cache lock by row id
/// keeps those fetches from serializing on one mutex.
const CACHE_SHARDS: usize = 16;

/// One shard of the row cache.
type RowCacheShard = Mutex<HashMap<RowId, Arc<Row>>>;
/// One shard of the MBR quad cache, keyed by `(row, column)`.
type MbrCacheShard = Mutex<HashMap<(RowId, usize), Option<[f64; 4]>>>;

/// A heap file: buffer-pool-resident pages of serialized rows plus a
/// decoded-row cache.
///
/// All methods take `&self`; interior locks make the heap shareable across
/// the benchmark driver's worker threads.
#[derive(Debug)]
pub struct HeapFile {
    schema: Arc<Schema>,
    /// The pool every page access pins through. Shared with the rest of
    /// the engine when constructed via [`HeapFile::with_pool`].
    pool: Arc<BufferPool>,
    /// This heap's page-file id within the pool.
    file: u64,
    /// Pages materialized so far (monotone; scans iterate `0..npages`).
    npages: AtomicU32,
    /// Serializes appends: the page-full check and new-page creation
    /// must be atomic with respect to other appenders.
    append: Mutex<()>,
    cache: [RowCacheShard; CACHE_SHARDS],
    /// Per-(row, column) geometry MBR quads, gathered batch-wise by the
    /// vectorized executor. Computing an envelope walks every coordinate
    /// of the geometry, so caching the 32-byte quad here turns the
    /// executor's MBR-column gather into an O(1) copy per row. Sharded
    /// like the row cache; invalidated with it.
    mbr_cache: [MbrCacheShard; CACHE_SHARDS],
    /// Per-row `(born, died)` visibility generations. Absent = visible
    /// at every generation. Kept small by [`HeapFile::settle`]: when
    /// empty, every visibility query takes the metadata-free fast path.
    meta: RwLock<HashMap<RowId, (u64, u64)>>,
    row_count: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Reclaim begin/end counters. Lock-free readers capture
    /// [`HeapFile::reclaim_epoch`] before collecting row ids, take the
    /// cheap metadata-only classification pass, and re-check both
    /// counters afterwards: equality proves no reclaim overlapped the
    /// read, so no id can have lost its metadata entry (and thereby
    /// misread as settled-visible) mid-pass. Vacuum is rare, so the
    /// expensive re-verification almost never runs.
    reclaims_started: AtomicU64,
    reclaims_finished: AtomicU64,
}

/// `died` value of a live row: visible to every future generation.
const LIVE: u64 = u64::MAX;

impl HeapFile {
    /// Creates an empty heap for rows of `schema`, backed by a private
    /// unbounded pool (tests and standalone use; engines share one pool
    /// via [`HeapFile::with_pool`]).
    pub fn new(schema: Arc<Schema>) -> HeapFile {
        HeapFile::with_pool(schema, Arc::new(BufferPool::new()))
    }

    /// Creates an empty heap whose pages live in `pool`.
    pub fn with_pool(schema: Arc<Schema>, pool: Arc<BufferPool>) -> HeapFile {
        let file = pool.register("heap");
        HeapFile {
            schema,
            pool,
            file,
            npages: AtomicU32::new(1),
            append: Mutex::new(()),
            cache: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            mbr_cache: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            meta: RwLock::new(HashMap::new()),
            row_count: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reclaims_started: AtomicU64::new(0),
            reclaims_finished: AtomicU64::new(0),
        }
    }

    /// The buffer pool this heap pins pages through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Pages materialized so far.
    pub fn page_count(&self) -> u32 {
        self.npages.load(Ordering::Relaxed)
    }

    fn cache_shard(&self, id: RowId) -> &RowCacheShard {
        // Consecutive slots land in different shards, so a scan's worker
        // threads spread their lock traffic.
        &self.cache
            [(id.page as usize).wrapping_mul(31).wrapping_add(id.slot as usize) % CACHE_SHARDS]
    }

    fn mbr_shard(&self, id: RowId) -> &MbrCacheShard {
        &self.mbr_cache
            [(id.page as usize).wrapping_mul(31).wrapping_add(id.slot as usize) % CACHE_SHARDS]
    }

    /// Drops any cached MBR quads for `id`. Slots are never reused by
    /// appends, so only deletion and replay-time placement must
    /// invalidate.
    fn invalidate_mbrs(&self, id: RowId) {
        let ncols = self.schema.columns().len();
        let mut shard = self.mbr_shard(id).lock();
        for col in 0..ncols {
            shard.remove(&(id, col));
        }
    }

    /// The row schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.row_count.load(Ordering::Relaxed) as usize
    }

    /// `true` when the heap holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates and appends a row visible at every generation; returns
    /// its id.
    pub fn insert(&self, row: Row) -> Result<RowId> {
        self.insert_at(row, 0)
    }

    /// Validates and appends a row born at generation `born` (`0` =
    /// visible since the beginning); returns its id. The row is
    /// invisible to snapshot readers pinned before `born` and becomes
    /// visible to later snapshots once the owning transaction publishes
    /// that generation.
    pub fn insert_at(&self, row: Row, born: u64) -> Result<RowId> {
        self.schema.check_row(&row)?;
        let bytes = Value::encode_row(&row);
        let _append = self.append.lock();
        let last = self.npages.load(Ordering::Relaxed).saturating_sub(1);
        let mut target = last;
        let mut pin = self.pool.pin(self.file, target);
        if !pin.read().fits(bytes.len()) {
            drop(pin);
            target = last + 1;
            self.npages.store(target + 1, Ordering::Relaxed);
            pin = self.pool.pin(self.file, target);
        }
        let id = {
            let mut guard = pin.write();
            let slot = guard.insert(&bytes);
            let id = RowId { page: target, slot };
            if born > 0 {
                // Publish the visibility entry while still holding the
                // page write guard (lock order: pins before meta): a
                // concurrent scan can only observe the new bytes after
                // this guard drops, by which time the entry gating them
                // is in place — an unpublished row can never leak into
                // an older snapshot.
                self.meta.write().insert(id, (born, LIVE));
            }
            id
        };
        drop(pin);
        self.row_count.fetch_add(1, Ordering::Relaxed);
        // Slots are never reused by appends, so no stale cache entry can
        // exist for this id; just warm the row cache.
        self.cache_shard(id).lock().insert(id, Arc::new(row));
        Ok(id)
    }

    /// Writes a row into a *specific* slot — WAL replay and snapshot
    /// load, which must reproduce `RowId`s recorded on disk exactly.
    /// Idempotent: re-placing the identical bytes at the same id is a
    /// no-op, so a crash between replay and checkpoint replays cleanly.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] when the slot holds a *different* live
    /// row; schema errors as for [`HeapFile::insert`].
    pub fn place_at(&self, row: Row, id: RowId, born: u64) -> Result<()> {
        self.schema.check_row(&row)?;
        let bytes = Value::encode_row(&row);
        let _append = self.append.lock();
        if self.npages.load(Ordering::Relaxed) <= id.page {
            self.npages.store(id.page + 1, Ordering::Relaxed);
        }
        let pin = self.pool.pin(self.file, id.page);
        {
            let mut guard = pin.write();
            if let Ok(existing) = guard.get(id.slot) {
                if existing == bytes.as_slice() {
                    return Ok(()); // already applied
                }
                return Err(StorageError::Corrupt(format!(
                    "place_at: slot {}/{} holds a different row",
                    id.page, id.slot
                )));
            }
            guard.place(id.slot, &bytes)?;
            if born > 0 {
                self.meta.write().insert(id, (born, LIVE));
            }
        }
        drop(pin);
        self.row_count.fetch_add(1, Ordering::Relaxed);
        self.invalidate_mbrs(id);
        self.cache_shard(id).lock().insert(id, Arc::new(row));
        Ok(())
    }

    /// Logically deletes a row at generation `died`: snapshots pinned
    /// before `died` keep seeing it; the bytes stay in place until
    /// [`HeapFile::reclaim`]. Returns whether a live row existed.
    pub fn mark_deleted(&self, id: RowId, died: u64) -> bool {
        if id.page >= self.npages.load(Ordering::Relaxed) {
            return false;
        }
        let live = {
            let pin = self.pool.pin(self.file, id.page);
            let present = pin.read().get(id.slot).is_ok();
            present
        };
        if !live {
            return false;
        }
        let mut meta = self.meta.write();
        match meta.get_mut(&id) {
            Some((_, d)) if *d != LIVE => return false, // already deleted
            Some((_, d)) => *d = died,
            None => {
                meta.insert(id, (0, died));
            }
        }
        drop(meta);
        self.row_count.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Undoes a [`HeapFile::mark_deleted`] (transaction rollback):
    /// the row becomes live again. Returns whether it was dead.
    pub fn revive(&self, id: RowId) -> bool {
        let mut meta = self.meta.write();
        let revived = match meta.get_mut(&id) {
            Some((born, d)) if *d != LIVE => {
                if *born == 0 {
                    meta.remove(&id);
                } else {
                    *d = LIVE;
                }
                true
            }
            _ => false,
        };
        drop(meta);
        if revived {
            self.row_count.fetch_add(1, Ordering::Relaxed);
        }
        revived
    }

    /// Physically tombstones a logically-deleted row once no snapshot
    /// can see it (vacuum). The live-row count was already adjusted by
    /// [`HeapFile::mark_deleted`].
    ///
    /// Step order is a contract lock-free readers rely on: the epoch
    /// counters bracket everything (see the field note), the cache
    /// entry goes first (so a cache hit always implies the slot is
    /// still present), the slot second, and the visibility entry last
    /// (so a metadata-free id whose reclaim has finished is guaranteed
    /// to have lost its slot — see [`HeapFile::retain_visible`]).
    pub fn reclaim(&self, id: RowId) {
        self.reclaims_started.fetch_add(1, Ordering::SeqCst);
        self.cache_shard(id).lock().remove(&id);
        if id.page < self.npages.load(Ordering::Relaxed) {
            let pin = self.pool.pin(self.file, id.page);
            pin.write().delete(id.slot);
        }
        self.meta.write().remove(&id);
        self.invalidate_mbrs(id);
        self.reclaims_finished.fetch_add(1, Ordering::SeqCst);
    }

    /// The reclaim counter to capture *before* collecting row ids from
    /// an index probe or page sweep; pass it to
    /// [`HeapFile::retain_visible`] so a vacuum overlapping the
    /// collection is detected rather than misread.
    pub fn reclaim_epoch(&self) -> u64 {
        self.reclaims_started.load(Ordering::SeqCst)
    }

    /// Whether any [`HeapFile::reclaim`] began after `epoch` was
    /// captured, or is still in flight now. When this is false, no
    /// metadata entry can have been dropped by a reclaim since the
    /// capture, so a metadata-free id observed since then is a settled
    /// always-visible row — and a row fully reclaimed *before* the
    /// capture was removed from every index first, so it cannot have
    /// been collected at all.
    fn reclaim_overlapped(&self, epoch: u64) -> bool {
        let started = self.reclaims_started.load(Ordering::SeqCst);
        started != epoch || self.reclaims_finished.load(Ordering::SeqCst) != started
    }

    /// Prunes visibility entries the horizon has passed: a row born at
    /// or before `horizon` and never deleted is visible to every
    /// remaining snapshot, so its entry can revert to the metadata-free
    /// default. Keeps the common all-settled case on the fast path.
    pub fn settle(&self, horizon: u64) {
        let mut meta = self.meta.write();
        if !meta.is_empty() {
            meta.retain(|_, (born, died)| *born > horizon || *died != LIVE);
        }
    }

    /// Visibility entries currently held (tests and diagnostics).
    pub fn meta_len(&self) -> usize {
        self.meta.read().len()
    }

    /// Filters `ids` down to the rows visible at `gen`, preserving
    /// order, under one metadata lock take. `epoch` must have been
    /// captured via [`HeapFile::reclaim_epoch`] *before* the ids were
    /// collected (index probe). A metadata-free id is normally a
    /// settled always-visible row — but a vacuum racing the probe can
    /// reclaim a dead row after the probe captured its id, dropping
    /// the entry that recorded its death. The epoch re-check detects
    /// exactly that overlap; only then does the rare second pass
    /// verify survivors by physical presence ([`HeapFile::reclaim`]
    /// drops a row's slot before its entry, so a reclaimed row that
    /// lost its entry has verifiably lost its slot too). The common
    /// settled case stays one is-empty check plus two atomic loads.
    pub fn retain_visible(&self, ids: &mut Vec<RowId>, gen: u64, epoch: u64) {
        {
            let meta = self.meta.read();
            if !meta.is_empty() {
                ids.retain(|id| match meta.get(id) {
                    Some((born, died)) => *born <= gen && *died > gen,
                    None => true,
                });
            }
        }
        if self.reclaim_overlapped(epoch) {
            // The presence checks run with no metadata lock held: the
            // metadata lock is never held across a page pin (see the
            // lock-order note above). Visible survivors are present by
            // definition (a pinned reader's rows cannot be reclaimed),
            // so this only ever drops concurrently-reclaimed ids.
            ids.retain(|id| self.slot_present(*id));
        }
    }

    /// Whether `id` physically holds row bytes right now: decoded-row
    /// cache hit, or a live slot on its page. Readers use this to
    /// separate settled rows from concurrently-reclaimed ones.
    fn slot_present(&self, id: RowId) -> bool {
        if self.cache_shard(id).lock().get(&id).is_some() {
            return true;
        }
        if id.page >= self.npages.load(Ordering::Relaxed) {
            return false;
        }
        let pin = self.pool.pin(self.file, id.page);
        let present = pin.read().get(id.slot).is_ok();
        present
    }

    /// Whether `id` is visible to a reader pinned at `gen`.
    pub fn is_visible(&self, id: RowId, gen: u64) -> bool {
        // Copy the entry out before touching pages: the meta lock must
        // never be held across a pin (see the lock-order note above).
        let entry = self.meta.read().get(&id).copied();
        if let Some((born, died)) = entry {
            return born <= gen && died > gen;
        }
        // No entry: visible at every generation, if physically present.
        self.slot_present(id)
    }

    /// Fetches a row, consulting the decoded-row cache first.
    pub fn get(&self, id: RowId) -> Result<Arc<Row>> {
        if let Some(row) = self.cache_shard(id).lock().get(&id).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(row);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if id.page >= self.npages.load(Ordering::Relaxed) {
            return Err(StorageError::RowNotFound { page: id.page, slot: id.slot });
        }
        let row = {
            let pin = self.pool.pin(self.file, id.page);
            let guard = pin.read();
            let bytes = guard
                .get(id.slot)
                .map_err(|_| StorageError::RowNotFound { page: id.page, slot: id.slot })?;
            // Decode while pinned, then copy out: nothing we hand to the
            // caller can dangle into an evicted frame.
            Arc::new(Value::decode_row(bytes)?)
        };
        self.cache_shard(id).lock().insert(id, row.clone());
        Ok(row)
    }

    /// Immediately and physically deletes a row (single-session paths
    /// and vacuum). Returns whether it existed. Snapshot-aware deletes
    /// go through [`HeapFile::mark_deleted`] instead.
    pub fn delete(&self, id: RowId) -> bool {
        if id.page >= self.npages.load(Ordering::Relaxed) {
            return false;
        }
        // Bracketed by the same epoch counters as reclaim: rollback
        // paths physically remove rows while lock-free readers may be
        // mid-sweep, and the epoch check is what keeps them honest.
        self.reclaims_started.fetch_add(1, Ordering::SeqCst);
        self.cache_shard(id).lock().remove(&id);
        let deleted = {
            let pin = self.pool.pin(self.file, id.page);
            let removed = pin.write().delete(id.slot);
            removed
        };
        if deleted {
            self.meta.write().remove(&id);
            self.row_count.fetch_sub(1, Ordering::Relaxed);
            self.invalidate_mbrs(id);
        }
        self.reclaims_finished.fetch_add(1, Ordering::SeqCst);
        deleted
    }

    /// Every physically-present row id, in storage order, collected
    /// under per-page pins with no other lock held.
    fn present_ids(&self) -> Vec<RowId> {
        let npages = self.npages.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(self.len());
        for p in 0..npages {
            let pin = self.pool.pin(self.file, p);
            let guard = pin.read();
            for (slot, _) in guard.iter() {
                out.push(RowId { page: p, slot });
            }
        }
        out
    }

    /// All currently-live row ids (latest committed state), in storage
    /// order. Excludes logically-deleted rows awaiting reclaim.
    pub fn row_ids(&self) -> Vec<RowId> {
        // Collect physical ids first, then filter under one meta read:
        // the meta lock is never held across a pin. Any row *written*
        // mid-sweep whose bytes we observed has its entry published
        // (the writer publishes before releasing the page write
        // guard), so the later meta read cannot miss it. A row
        // *reclaimed* mid-sweep would be misread — its entry is gone
        // by the time we filter — so the sweep retries when the epoch
        // check reports an overlapping reclaim (rare: vacuum only).
        loop {
            let epoch = self.reclaim_epoch();
            let present = self.present_ids();
            let meta = self.meta.read();
            let out = if meta.is_empty() {
                present // settled heap: every present row is live
            } else {
                present
                    .into_iter()
                    .filter(|id| !matches!(meta.get(id), Some((_, died)) if *died != LIVE))
                    .collect()
            };
            drop(meta);
            if !self.reclaim_overlapped(epoch) {
                return out;
            }
        }
    }

    /// Row ids visible to a snapshot pinned at generation `gen`, in
    /// storage order: `born <= gen && died > gen`, plus every
    /// metadata-free row. Retries on an overlapping reclaim, exactly
    /// like [`HeapFile::row_ids`].
    pub fn row_ids_visible(&self, gen: u64) -> Vec<RowId> {
        loop {
            let epoch = self.reclaim_epoch();
            let present = self.present_ids();
            let meta = self.meta.read();
            let out = if meta.is_empty() {
                present // settled heap: visible at every generation
            } else {
                present
                    .into_iter()
                    .filter(|id| {
                        !matches!(meta.get(id), Some((born, died)) if *born > gen || *died <= gen)
                    })
                    .collect()
            };
            drop(meta);
            if !self.reclaim_overlapped(epoch) {
                return out;
            }
        }
    }

    /// Every physically-present row id, including logically-deleted rows
    /// awaiting reclaim. Index builds use this so rows still visible to
    /// an older pinned snapshot remain probe-able through the new index.
    pub fn row_ids_any(&self) -> Vec<RowId> {
        self.present_ids()
    }

    /// Full scan over the latest committed state: calls `visit` with
    /// every live row.
    pub fn scan(&self, mut visit: impl FnMut(RowId, &Arc<Row>)) -> Result<()> {
        for id in self.row_ids() {
            let row = self.get(id)?;
            visit(id, &row);
        }
        Ok(())
    }

    /// Full scan over every physically-present row, including
    /// logically-deleted ones (index builds).
    pub fn scan_any(&self, mut visit: impl FnMut(RowId, &Arc<Row>)) -> Result<()> {
        for id in self.row_ids_any() {
            let row = self.get(id)?;
            visit(id, &row);
        }
        Ok(())
    }

    /// Cached MBR quad of `row[col]` (see [`Value::mbr`]); computes and
    /// caches on miss. `None` when the column holds a non-geometry.
    pub fn mbr(&self, id: RowId, col: usize) -> Result<Option<[f64; 4]>> {
        if let Some(m) = self.mbr_shard(id).lock().get(&(id, col)) {
            return Ok(*m);
        }
        let row = self.get(id)?;
        let m = row.get(col).and_then(Value::mbr);
        self.mbr_shard(id).lock().insert((id, col), m);
        Ok(m)
    }

    /// Batch MBR gather: one quad per id, in input order — the
    /// vectorized executor's column-load path.
    pub fn mbrs(&self, col: usize, ids: &[RowId]) -> Result<Vec<Option<[f64; 4]>>> {
        ids.iter().map(|&id| self.mbr(id, col)).collect()
    }

    /// Drops the decoded-row cache — the benchmark's cold-run switch
    /// for decoded state. (The buffer pool itself is cleared separately
    /// via [`BufferPool::clear`] on the shared pool.)
    pub fn clear_cache(&self) {
        for shard in &self.cache {
            shard.lock().clear();
        }
        for shard in &self.mbr_cache {
            shard.lock().clear();
        }
    }

    /// Cache counters.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType};

    fn heap() -> HeapFile {
        let schema = Arc::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ])
            .unwrap(),
        );
        HeapFile::new(schema)
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let id = h.insert(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        let row = h.get(id).unwrap();
        assert_eq!(*row, vec![Value::Int(1), Value::Text("a".into())]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn schema_enforced() {
        let h = heap();
        assert!(h.insert(vec![Value::Int(1)]).is_err());
        assert!(h.insert(vec![Value::Text("x".into()), Value::Int(1)]).is_err());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn many_rows_span_pages() {
        let h = heap();
        let long = "x".repeat(1000);
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(h.insert(vec![Value::Int(i), Value::Text(long.clone())]).unwrap());
        }
        // Must have used several pages.
        assert!(ids.iter().map(|id| id.page).max().unwrap() > 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap()[0], Value::Int(i as i64));
        }
        assert_eq!(h.row_ids().len(), 100);
    }

    #[test]
    fn tiny_pool_evicts_and_reloads_identically() {
        let schema = Arc::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ])
            .unwrap(),
        );
        let pool = Arc::new(BufferPool::new());
        pool.set_capacity_bytes(2 * crate::page::PAGE_SIZE);
        let h = HeapFile::with_pool(schema, pool.clone());
        let long = "y".repeat(1000);
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(h.insert(vec![Value::Int(i), Value::Text(long.clone())]).unwrap());
        }
        assert!(pool.stats().evictions > 0, "2-frame pool must evict");
        h.clear_cache(); // force page reads, not decoded-cache hits
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap()[0], Value::Int(i as i64));
        }
        assert_eq!(h.row_ids().len(), 100);
        // And a full cold switch (pool cleared too) still reads back.
        h.clear_cache();
        pool.clear();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap()[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn place_at_reproduces_recorded_row_ids() {
        let h = heap();
        let a = RowId { page: 0, slot: 0 };
        let b = RowId { page: 0, slot: 2 };
        let c = RowId { page: 1, slot: 1 };
        h.place_at(vec![Value::Int(1), Value::Null], a, 0).unwrap();
        h.place_at(vec![Value::Int(2), Value::Null], b, 0).unwrap();
        h.place_at(vec![Value::Int(3), Value::Null], c, 0).unwrap();
        assert_eq!(h.row_ids(), vec![a, b, c]);
        assert_eq!(h.get(b).unwrap()[0], Value::Int(2));
        assert_eq!(h.len(), 3);
        // Idempotent for identical bytes, an error for different ones.
        h.place_at(vec![Value::Int(2), Value::Null], b, 0).unwrap();
        assert_eq!(h.len(), 3, "re-place of identical row is a no-op");
        assert!(h.place_at(vec![Value::Int(9), Value::Null], b, 0).is_err());
    }

    #[test]
    fn delete_and_scan() {
        let h = heap();
        let a = h.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = h.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert!(h.delete(a));
        assert!(!h.delete(a));
        assert!(h.get(a).is_err());
        assert_eq!(h.len(), 1);
        let mut seen = Vec::new();
        h.scan(|id, row| {
            seen.push((id, row[0].clone()));
        })
        .unwrap();
        assert_eq!(seen, vec![(b, Value::Int(2))]);
    }

    #[test]
    fn cold_cache_counts_misses() {
        let h = heap();
        let id = h.insert(vec![Value::Int(1), Value::Text("warm".into())]).unwrap();
        h.get(id).unwrap(); // hit (insert warms the cache)
        let s1 = h.stats();
        assert_eq!(s1.cache_hits, 1);
        assert_eq!(s1.cache_misses, 0);
        h.clear_cache();
        h.get(id).unwrap(); // miss: decode from page
        h.get(id).unwrap(); // hit again
        let s2 = h.stats();
        assert_eq!(s2.cache_misses, 1);
        assert_eq!(s2.cache_hits, 2);
    }

    #[test]
    fn mbr_cache_round_trip_and_invalidation() {
        let schema = Arc::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("geom", DataType::Geometry),
            ])
            .unwrap(),
        );
        let h = HeapFile::new(schema);
        let g = jackpine_geom::wkt::parse("LINESTRING (0 0, 4 2)").unwrap();
        let id = h.insert(vec![Value::Int(1), Value::Geom(g)]).unwrap();

        assert_eq!(h.mbr(id, 1).unwrap(), Some([0.0, 0.0, 4.0, 2.0]));
        assert_eq!(h.mbr(id, 0).unwrap(), None, "non-geometry column has no MBR");
        // Batch accessor agrees with the scalar one and preserves order.
        assert_eq!(h.mbrs(1, &[id, id]).unwrap(), vec![Some([0.0, 0.0, 4.0, 2.0]); 2]);

        // Delete then insert again (slots are never reused, so the new
        // row gets a fresh id and cannot see the old quad).
        assert!(h.delete(id));
        let g2 = jackpine_geom::wkt::parse("POINT (9 9)").unwrap();
        let id2 = h.insert(vec![Value::Int(2), Value::Geom(g2)]).unwrap();
        assert_eq!(h.mbr(id2, 1).unwrap(), Some([9.0, 9.0, 9.0, 9.0]));

        // clear_cache drops MBR quads too (cold-run switch), and the
        // value is recomputed identically from page bytes.
        h.clear_cache();
        assert_eq!(h.mbr(id2, 1).unwrap(), Some([9.0, 9.0, 9.0, 9.0]));
    }

    #[test]
    fn visibility_generations_gate_readers() {
        let h = heap();
        let a = h.insert(vec![Value::Int(1), Value::Null]).unwrap(); // born 0
        let b = h.insert_at(vec![Value::Int(2), Value::Null], 5).unwrap();
        assert_eq!(h.len(), 2, "len counts latest state, not a snapshot");

        // A snapshot pinned before b's birth sees only a.
        assert_eq!(h.row_ids_visible(4), vec![a]);
        assert!(h.is_visible(a, 4));
        assert!(!h.is_visible(b, 4));
        // At or after the birth generation, both.
        assert_eq!(h.row_ids_visible(5), vec![a, b]);
        assert_eq!(h.row_ids(), vec![a, b]);

        // Logical delete of a at gen 7: old snapshots keep it, newer
        // ones and the latest view lose it; the bytes stay readable.
        assert!(h.mark_deleted(a, 7));
        assert!(!h.mark_deleted(a, 8), "double delete refused");
        assert_eq!(h.len(), 1);
        assert_eq!(h.row_ids_visible(6), vec![a, b]);
        assert_eq!(h.row_ids_visible(7), vec![b]);
        assert_eq!(h.row_ids(), vec![b]);
        assert_eq!(h.row_ids_any(), vec![a, b]);
        assert!(h.get(a).is_ok(), "dead row readable until reclaim");

        // Vacuum: reclaim tombstones the bytes without touching len.
        h.reclaim(a);
        assert_eq!(h.len(), 1);
        assert!(h.get(a).is_err());
        assert_eq!(h.row_ids_any(), vec![b]);

        // Settling past b's birth drops its entry; the heap is back on
        // the metadata-free fast path with identical answers.
        h.settle(5);
        assert_eq!(h.meta_len(), 0);
        assert_eq!(h.row_ids(), vec![b]);
        assert!(h.is_visible(b, 0), "settled rows visible everywhere");
    }

    #[test]
    fn revive_rolls_back_logical_delete() {
        let h = heap();
        let a = h.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = h.insert_at(vec![Value::Int(2), Value::Null], 3).unwrap();
        assert!(h.mark_deleted(a, 9));
        assert!(h.mark_deleted(b, 9));
        assert_eq!(h.len(), 0);

        assert!(h.revive(a));
        assert!(h.revive(b));
        assert!(!h.revive(a), "revive of a live row is a no-op");
        assert_eq!(h.len(), 2);
        assert_eq!(h.row_ids(), vec![a, b]);
        // a reverts to metadata-free; b keeps its birth generation.
        assert!(!h.is_visible(b, 2));
        assert!(h.is_visible(a, 0));
    }

    #[test]
    fn settle_keeps_unreachable_births_and_pending_deletes() {
        let h = heap();
        let a = h.insert_at(vec![Value::Int(1), Value::Null], 4).unwrap();
        let b = h.insert_at(vec![Value::Int(2), Value::Null], 8).unwrap();
        assert!(h.mark_deleted(a, 9));
        h.settle(8);
        // a is logically deleted (must keep its entry until reclaim);
        // b's birth has settled.
        assert_eq!(h.meta_len(), 1);
        assert!(!h.is_visible(a, 10));
        assert!(h.is_visible(b, 0));
    }

    #[test]
    fn oversized_row_gets_own_page() {
        let h = heap();
        let huge = "g".repeat(100_000);
        let id = h.insert(vec![Value::Int(1), Value::Text(huge.clone())]).unwrap();
        h.clear_cache();
        assert_eq!(h.get(id).unwrap()[1].as_str(), Some(huge.as_str()));
    }
}
