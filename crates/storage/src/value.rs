//! Typed SQL values and their page codec.

use crate::{Result, StorageError};
use jackpine_geom::codec::{PutBytes, TakeBytes};
use jackpine_geom::{wkb, Geometry};
use std::fmt;

/// A single SQL value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Spatial value (stored as WKB on pages).
    Geom(Geometry),
}

/// A tuple of values, ordered per the table schema.
pub type Row = Vec<Value>;

impl Value {
    /// `true` for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: Int and Float coerce to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (no float coercion).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Geometry view.
    pub fn as_geom(&self) -> Option<&Geometry> {
        match self {
            Value::Geom(g) => Some(g),
            _ => None,
        }
    }

    /// The geometry's MBR as a packed `[min_x, min_y, max_x, max_y]`
    /// quad, the layout the vectorized executor's columnar prefilter
    /// consumes. Empty geometries encode as all-NaN so the positive-form
    /// intersection test (`a.min <= b.max && ...`) rejects them, exactly
    /// like `Envelope::intersects` on an empty envelope. `None` for
    /// non-geometry values.
    pub fn mbr(&self) -> Option<[f64; 4]> {
        let g = self.as_geom()?;
        let e = g.envelope();
        if e.is_empty() {
            Some([f64::NAN; 4])
        } else {
            Some([e.min_x, e.min_y, e.max_x, e.max_y])
        }
    }

    /// Serializes the value into `buf` (tag byte + payload).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.put_u8(0),
            Value::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(2);
                buf.put_f64_le(*f);
            }
            Value::Text(s) => {
                buf.put_u8(3);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Geom(g) => {
                buf.put_u8(4);
                let bytes = wkb::encode(g);
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(&bytes);
            }
        }
    }

    /// Decodes one value from the front of `data`, advancing it.
    pub fn decode(data: &mut &[u8]) -> Result<Value> {
        if data.is_empty() {
            return Err(StorageError::Corrupt("empty value payload".into()));
        }
        let tag = data.get_u8();
        match tag {
            0 => Ok(Value::Null),
            1 => {
                if data.remaining() < 8 {
                    return Err(StorageError::Corrupt("truncated int".into()));
                }
                Ok(Value::Int(data.get_i64_le()))
            }
            2 => {
                if data.remaining() < 8 {
                    return Err(StorageError::Corrupt("truncated float".into()));
                }
                Ok(Value::Float(data.get_f64_le()))
            }
            3 => {
                let len = get_len(data)?;
                let s = std::str::from_utf8(&data[..len])
                    .map_err(|_| StorageError::Corrupt("invalid UTF-8".into()))?
                    .to_string();
                data.advance(len);
                Ok(Value::Text(s))
            }
            4 => {
                let len = get_len(data)?;
                let g = wkb::decode(&data[..len])?;
                data.advance(len);
                Ok(Value::Geom(g))
            }
            t => Err(StorageError::Corrupt(format!("unknown value tag {t}"))),
        }
    }

    /// Serializes a whole row.
    pub fn encode_row(row: &[Value]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.put_u16_le(row.len() as u16);
        for v in row {
            v.encode(&mut buf);
        }
        buf
    }

    /// Decodes a whole row.
    pub fn decode_row(mut data: &[u8]) -> Result<Row> {
        if data.remaining() < 2 {
            return Err(StorageError::Corrupt("truncated row header".into()));
        }
        let n = data.get_u16_le() as usize;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(Value::decode(&mut data)?);
        }
        Ok(row)
    }
}

fn get_len(data: &mut &[u8]) -> Result<usize> {
    if data.remaining() < 4 {
        return Err(StorageError::Corrupt("truncated length".into()));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(StorageError::Corrupt("length exceeds payload".into()));
    }
    Ok(len)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Geom(g) => write!(f, "{}", jackpine_geom::wkt::write(g)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::wkt;

    #[test]
    fn roundtrip_scalars() {
        let row =
            vec![Value::Null, Value::Int(-42), Value::Float(3.25), Value::Text("Oak St".into())];
        let bytes = Value::encode_row(&row);
        assert_eq!(Value::decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn roundtrip_geometry() {
        let g = wkt::parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        let row = vec![Value::Int(1), Value::Geom(g.clone())];
        let bytes = Value::encode_row(&row);
        let back = Value::decode_row(&bytes).unwrap();
        assert_eq!(back[1].as_geom(), Some(&g));
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(Value::decode_row(&[]).is_err());
        assert!(Value::decode_row(&[2, 0]).is_err()); // claims 2 values, none present
        let mut bad = Value::encode_row(&[Value::Text("hello".into())]);
        bad.truncate(bad.len() - 2);
        assert!(Value::decode_row(&bad).is_err());
        // Unknown tag.
        assert!(Value::decode_row(&[1, 0, 99]).is_err());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(7.0).as_i64(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Text("a".into()).as_str(), Some("a"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        let g = wkt::parse("POINT (1 2)").unwrap();
        assert_eq!(Value::Geom(g).to_string(), "POINT (1 2)");
    }
}
