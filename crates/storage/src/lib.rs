//! # jackpine-storage
//!
//! Row storage for the Jackpine spatial engines: typed values with a
//! compact binary codec ([`Value`]), table schemas ([`Schema`]), slotted
//! pages ([`page::Page`]), heap files ([`HeapFile`]) and a catalog
//! ([`Catalog`]).
//!
//! ## Cold vs. warm runs
//!
//! Rows are stored *serialized* in pages (geometries as WKB). Each heap
//! keeps a decoded-row cache; a cache miss pays the full decode cost —
//! the in-process analogue of a buffer-pool miss plus detoasting in the
//! systems Jackpine originally measured. The benchmark driver's cold mode
//! calls [`HeapFile::clear_cache`] between queries, so cold numbers
//! genuinely include that work rather than a simulated sleep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod error;
mod heap;
pub mod page;
pub mod pool;
mod schema;
pub mod sync;
mod value;

pub use catalog::{Catalog, Table, TableId};
pub use error::StorageError;
pub use heap::{HeapFile, HeapStats, RowId};
pub use page::PAGE_SIZE;
pub use pool::{BufferPool, PageStore, PinnedPage, PoolStats, ReplacementPolicy};
pub use schema::{ColumnDef, DataType, Schema};
pub use value::{Row, Value};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
