//! Table schemas and type checking.

use crate::{Result, StorageError, Value};

/// SQL column types supported by the engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Spatial geometry.
    Geometry,
}

impl DataType {
    /// SQL spelling of the type.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Geometry => "GEOMETRY",
        }
    }
}

/// A column definition.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnDef {
    /// Column name (matched case-insensitively).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: DataType) -> ColumnDef {
        ColumnDef { name: name.to_string(), ty }
    }
}

/// An ordered list of columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema; column names must be distinct (case-insensitive).
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name.eq_ignore_ascii_case(&b.name) {
                    return Err(StorageError::SchemaMismatch(format!(
                        "duplicate column name '{}'",
                        a.name
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// The column list.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column (case-insensitive).
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StorageError::NoSuchColumn(name.to_string()))
    }

    /// Validates a row against the schema (arity and value types; NULL is
    /// accepted for any column).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        for (v, col) in row.iter().zip(&self.columns) {
            let ok = match (v, col.ty) {
                (Value::Null, _) => true,
                (Value::Int(_), DataType::Int) => true,
                (Value::Float(_), DataType::Float) => true,
                (Value::Int(_), DataType::Float) => true, // widening accepted
                (Value::Text(_), DataType::Text) => true,
                (Value::Geom(_), DataType::Geometry) => true,
                _ => false,
            };
            if !ok {
                return Err(StorageError::SchemaMismatch(format!(
                    "value {v:?} does not fit column '{}' of type {}",
                    col.name,
                    col.ty.sql_name()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("geom", DataType::Geometry),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("ID").unwrap(), 0);
        assert_eq!(s.column_index("Geom").unwrap(), 2);
        assert!(s.column_index("missing").is_err());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("A", DataType::Text),
        ])
        .is_err());
    }

    #[test]
    fn row_checking() {
        let s = schema();
        let g = jackpine_geom::wkt::parse("POINT (1 2)").unwrap();
        assert!(s.check_row(&[Value::Int(1), Value::Text("x".into()), Value::Geom(g)]).is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Null, Value::Null]).is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Text("x".into())]).is_err()); // arity
        assert!(s
            .check_row(&[Value::Text("no".into()), Value::Text("x".into()), Value::Null])
            .is_err()); // type
    }

    #[test]
    fn int_widens_to_float() {
        let s = Schema::new(vec![ColumnDef::new("v", DataType::Float)]).unwrap();
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }
}
