//! A pinned buffer pool: the fixed-capacity frame table through which
//! every heap page (and demand-loaded R-tree leaf) is read and written.
//!
//! The pool owns a map from `(file, page)` to in-memory frames. Callers
//! [`BufferPool::pin`] a page and receive a [`PinnedPage`] RAII guard;
//! while any guard is alive the frame's pin count is nonzero and the
//! eviction sweep must skip it, so a page can never be stolen out from
//! under an in-flight scan. When the resident frame count exceeds the
//! configured capacity, unpinned frames are evicted — dirty ones are
//! first written back to the file's backing [`PageStore`] — under a
//! pluggable replacement policy: **clock** (second chance, the default)
//! or **LRU-K** (`K = 2`, evicts the frame whose second-most-recent
//! access is oldest, which resists sequential-scan pollution).
//!
//! Backing stores are created lazily on first write-back: in-memory by
//! default, or real page files under a spill directory when one is set
//! ([`BufferPool::set_spill_dir`]). Spill files are scratch — crash
//! durability is the WAL/snapshot's job, so a store that cannot be
//! created on disk silently degrades to memory.
//!
//! Counters (pin hits, cold pins, evictions, dirty write-backs) are
//! first-class: the benchmark reports them per cold/warm run and they
//! surface in the `jp_buffer_pool` system-catalog table.

use crate::page::{Page, PAGE_SIZE};
use crate::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};

/// How the pool picks an eviction victim among unpinned frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Second-chance clock sweep (the default).
    #[default]
    Clock,
    /// LRU-K with `K = 2`: evict the frame whose K-th most recent
    /// access is oldest. Frames touched fewer than K times look
    /// infinitely old, so one sequential scan cannot flush the pool.
    LruK,
}

impl ReplacementPolicy {
    /// Parses a policy name (`"clock"` or `"lruk"`/`"lru-k"`).
    pub fn parse(s: &str) -> Option<ReplacementPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "clock" => Some(ReplacementPolicy::Clock),
            "lruk" | "lru-k" | "lru_k" => Some(ReplacementPolicy::LruK),
            _ => None,
        }
    }

    /// Canonical name, as reported by `jp_buffer_pool`.
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Clock => "clock",
            ReplacementPolicy::LruK => "lruk",
        }
    }
}

/// Access-history depth for LRU-K.
const LRU_K: usize = 2;

/// Pool-level counters and occupancy, snapshotted by
/// [`BufferPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frame capacity (0 = unbounded).
    pub capacity_frames: u64,
    /// Frames currently resident.
    pub resident_frames: u64,
    /// Resident frames with a nonzero pin count.
    pub pinned_frames: u64,
    /// Pins served by an already-resident frame.
    pub pin_hits: u64,
    /// Pins that had to materialize a frame (fresh page or store read).
    pub cold_pins: u64,
    /// Frames evicted under capacity pressure.
    pub evictions: u64,
    /// Evicted or flushed frames whose bytes were written back.
    pub dirty_writebacks: u64,
}

/// Backing storage for one page file: where evicted pages go and where
/// cold pins reload them from.
pub trait PageStore: Send + Sync + fmt::Debug {
    /// Reads the serialized image of `page`, if one was ever written.
    fn read_page(&self, page: u32) -> Option<Vec<u8>>;
    /// Writes (or overwrites) the serialized image of `page`.
    fn write_page(&self, page: u32, bytes: &[u8]);
    /// Re-opens any OS handles — the cold-run switch, so a cold rep
    /// pays the open() as a real disk-backed restart would.
    fn reopen(&self);
}

/// In-memory backing store (the default when no spill dir is set).
#[derive(Debug, Default)]
struct MemStore {
    pages: Mutex<HashMap<u32, Vec<u8>>>,
}

impl PageStore for MemStore {
    fn read_page(&self, page: u32) -> Option<Vec<u8>> {
        self.pages.lock().get(&page).cloned()
    }

    fn write_page(&self, page: u32, bytes: &[u8]) {
        self.pages.lock().insert(page, bytes.to_vec());
    }

    fn reopen(&self) {}
}

/// A real page file on disk. Pages are written append-only with
/// in-place overwrite when the new image fits the old extent; the
/// `(offset, len)` directory lives in memory (the file is scratch and
/// dies with the pool — durability belongs to the WAL/snapshot).
#[derive(Debug)]
struct FileStore {
    path: PathBuf,
    file: Mutex<Option<std::fs::File>>,
    /// Page -> (offset, capacity) extents within the file.
    dir: Mutex<HashMap<u32, (u64, u32)>>,
    end: AtomicU64,
}

impl FileStore {
    fn create(path: PathBuf) -> std::io::Result<FileStore> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileStore {
            path,
            file: Mutex::new(Some(file)),
            dir: Mutex::new(HashMap::new()),
            end: AtomicU64::new(0),
        })
    }

    fn with_file<R>(&self, f: impl FnOnce(&mut std::fs::File) -> std::io::Result<R>) -> Option<R> {
        let mut slot = self.file.lock();
        if slot.is_none() {
            // Lazy re-open after a cold switch.
            *slot = std::fs::OpenOptions::new().read(true).write(true).open(&self.path).ok();
        }
        slot.as_mut().and_then(|file| f(file).ok())
    }
}

impl PageStore for FileStore {
    fn read_page(&self, page: u32) -> Option<Vec<u8>> {
        let (off, _cap) = *self.dir.lock().get(&page)?;
        self.with_file(|file| {
            file.seek(std::io::SeekFrom::Start(off))?;
            let mut len = [0u8; 4];
            file.read_exact(&mut len)?;
            let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
            file.read_exact(&mut buf)?;
            Ok(buf)
        })
    }

    fn write_page(&self, page: u32, bytes: &[u8]) {
        let need = bytes.len() as u32 + 4;
        let mut dir = self.dir.lock();
        let off = match dir.get(&page) {
            Some(&(off, cap)) if cap >= need => off,
            _ => {
                let off = self.end.fetch_add(need as u64, Ordering::Relaxed);
                dir.insert(page, (off, need));
                off
            }
        };
        drop(dir);
        self.with_file(|file| {
            file.seek(std::io::SeekFrom::Start(off))?;
            file.write_all(&(bytes.len() as u32).to_le_bytes())?;
            file.write_all(bytes)
        });
    }

    fn reopen(&self) {
        // Drop the handle; the next access re-opens the file, so a cold
        // rep pays the open() syscall like a real restart.
        *self.file.lock() = None;
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// One resident page.
#[derive(Debug)]
struct Frame {
    page: RwLock<Page>,
    pins: AtomicU32,
    dirty: AtomicBool,
    /// Clock reference bit: set on every pin, cleared by the sweep.
    referenced: AtomicBool,
    /// Most-recent-first access ticks for LRU-K (0 = never).
    history: Mutex<[u64; LRU_K]>,
}

impl Frame {
    fn new(page: Page, dirty: bool, tick: u64) -> Frame {
        let mut history = [0u64; LRU_K];
        history[0] = tick;
        Frame {
            page: RwLock::new(page),
            pins: AtomicU32::new(0),
            dirty: AtomicBool::new(dirty),
            referenced: AtomicBool::new(true),
            history: Mutex::new(history),
        }
    }

    fn touch(&self, tick: u64) {
        let mut h = self.history.lock();
        for i in (1..LRU_K).rev() {
            h[i] = h[i - 1];
        }
        h[0] = tick;
    }

    /// The K-th most recent access tick (0 when touched fewer than K
    /// times — infinitely old, evicted first under LRU-K).
    fn kth_tick(&self) -> u64 {
        self.history.lock()[LRU_K - 1]
    }
}

/// RAII pin on one page: while alive, the frame cannot be evicted.
/// Obtain read or write access to the underlying [`Page`] through it;
/// taking a write guard marks the frame dirty.
#[derive(Debug)]
pub struct PinnedPage {
    frame: Arc<Frame>,
}

impl PinnedPage {
    /// Shared read access to the page.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Exclusive write access; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::SeqCst);
        self.frame.page.write()
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One registered page file.
#[derive(Debug)]
struct FileSlot {
    name: String,
    store: Option<Arc<dyn PageStore>>,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: HashMap<(u64, u32), Arc<Frame>>,
    /// Clock order: insertion-ordered keys, swept by `hand`.
    ring: Vec<(u64, u32)>,
    hand: usize,
    files: HashMap<u64, FileSlot>,
    next_file: u64,
}

/// The shared buffer pool. One per [`crate::Catalog`] (so per engine);
/// every heap and demand-loaded index file in that engine pins pages
/// through it, sharing one capacity budget.
#[derive(Debug, Default)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    /// Capacity in frames; 0 = unbounded.
    capacity: AtomicUsize,
    policy: Mutex<ReplacementPolicy>,
    spill_dir: Mutex<Option<PathBuf>>,
    tick: AtomicU64,
    pin_hits: AtomicU64,
    cold_pins: AtomicU64,
    evictions: AtomicU64,
    dirty_writebacks: AtomicU64,
}

impl BufferPool {
    /// Creates an unbounded pool (clock policy, in-memory stores).
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Registers a new page file, returning its id. `name` seeds the
    /// spill file name; uniqueness comes from the id.
    pub fn register(&self, name: &str) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_file;
        inner.next_file += 1;
        inner.files.insert(id, FileSlot { name: name.to_string(), store: None });
        id
    }

    /// Pins `page` of `file`, materializing the frame on a miss (from
    /// the backing store when the page was evicted before, as a fresh
    /// empty page otherwise). May push the pool over capacity when
    /// every other frame is pinned; the overflow drains on later pins.
    pub fn pin(&self, file: u64, page: u32) -> PinnedPage {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&(file, page)).cloned() {
            frame.pins.fetch_add(1, Ordering::SeqCst);
            frame.referenced.store(true, Ordering::Relaxed);
            frame.touch(tick);
            self.pin_hits.fetch_add(1, Ordering::Relaxed);
            return PinnedPage { frame };
        }
        self.cold_pins.fetch_add(1, Ordering::Relaxed);
        let loaded = inner
            .files
            .get(&file)
            .and_then(|slot| slot.store.as_ref())
            .and_then(|store| store.read_page(page));
        let (pg, dirty) = match loaded {
            // A store image exists only because this pool wrote it, so a
            // decode failure is an in-process invariant violation, not
            // user-visible corruption.
            Some(bytes) => (
                Page::from_bytes(&bytes).unwrap_or_else(|e| {
                    panic!("buffer pool: undecodable page image {file}/{page}: {e}")
                }),
                false,
            ),
            None => (Page::new(), true),
        };
        let frame = Arc::new(Frame::new(pg, dirty, tick));
        frame.pins.store(1, Ordering::SeqCst);
        inner.frames.insert((file, page), frame.clone());
        inner.ring.push((file, page));
        self.evict_overflow(&mut inner);
        PinnedPage { frame }
    }

    /// Lazily creates (or fetches) the backing store for `file`,
    /// consulting the spill directory at creation time.
    fn ensure_store(&self, inner: &mut PoolInner, file: u64) -> Arc<dyn PageStore> {
        let slot = inner.files.entry(file).or_insert_with(|| FileSlot {
            name: format!("anon{file}"),
            store: None,
        });
        if let Some(store) = &slot.store {
            return store.clone();
        }
        let store: Arc<dyn PageStore> = match self.spill_dir.lock().as_ref() {
            Some(dir) => {
                let path = dir.join(format!("{}-{file}.jkpg", slot.name));
                match FileStore::create(path) {
                    Ok(fs) => Arc::new(fs),
                    // Scratch storage: degrade to memory if the disk
                    // path is unusable.
                    Err(_) => Arc::new(MemStore::default()),
                }
            }
            None => Arc::new(MemStore::default()),
        };
        slot.store = Some(store.clone());
        store
    }

    fn write_back(&self, inner: &mut PoolInner, key: (u64, u32), frame: &Frame) {
        let store = self.ensure_store(inner, key.0);
        store.write_page(key.1, &frame.page.read().to_bytes());
        frame.dirty.store(false, Ordering::SeqCst);
        self.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Evicts unpinned frames until the pool is back under capacity (or
    /// only pinned frames remain).
    fn evict_overflow(&self, inner: &mut PoolInner) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let policy = *self.policy.lock();
        while inner.frames.len() > cap {
            let victim = match policy {
                ReplacementPolicy::Clock => self.clock_victim(inner),
                ReplacementPolicy::LruK => self.lruk_victim(inner),
            };
            let Some(key) = victim else { break }; // everything pinned
            let frame = inner.frames.get(&key).cloned().expect("victim frame resident");
            if frame.dirty.load(Ordering::SeqCst) {
                self.write_back(inner, key, &frame);
            }
            inner.frames.remove(&key);
            if let Some(pos) = inner.ring.iter().position(|k| *k == key) {
                inner.ring.remove(pos);
                if inner.hand > pos {
                    inner.hand -= 1;
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Second-chance sweep: skip pinned frames, clear set reference
    /// bits, evict the first frame found unreferenced.
    fn clock_victim(&self, inner: &mut PoolInner) -> Option<(u64, u32)> {
        let n = inner.ring.len();
        if n == 0 {
            return None;
        }
        // Two full sweeps: the first may only clear reference bits.
        for _ in 0..(2 * n) {
            let idx = inner.hand % inner.ring.len();
            let key = inner.ring[idx];
            let frame = &inner.frames[&key];
            if frame.pins.load(Ordering::SeqCst) > 0 {
                inner.hand = idx + 1;
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                inner.hand = idx + 1;
                continue;
            }
            inner.hand = idx;
            return Some(key);
        }
        None
    }

    /// LRU-K victim: the unpinned frame whose K-th most recent access
    /// is oldest (ties broken by key for determinism).
    fn lruk_victim(&self, inner: &PoolInner) -> Option<(u64, u32)> {
        inner
            .frames
            .iter()
            .filter(|(_, f)| f.pins.load(Ordering::SeqCst) == 0)
            .map(|(k, f)| (f.kth_tick(), *k))
            .min()
            .map(|(_, k)| k)
    }

    /// Sets the pool capacity in bytes (frames of [`PAGE_SIZE`]; 0 =
    /// unbounded) and evicts down to it immediately.
    pub fn set_capacity_bytes(&self, bytes: usize) {
        self.capacity.store(bytes / PAGE_SIZE, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        self.evict_overflow(&mut inner);
    }

    /// Capacity in frames (0 = unbounded).
    pub fn capacity_frames(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Switches the replacement policy (applies to future evictions).
    pub fn set_policy(&self, policy: ReplacementPolicy) {
        *self.policy.lock() = policy;
    }

    /// The current replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        *self.policy.lock()
    }

    /// Directory for real spill files. Applies to stores created after
    /// the call (stores materialize on first write-back).
    pub fn set_spill_dir(&self, dir: Option<PathBuf>) {
        *self.spill_dir.lock() = dir;
    }

    /// Writes every dirty frame back to its store without evicting —
    /// `SpatialConnector::close` uses this.
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        let dirty: Vec<((u64, u32), Arc<Frame>)> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty.load(Ordering::SeqCst))
            .map(|(k, f)| (*k, f.clone()))
            .collect();
        for (key, frame) in dirty {
            self.write_back(&mut inner, key, &frame);
        }
    }

    /// The cold-run switch: writes every dirty frame back, drops all
    /// unpinned frames, and re-opens the backing stores, so the next
    /// pin of any page is a genuine cold pin through the store.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let keys: Vec<(u64, u32)> = inner.frames.keys().copied().collect();
        for key in keys {
            let frame = inner.frames[&key].clone();
            if frame.dirty.load(Ordering::SeqCst) {
                self.write_back(&mut inner, key, &frame);
            }
            if frame.pins.load(Ordering::SeqCst) == 0 {
                inner.frames.remove(&key);
            }
        }
        let PoolInner { frames, ring, hand, files, .. } = &mut *inner;
        ring.retain(|k| frames.contains_key(k));
        *hand = 0;
        for slot in files.values() {
            if let Some(store) = &slot.store {
                store.reopen();
            }
        }
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        let pinned =
            inner.frames.values().filter(|f| f.pins.load(Ordering::SeqCst) > 0).count() as u64;
        PoolStats {
            capacity_frames: self.capacity.load(Ordering::Relaxed) as u64,
            resident_frames: inner.frames.len() as u64,
            pinned_frames: pinned,
            pin_hits: self.pin_hits.load(Ordering::Relaxed),
            cold_pins: self.cold_pins.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_writebacks: self.dirty_writebacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(pool: &BufferPool, file: u64, page: u32, text: &[u8]) {
        let pin = pool.pin(file, page);
        pin.write().insert(text);
    }

    fn first_tuple(pool: &BufferPool, file: u64, page: u32) -> Vec<u8> {
        let pin = pool.pin(file, page);
        let guard = pin.read();
        guard.get(0).unwrap().to_vec()
    }

    #[test]
    fn pin_counters_distinguish_hits_from_cold_pins() {
        let pool = BufferPool::new();
        let f = pool.register("t");
        fill(&pool, f, 0, b"hello");
        assert_eq!(first_tuple(&pool, f, 0), b"hello");
        let s = pool.stats();
        assert_eq!(s.cold_pins, 1);
        assert_eq!(s.pin_hits, 1);
        assert_eq!(s.resident_frames, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn eviction_writes_back_and_reloads_identically() {
        let pool = BufferPool::new();
        pool.set_capacity_bytes(2 * PAGE_SIZE);
        let f = pool.register("t");
        for p in 0..6u32 {
            fill(&pool, f, p, format!("page-{p}").as_bytes());
        }
        let s = pool.stats();
        assert!(s.evictions >= 4, "capacity 2 must evict, got {s:?}");
        assert!(s.dirty_writebacks >= 4);
        assert!(s.resident_frames <= 2);
        for p in 0..6u32 {
            assert_eq!(first_tuple(&pool, f, p), format!("page-{p}").as_bytes());
        }
    }

    #[test]
    fn pinned_frames_survive_capacity_pressure() {
        let pool = BufferPool::new();
        pool.set_capacity_bytes(PAGE_SIZE); // 1 frame
        let f = pool.register("t");
        let a = pool.pin(f, 0);
        a.write().insert(b"pinned");
        // Pinning a second page overflows, but the pinned frame must
        // not be stolen.
        let b = pool.pin(f, 1);
        b.write().insert(b"other");
        assert_eq!(a.read().get(0).unwrap(), b"pinned");
        assert!(pool.stats().resident_frames >= 2, "over-capacity while pinned");
        drop(a);
        drop(b);
        // Pressure drains once pins release.
        fill(&pool, f, 2, b"third");
        assert!(pool.stats().resident_frames <= 1);
    }

    #[test]
    fn clear_drops_frames_and_preserves_bytes() {
        let pool = BufferPool::new();
        let f = pool.register("t");
        fill(&pool, f, 0, b"durable");
        let before = pool.stats().cold_pins;
        pool.clear();
        assert_eq!(pool.stats().resident_frames, 0);
        assert_eq!(first_tuple(&pool, f, 0), b"durable");
        assert_eq!(pool.stats().cold_pins, before + 1, "post-clear pin is cold");
    }

    #[test]
    fn spill_dir_creates_and_cleans_real_page_files() {
        let dir = std::env::temp_dir().join(format!("jackpine-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pool = BufferPool::new();
        pool.set_spill_dir(Some(dir.clone()));
        let f = pool.register("spill");
        fill(&pool, f, 0, b"on-disk");
        fill(&pool, f, 1, b"second");
        pool.clear();
        let spill_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("spill"))
            .collect();
        assert_eq!(spill_files.len(), 1, "one page file per registered file");
        assert_eq!(first_tuple(&pool, f, 0), b"on-disk");
        assert_eq!(first_tuple(&pool, f, 1), b"second");
        drop(pool);
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "FileStore drop removes its spill file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lruk_prefers_once_touched_victims() {
        let pool = BufferPool::new();
        pool.set_policy(ReplacementPolicy::LruK);
        let f = pool.register("t");
        fill(&pool, f, 0, b"hot");
        assert_eq!(first_tuple(&pool, f, 0), b"hot"); // second touch
        fill(&pool, f, 1, b"cold-a");
        fill(&pool, f, 2, b"cold-b");
        pool.set_capacity_bytes(2 * PAGE_SIZE);
        // Page 0 has two accesses; pages 1 and 2 only one, so they look
        // infinitely old to LRU-K and go first.
        let resident: Vec<bool> = (0..3)
            .map(|p| {
                let before = pool.stats().pin_hits;
                let _pin = pool.pin(f, p);
                pool.stats().pin_hits > before
            })
            .collect();
        assert!(resident[0], "twice-touched page survived");
    }

    #[test]
    fn policy_parse_roundtrip() {
        assert_eq!(ReplacementPolicy::parse("clock"), Some(ReplacementPolicy::Clock));
        assert_eq!(ReplacementPolicy::parse("LRU-K"), Some(ReplacementPolicy::LruK));
        assert_eq!(ReplacementPolicy::parse("lruk"), Some(ReplacementPolicy::LruK));
        assert_eq!(ReplacementPolicy::parse("fifo"), None);
        assert_eq!(ReplacementPolicy::Clock.name(), "clock");
        assert_eq!(ReplacementPolicy::LruK.name(), "lruk");
    }

    #[test]
    fn concurrent_pins_never_lose_writes() {
        let pool = Arc::new(BufferPool::new());
        pool.set_capacity_bytes(4 * PAGE_SIZE);
        let f = pool.register("t");
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for p in 0..16u32 {
                        let pin = pool.pin(f, t * 16 + p);
                        pin.write().insert(format!("{t}/{p}").as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..4u32 {
            for p in 0..16u32 {
                assert_eq!(first_tuple(&pool, f, t * 16 + p), format!("{t}/{p}").as_bytes());
            }
        }
    }
}
