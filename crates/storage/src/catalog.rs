//! The catalog: name → table resolution.

use crate::pool::BufferPool;
use crate::sync::RwLock;
use crate::{HeapFile, Result, Schema, StorageError};
use std::collections::HashMap;
use std::sync::Arc;

/// Opaque table identifier (creation order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// A named table: schema plus heap storage.
#[derive(Debug)]
pub struct Table {
    /// Catalog id.
    pub id: TableId,
    /// Table name as created (lookups are case-insensitive).
    pub name: String,
    /// Row storage.
    pub heap: HeapFile,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.heap.schema()
    }
}

/// The set of tables in a database instance. All table heaps share the
/// catalog's buffer pool, so one capacity budget governs the instance.
#[derive(Debug)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    next_id: RwLock<u32>,
    pool: Arc<BufferPool>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// Creates an empty catalog with its own (unbounded) buffer pool.
    pub fn new() -> Catalog {
        Catalog::with_pool(Arc::new(BufferPool::new()))
    }

    /// Creates an empty catalog whose tables page through `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Catalog {
        Catalog { tables: RwLock::new(HashMap::new()), next_id: RwLock::new(0), pool }
    }

    /// The buffer pool shared by every table in this catalog.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Creates a table.
    ///
    /// # Errors
    /// [`StorageError::TableExists`] if the (case-insensitive) name is
    /// already taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        let mut next = self.next_id.write();
        let id = TableId(*next);
        *next += 1;
        let table = Arc::new(Table {
            id,
            name: name.to_string(),
            heap: HeapFile::with_pool(Arc::new(schema), self.pool.clone()),
        });
        tables.insert(key, table.clone());
        Ok(table)
    }

    /// Looks a table up by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Drops a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    /// Evicts every table's decoded-row cache (cold-run support).
    pub fn clear_all_caches(&self) {
        for table in self.tables.read().values() {
            table.heap.clear_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        cat.create_table("roads", schema()).unwrap();
        assert!(cat.table("ROADS").is_ok());
        assert!(cat.table("rivers").is_err());
        assert!(cat.create_table("Roads", schema()).is_err());
        assert_eq!(cat.table_names(), vec!["roads"]);
        assert!(cat.drop_table("roads"));
        assert!(!cat.drop_table("roads"));
    }

    #[test]
    fn tables_hold_rows() {
        let cat = Catalog::new();
        let t = cat.create_table("t", schema()).unwrap();
        t.heap.insert(vec![Value::Int(1)]).unwrap();
        assert_eq!(cat.table("t").unwrap().heap.len(), 1);
    }

    #[test]
    fn distinct_ids() {
        let cat = Catalog::new();
        let a = cat.create_table("a", schema()).unwrap();
        let b = cat.create_table("b", schema()).unwrap();
        assert_ne!(a.id, b.id);
    }
}
