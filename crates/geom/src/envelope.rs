use crate::Coord;

/// An axis-aligned bounding rectangle (minimum bounding rectangle, MBR).
///
/// Envelopes are the currency of spatial indexing and of MBR-only predicate
/// semantics (the MySQL-era behaviour one Jackpine engine profile models).
/// An envelope may be *empty* — the canonical result of taking the envelope
/// of an empty geometry — represented by inverted bounds so that
/// [`Envelope::expand_to_include`] works without special cases.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Envelope {
    /// Minimum x (west edge). Greater than `max_x` iff the envelope is empty.
    pub min_x: f64,
    /// Minimum y (south edge).
    pub min_y: f64,
    /// Maximum x (east edge).
    pub max_x: f64,
    /// Maximum y (north edge).
    pub max_y: f64,
}

impl Envelope {
    /// The empty envelope: contains nothing, expands to anything.
    pub const EMPTY: Envelope = Envelope {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates an envelope from bounds, normalizing the order of each pair.
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Envelope {
        Envelope { min_x: x1.min(x2), min_y: y1.min(y2), max_x: x1.max(x2), max_y: y1.max(y2) }
    }

    /// Creates a degenerate envelope covering a single coordinate.
    #[inline]
    pub fn from_coord(c: Coord) -> Envelope {
        Envelope { min_x: c.x, min_y: c.y, max_x: c.x, max_y: c.y }
    }

    /// Builds the envelope of an arbitrary coordinate sequence.
    pub fn from_coords<'a, I: IntoIterator<Item = &'a Coord>>(coords: I) -> Envelope {
        let mut e = Envelope::EMPTY;
        for c in coords {
            e.expand_to_coord(*c);
        }
        e
    }

    /// `true` when the envelope contains no point at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width of the envelope (0 for empty envelopes).
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height of the envelope (0 for empty envelopes).
    #[inline]
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Area of the envelope.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (margin), the quantity the R*-tree split optimizes.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point; `None` for empty envelopes.
    #[inline]
    pub fn center(&self) -> Option<Coord> {
        if self.is_empty() {
            None
        } else {
            Some(Coord::new((self.min_x + self.max_x) * 0.5, (self.min_y + self.max_y) * 0.5))
        }
    }

    /// Grows the envelope in place to cover `c`.
    #[inline]
    pub fn expand_to_coord(&mut self, c: Coord) {
        self.min_x = self.min_x.min(c.x);
        self.min_y = self.min_y.min(c.y);
        self.max_x = self.max_x.max(c.x);
        self.max_y = self.max_y.max(c.y);
    }

    /// Grows the envelope in place to cover `other`.
    #[inline]
    pub fn expand_to_include(&mut self, other: &Envelope) {
        if other.is_empty() {
            return;
        }
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Returns the smallest envelope covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Envelope) -> Envelope {
        let mut e = *self;
        e.expand_to_include(other);
        e
    }

    /// Returns the envelope grown by `d` on every side.
    #[inline]
    pub fn expanded_by(&self, d: f64) -> Envelope {
        if self.is_empty() {
            return *self;
        }
        Envelope {
            min_x: self.min_x - d,
            min_y: self.min_y - d,
            max_x: self.max_x + d,
            max_y: self.max_y + d,
        }
    }

    /// `true` when the two envelopes share at least one point
    /// (closed-rectangle semantics: touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Envelope) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || other.min_x > self.max_x
            || other.max_x < self.min_x
            || other.min_y > self.max_y
            || other.max_y < self.min_y)
    }

    /// The rectangle common to both envelopes, or `None` if disjoint.
    pub fn intersection(&self, other: &Envelope) -> Option<Envelope> {
        if !self.intersects(other) {
            return None;
        }
        Some(Envelope {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// `true` when `c` lies inside or on the boundary.
    #[inline]
    pub fn contains_coord(&self, c: Coord) -> bool {
        !self.is_empty()
            && c.x >= self.min_x
            && c.x <= self.max_x
            && c.y >= self.min_y
            && c.y <= self.max_y
    }

    /// `true` when `other` lies entirely inside or on the boundary.
    ///
    /// Every envelope (including `self`) contains the empty envelope.
    #[inline]
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        other.is_empty()
            || (!self.is_empty()
                && other.min_x >= self.min_x
                && other.max_x <= self.max_x
                && other.min_y >= self.min_y
                && other.max_y <= self.max_y)
    }

    /// `true` when `c` lies strictly inside (not on the boundary).
    #[inline]
    pub fn contains_coord_strict(&self, c: Coord) -> bool {
        !self.is_empty()
            && c.x > self.min_x
            && c.x < self.max_x
            && c.y > self.min_y
            && c.y < self.max_y
    }

    /// Minimum distance from `c` to the envelope (0 when inside).
    pub fn distance_to_coord(&self, c: Coord) -> f64 {
        self.distance_sq_to_coord(c).sqrt()
    }

    /// Squared minimum distance from `c` to the envelope (0 when inside).
    pub fn distance_sq_to_coord(&self, c: Coord) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = if c.x < self.min_x {
            self.min_x - c.x
        } else if c.x > self.max_x {
            c.x - self.max_x
        } else {
            0.0
        };
        let dy = if c.y < self.min_y {
            self.min_y - c.y
        } else if c.y > self.max_y {
            c.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Minimum distance between two envelopes (0 when they intersect).
    pub fn distance_to_envelope(&self, other: &Envelope) -> f64 {
        if self.is_empty() || other.is_empty() {
            return f64::INFINITY;
        }
        let dx = (other.min_x - self.max_x).max(self.min_x - other.max_x).max(0.0);
        let dy = (other.min_y - self.max_y).max(self.min_y - other.max_y).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corners in counter-clockwise order starting at (min, min).
    /// Empty envelopes yield an empty vector.
    pub fn corners(&self) -> Vec<Coord> {
        if self.is_empty() {
            return Vec::new();
        }
        vec![
            Coord::new(self.min_x, self.min_y),
            Coord::new(self.max_x, self.min_y),
            Coord::new(self.max_x, self.max_y),
            Coord::new(self.min_x, self.max_y),
        ]
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_envelope_properties() {
        let e = Envelope::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.area(), 0.0);
        assert!(e.center().is_none());
        assert!(!e.contains_coord(Coord::new(0.0, 0.0)));
    }

    #[test]
    fn new_normalizes_order() {
        let e = Envelope::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(e.min_x, 1.0);
        assert_eq!(e.max_x, 5.0);
        assert_eq!(e.min_y, 2.0);
        assert_eq!(e.max_y, 7.0);
    }

    #[test]
    fn expansion_from_empty() {
        let mut e = Envelope::EMPTY;
        e.expand_to_coord(Coord::new(1.0, 1.0));
        assert!(!e.is_empty());
        assert_eq!(e, Envelope::new(1.0, 1.0, 1.0, 1.0));
        e.expand_to_coord(Coord::new(-1.0, 3.0));
        assert_eq!(e, Envelope::new(-1.0, 1.0, 1.0, 3.0));
    }

    #[test]
    fn intersects_including_touching() {
        let a = Envelope::new(0.0, 0.0, 2.0, 2.0);
        let b = Envelope::new(2.0, 0.0, 4.0, 2.0); // shares an edge
        let c = Envelope::new(3.0, 3.0, 4.0, 4.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!b.intersects(&c)); // disjoint in y: [0,2] vs [3,4]
        let d = Envelope::new(4.0, 2.0, 6.0, 3.0); // touches b at corner (4,2)
        assert!(b.intersects(&d));
    }

    #[test]
    fn intersection_rectangle() {
        let a = Envelope::new(0.0, 0.0, 2.0, 2.0);
        let b = Envelope::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(Envelope::new(1.0, 1.0, 2.0, 2.0)));
        let d = Envelope::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&d), None);
    }

    #[test]
    fn containment() {
        let a = Envelope::new(0.0, 0.0, 4.0, 4.0);
        let b = Envelope::new(1.0, 1.0, 2.0, 2.0);
        assert!(a.contains_envelope(&b));
        assert!(!b.contains_envelope(&a));
        assert!(a.contains_envelope(&Envelope::EMPTY));
        assert!(a.contains_coord(Coord::new(0.0, 0.0)));
        assert!(!a.contains_coord_strict(Coord::new(0.0, 0.0)));
        assert!(a.contains_coord_strict(Coord::new(1.0, 1.0)));
    }

    #[test]
    fn distances() {
        let a = Envelope::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.distance_to_coord(Coord::new(1.0, 1.0)), 0.0);
        assert_eq!(a.distance_to_coord(Coord::new(5.0, 2.0)), 3.0);
        assert_eq!(a.distance_to_coord(Coord::new(5.0, 6.0)), 5.0);
        let b = Envelope::new(5.0, 0.0, 6.0, 2.0);
        assert_eq!(a.distance_to_envelope(&b), 3.0);
        assert_eq!(a.distance_to_envelope(&a), 0.0);
    }

    #[test]
    fn corners_ccw() {
        let a = Envelope::new(0.0, 0.0, 1.0, 2.0);
        let cs = a.corners();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0], Coord::new(0.0, 0.0));
        assert_eq!(cs[2], Coord::new(1.0, 2.0));
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Envelope::new(0.0, 0.0, 2.0, 2.0);
        let p = Coord::new(5.0, 6.0);
        assert!((a.distance_sq_to_coord(p) - 25.0).abs() < 1e-12);
    }
}
