use crate::{Envelope, Geometry, LineString, Point, Polygon};

/// A collection of [`Point`]s treated as one geometry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiPoint(pub Vec<Point>);

/// A collection of [`LineString`]s treated as one geometry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiLineString(pub Vec<LineString>);

/// A collection of [`Polygon`]s treated as one geometry.
///
/// As in most spatial databases, member polygons are expected to have
/// disjoint interiors; algorithms document where they rely on this.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiPolygon(pub Vec<Polygon>);

/// A heterogeneous collection of geometries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GeometryCollection(pub Vec<Geometry>);

impl MultiPoint {
    /// `true` when the collection holds no non-empty point.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(Point::is_empty)
    }

    /// Minimum bounding rectangle of all members.
    pub fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        for p in &self.0 {
            e.expand_to_include(&p.envelope());
        }
        e
    }
}

impl MultiLineString {
    /// `true` when the collection holds no non-empty linestring.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(LineString::is_empty)
    }

    /// Minimum bounding rectangle of all members.
    pub fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        for l in &self.0 {
            e.expand_to_include(&l.envelope());
        }
        e
    }

    /// Total length of all member lines.
    pub fn length(&self) -> f64 {
        self.0.iter().map(LineString::length).sum()
    }
}

impl MultiPolygon {
    /// `true` when the collection holds no polygon.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Minimum bounding rectangle of all members.
    pub fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        for p in &self.0 {
            e.expand_to_include(&p.envelope());
        }
        e
    }

    /// Total area of all member polygons (assumes disjoint interiors).
    pub fn area(&self) -> f64 {
        self.0.iter().map(Polygon::area).sum()
    }
}

impl GeometryCollection {
    /// `true` when every member is empty.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(Geometry::is_empty)
    }

    /// Minimum bounding rectangle of all members.
    pub fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        for g in &self.0 {
            e.expand_to_include(&g.envelope());
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipoint_envelope_and_emptiness() {
        let mp = MultiPoint(vec![Point::new(0.0, 0.0).unwrap(), Point::new(2.0, 3.0).unwrap()]);
        assert_eq!(mp.envelope(), Envelope::new(0.0, 0.0, 2.0, 3.0));
        assert!(!mp.is_empty());
        assert!(MultiPoint(vec![]).is_empty());
        assert!(MultiPoint(vec![Point::empty()]).is_empty());
    }

    #[test]
    fn multilinestring_length() {
        let a = LineString::from_xy(&[(0.0, 0.0), (3.0, 0.0)]).unwrap();
        let b = LineString::from_xy(&[(0.0, 0.0), (0.0, 4.0)]).unwrap();
        let ml = MultiLineString(vec![a, b]);
        assert_eq!(ml.length(), 7.0);
        assert_eq!(ml.envelope(), Envelope::new(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn multipolygon_area() {
        let a = Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap();
        let b = Polygon::from_xy(&[(2.0, 0.0), (4.0, 0.0), (4.0, 2.0), (2.0, 2.0)]).unwrap();
        let mp = MultiPolygon(vec![a, b]);
        assert_eq!(mp.area(), 5.0);
        assert_eq!(mp.envelope(), Envelope::new(0.0, 0.0, 4.0, 2.0));
    }

    #[test]
    fn collection_recursive_emptiness() {
        let gc = GeometryCollection(vec![
            Geometry::Point(Point::empty()),
            Geometry::LineString(LineString::empty()),
        ]);
        assert!(gc.is_empty());
        let gc2 = GeometryCollection(vec![Geometry::Point(Point::new(1.0, 1.0).unwrap())]);
        assert!(!gc2.is_empty());
        assert_eq!(gc2.envelope(), Envelope::new(1.0, 1.0, 1.0, 1.0));
    }
}
