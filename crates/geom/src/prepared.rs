//! Prepared geometries: one-time edge indexes that accelerate repeated
//! exact queries against the same polygon or polyline.
//!
//! The JTS/GEOS `PreparedGeometry` idea: when one geometry is probed many
//! times (the inner side of a spatial join, a ring queried per segment of
//! a long line), pay an O(n log n)-ish build once and answer each probe
//! by touching only the edges that can matter. Two structures do the
//! work:
//!
//! * [`ChainSet`] — monotone-chain decomposition of a polyline plus a
//!   small static envelope tree over the chains, for *segment
//!   intersection* candidate retrieval;
//! * y-slab edge bins inside [`PreparedRing`], for *point location*
//!   probes replacing the linear ray cast of
//!   [`locate_in_ring`](crate::algorithms::locate::locate_in_ring).
//!
//! # Exactness contract
//!
//! Everything here is a *candidate filter* in front of the same exact
//! predicates the naive code calls ([`orient2d`], [`point_on_segment`],
//! [`segment_intersection`](crate::algorithms::segment::segment_intersection)).
//! A pair pruned by an index is pruned only when the exact predicate is
//! *proven* to contribute nothing (see the per-prune comments), so every
//! result is bit-identical to the unindexed path. The equivalence corpus
//! in `tests/prepared_equivalence.rs` checks this end to end.

use crate::algorithms::line_split::{split_line_core, LinePortion};
use crate::algorithms::locate::Location;
use crate::algorithms::orientation::{orient2d, Orientation};
use crate::algorithms::segment::point_on_segment;
use crate::polygon::Ring;
use crate::{Coord, Envelope, LineString, Polygon};

/// Fan-out of the implicit static envelope tree over monotone chains.
const TREE_FANOUT: usize = 8;

/// Maximum number of y-slabs in a ring's point-location bins.
const MAX_BINS: usize = 2048;

fn sign(d: f64) -> i8 {
    if d > 0.0 {
        1
    } else if d < 0.0 {
        -1
    } else {
        0
    }
}

/// Merges a chain's running direction sign with the next edge's sign.
/// `0` (flat in that axis) is compatible with anything.
fn combine(chain: i8, edge: i8) -> Option<i8> {
    if chain == 0 {
        Some(edge)
    } else if edge == 0 || edge == chain {
        Some(chain)
    } else {
        None
    }
}

/// A maximal run of edges monotone in **both** axes.
#[derive(Clone, Copy, Debug)]
struct Chain {
    /// First coordinate index; the chain's edges are `(i, i + 1)` for
    /// `i` in `start..end`.
    start: u32,
    /// Last coordinate index (inclusive).
    end: u32,
    /// `true` when `x` is non-decreasing along the chain.
    x_asc: bool,
}

/// Monotone-chain decomposition of a polyline (open, or a closed ring)
/// with a static envelope tree over the chains.
///
/// Because a chain is monotone in both axes, the edges whose x-interval
/// overlaps a query window form one contiguous run, found by binary
/// search — so a candidate query costs tree descent plus the run length,
/// instead of the full edge count.
#[derive(Clone, Debug)]
pub struct ChainSet {
    coords: Vec<Coord>,
    chains: Vec<Chain>,
    /// `levels[0]` holds one envelope per chain; each level above unions
    /// groups of [`TREE_FANOUT`] envelopes of the level below, ending in
    /// a root level of at most [`TREE_FANOUT`] entries.
    levels: Vec<Vec<Envelope>>,
    env: Envelope,
}

impl ChainSet {
    /// Builds the decomposition over a coordinate sequence (at least two
    /// coordinates, or empty; consecutive duplicates not required absent
    /// but produce harmless zero-length chains splits).
    pub fn new(coords: &[Coord]) -> ChainSet {
        let mut chains: Vec<Chain> = Vec::new();
        if coords.len() >= 2 {
            let mut start = 0usize;
            let (mut sx, mut sy) = (0i8, 0i8);
            for i in 0..coords.len() - 1 {
                let ex = sign(coords[i + 1].x - coords[i].x);
                let ey = sign(coords[i + 1].y - coords[i].y);
                match (combine(sx, ex), combine(sy, ey)) {
                    (Some(nx), Some(ny)) => {
                        sx = nx;
                        sy = ny;
                    }
                    _ => {
                        chains.push(Chain { start: start as u32, end: i as u32, x_asc: sx >= 0 });
                        start = i;
                        sx = ex;
                        sy = ey;
                    }
                }
            }
            chains.push(Chain {
                start: start as u32,
                end: (coords.len() - 1) as u32,
                x_asc: sx >= 0,
            });
        }
        let leaf: Vec<Envelope> = chains
            .iter()
            .map(|c| Envelope::from_coords(coords[c.start as usize..=c.end as usize].iter()))
            .collect();
        let mut levels = vec![leaf];
        while levels.last().expect("non-empty").len() > TREE_FANOUT {
            let prev = levels.last().expect("non-empty");
            let next: Vec<Envelope> = prev
                .chunks(TREE_FANOUT)
                .map(|group| {
                    let mut e = group[0];
                    for g in &group[1..] {
                        e.expand_to_include(g);
                    }
                    e
                })
                .collect();
            levels.push(next);
        }
        ChainSet {
            coords: coords.to_vec(),
            chains,
            levels,
            env: Envelope::from_coords(coords.iter()),
        }
    }

    /// Builds the decomposition over a linestring's coordinates.
    pub fn from_linestring(line: &LineString) -> ChainSet {
        ChainSet::new(line.coords())
    }

    /// Envelope of the whole polyline.
    pub fn envelope(&self) -> &Envelope {
        &self.env
    }

    /// Number of monotone chains.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Calls `f` with every edge whose envelope intersects `qenv` —
    /// possibly a few more, never fewer. Pruned edges are envelope-disjoint
    /// from `qenv`, so the exact segment predicates would classify them as
    /// non-interacting anyway; callers may treat the emitted set as
    /// equivalent to a full scan.
    pub fn for_candidate_edges(&self, qenv: &Envelope, f: &mut dyn FnMut(Coord, Coord)) {
        if self.chains.is_empty() || !self.env.intersects(qenv) {
            return;
        }
        let top = self.levels.len() - 1;
        let mut stack: Vec<(usize, usize)> =
            (0..self.levels[top].len()).map(|i| (top, i)).collect();
        while let Some((lvl, i)) = stack.pop() {
            if !self.levels[lvl][i].intersects(qenv) {
                continue;
            }
            if lvl == 0 {
                self.chain_candidates(i, qenv, f);
            } else {
                let lo = i * TREE_FANOUT;
                let hi = (lo + TREE_FANOUT).min(self.levels[lvl - 1].len());
                for j in lo..hi {
                    stack.push((lvl - 1, j));
                }
            }
        }
    }

    /// Emits the contiguous run of a chain's edges whose x-interval
    /// overlaps `qenv` (binary search on the monotone x sequence), then
    /// filters each by y-overlap. Both tests use the same closed
    /// comparisons as [`Envelope::intersects`].
    fn chain_candidates(&self, ci: usize, qenv: &Envelope, f: &mut dyn FnMut(Coord, Coord)) {
        let ch = self.chains[ci];
        let (s, e) = (ch.start as usize, ch.end as usize);
        let cs = &self.coords;
        // Edge i spans coords[i]..coords[i+1] for i in s..e.
        let (lo, hi) = if ch.x_asc {
            // x non-decreasing: edge max-x is coords[i+1].x, min-x is coords[i].x.
            let lo = s + cs[s + 1..=e].partition_point(|c| c.x < qenv.min_x);
            let hi = s + cs[s..e].partition_point(|c| c.x <= qenv.max_x);
            (lo, hi)
        } else {
            // x non-increasing: edge max-x is coords[i].x, min-x is coords[i+1].x.
            let lo = s + cs[s + 1..=e].partition_point(|c| c.x > qenv.max_x);
            let hi = s + cs[s..e].partition_point(|c| c.x >= qenv.min_x);
            (lo, hi)
        };
        for i in lo..hi {
            let (a, b) = (cs[i], cs[i + 1]);
            let (yl, yh) = if a.y <= b.y { (a.y, b.y) } else { (b.y, a.y) };
            if yh >= qenv.min_y && yl <= qenv.max_y {
                f(a, b);
            }
        }
    }
}

/// Y-slab bins over a ring's edges for point-location probes. An edge
/// whose y-range spans `[lo, hi]` is inserted into every bin overlapping
/// that range, so `bin(p.y)` holds **all** edges that can contain `p` or
/// cross its rightward ray — the two things the ray cast looks at.
#[derive(Clone, Debug)]
struct EdgeBins {
    edges: Vec<(Coord, Coord)>,
    bins: Vec<Vec<u32>>,
    min_y: f64,
    /// Bins-per-unit-y. `0.0` means a single bin (degenerate height).
    inv_h: f64,
}

impl EdgeBins {
    fn new(ring: &[Coord], env: &Envelope) -> EdgeBins {
        let edges: Vec<(Coord, Coord)> = ring.windows(2).map(|w| (w[0], w[1])).collect();
        let want = (edges.len() / 4).clamp(1, MAX_BINS);
        let height = env.max_y - env.min_y;
        let (nbins, inv_h) =
            if height > 0.0 && want > 1 { (want, want as f64 / height) } else { (1, 0.0) };
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nbins];
        for (idx, &(a, b)) in edges.iter().enumerate() {
            let (lo, hi) = if a.y <= b.y { (a.y, b.y) } else { (b.y, a.y) };
            let bl = Self::index_of(lo, env.min_y, inv_h, nbins);
            let bh = Self::index_of(hi, env.min_y, inv_h, nbins);
            for bin in bins.iter_mut().take(bh + 1).skip(bl) {
                bin.push(idx as u32);
            }
        }
        EdgeBins { edges, bins, min_y: env.min_y, inv_h }
    }

    fn index_of(y: f64, min_y: f64, inv_h: f64, nbins: usize) -> usize {
        if inv_h == 0.0 {
            return 0;
        }
        // Negative values cast to 0; clamp the top end.
        (((y - min_y) * inv_h) as usize).min(nbins - 1)
    }

    fn candidates(&self, y: f64) -> &[u32] {
        &self.bins[Self::index_of(y, self.min_y, self.inv_h, self.bins.len())]
    }
}

/// A ring with both indexes built: chains for segment queries, bins for
/// point location.
#[derive(Clone, Debug)]
pub struct PreparedRing {
    chains: ChainSet,
    bins: EdgeBins,
    env: Envelope,
}

impl PreparedRing {
    /// Prepares a closed ring.
    pub fn new(ring: &Ring) -> PreparedRing {
        let coords = ring.coords();
        let env = Envelope::from_coords(coords.iter());
        PreparedRing { chains: ChainSet::new(coords), bins: EdgeBins::new(coords, &env), env }
    }

    /// The segment-query index over the ring's boundary edges.
    pub fn chains(&self) -> &ChainSet {
        &self.chains
    }

    /// Locates `p` relative to the closed region bounded by the ring.
    /// Bit-identical to
    /// [`locate_in_ring`](crate::algorithms::locate::locate_in_ring).
    ///
    /// Every prune below is exact, not approximate:
    /// * **envelope reject** — a point outside the ring's envelope is on
    ///   no edge ([`point_on_segment`] requires the point inside the edge
    ///   bounds) and its rightward-ray crossing count is even (above or
    ///   below: no edge straddles `p.y`; right: every straddling edge has
    ///   `p` strictly on its right, which the crossing rule rejects;
    ///   left: up- and down-crossings pair up on a closed ring), so the
    ///   parity answer is Exterior either way;
    /// * **strictly right of an edge** (`max x < p.x`) — not on it, and
    ///   not counted by the crossing rule (same right-side argument);
    /// * **strictly left of a straddling edge** (`min x > p.x`) — not on
    ///   it, and *always* counted: an upward edge with `p` strictly to
    ///   its left is exactly the counter-clockwise case, a downward edge
    ///   the clockwise case, so the `orient2d` call is skipped with its
    ///   outcome known.
    pub fn locate(&self, p: Coord) -> Location {
        if !self.env.contains_coord(p) {
            return Location::Exterior;
        }
        let mut crossings = 0u32;
        for &ei in self.bins.candidates(p.y) {
            let (a, b) = self.bins.edges[ei as usize];
            let (xl, xh) = if a.x <= b.x { (a.x, b.x) } else { (b.x, a.x) };
            if xh < p.x {
                continue;
            }
            let upward = a.y <= p.y && b.y > p.y;
            let downward = b.y <= p.y && a.y > p.y;
            if xl > p.x {
                if upward || downward {
                    crossings += 1;
                }
                continue;
            }
            if point_on_segment(p, a, b) {
                return Location::Boundary;
            }
            if upward {
                if orient2d(a, b, p) == Orientation::CounterClockwise {
                    crossings += 1;
                }
            } else if downward && orient2d(a, b, p) == Orientation::Clockwise {
                crossings += 1;
            }
        }
        if crossings % 2 == 1 {
            Location::Interior
        } else {
            Location::Exterior
        }
    }
}

/// A polygon with every ring prepared, the unit the engine's prepared
/// cache stores and the relate fast paths consume.
#[derive(Clone, Debug)]
pub struct PreparedPolygon {
    poly: Polygon,
    exterior: PreparedRing,
    holes: Vec<PreparedRing>,
    env: Envelope,
}

impl PreparedPolygon {
    /// Prepares every ring of `poly`.
    pub fn new(poly: &Polygon) -> PreparedPolygon {
        PreparedPolygon {
            exterior: PreparedRing::new(poly.exterior()),
            holes: poly.holes().iter().map(PreparedRing::new).collect(),
            env: poly.envelope(),
            poly: poly.clone(),
        }
    }

    /// The underlying polygon.
    pub fn polygon(&self) -> &Polygon {
        &self.poly
    }

    /// The polygon's envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.env
    }

    /// The prepared exterior ring.
    pub fn exterior(&self) -> &PreparedRing {
        &self.exterior
    }

    /// The prepared hole rings.
    pub fn holes(&self) -> &[PreparedRing] {
        &self.holes
    }

    /// Locates `p` relative to the polygon (holes handled). Bit-identical
    /// to [`locate_in_polygon`](crate::algorithms::locate::locate_in_polygon):
    /// same envelope reject, same ring order, same hole short-circuits.
    pub fn locate(&self, p: Coord) -> Location {
        if !self.env.contains_coord(p) {
            return Location::Exterior;
        }
        match self.exterior.locate(p) {
            Location::Exterior => Location::Exterior,
            Location::Boundary => Location::Boundary,
            Location::Interior => {
                for hole in &self.holes {
                    match hole.locate(p) {
                        Location::Interior => return Location::Exterior,
                        Location::Boundary => return Location::Boundary,
                        Location::Exterior => {}
                    }
                }
                Location::Interior
            }
        }
    }

    /// Calls `f` with every boundary edge (all rings) whose envelope
    /// intersects `qenv` — a superset filter, see
    /// [`ChainSet::for_candidate_edges`].
    pub fn for_boundary_candidates(&self, qenv: &Envelope, f: &mut dyn FnMut(Coord, Coord)) {
        self.exterior.chains.for_candidate_edges(qenv, f);
        for hole in &self.holes {
            hole.chains.for_candidate_edges(qenv, f);
        }
    }

    /// Splits `line` by the polygon's boundary and classifies the pieces.
    /// Bit-identical to
    /// [`split_line_by_polygon`](crate::algorithms::line_split::split_line_by_polygon):
    /// both run the same splitting core; this one feeds it indexed
    /// candidate edges and the indexed locator.
    pub fn split_line(&self, line: &LineString) -> Vec<LinePortion> {
        split_line_core(
            line,
            &self.env,
            |seg_env, f| self.for_boundary_candidates(seg_env, f),
            |p| self.locate(p),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::line_split::split_line_by_polygon;
    use crate::algorithms::locate::{locate_in_polygon, locate_in_ring};

    /// Tiny deterministic generator (xorshift64*), no external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        /// Uniform in `[0, n)`.
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A star-shaped ring with `n` vertices on a deterministic jittered
    /// radius, grid-snapped so collinear and boundary-touching probes
    /// actually occur.
    fn star_ring(rng: &mut Rng, n: usize) -> Ring {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let ang = (i as f64) / (n as f64) * std::f64::consts::TAU;
                let r = 8.0 + (rng.below(64) as f64) / 8.0;
                // Snap to a 0.25 grid: exact arithmetic, collinear runs.
                let x = (r * ang.cos() * 4.0).round() / 4.0;
                let y = (r * ang.sin() * 4.0).round() / 4.0;
                (x, y)
            })
            .collect();
        Ring::from_xy(&pts).expect("valid ring")
    }

    #[test]
    fn convex_ring_has_few_chains() {
        let pts: Vec<(f64, f64)> = (0..64)
            .map(|i| {
                let ang = (i as f64) / 64.0 * std::f64::consts::TAU;
                (10.0 * ang.cos(), 10.0 * ang.sin())
            })
            .collect();
        let ring = Ring::from_xy(&pts).unwrap();
        let chains = ChainSet::new(ring.coords());
        assert!(chains.num_chains() <= 5, "convex ring split into {}", chains.num_chains());
    }

    #[test]
    fn candidates_are_a_superset_of_env_intersecting_edges() {
        let mut rng = Rng(0x5eed_0001);
        for _ in 0..20 {
            let ring = star_ring(&mut rng, 40);
            let chains = ChainSet::new(ring.coords());
            for _ in 0..50 {
                let x0 = (rng.below(120) as f64) / 4.0 - 15.0;
                let y0 = (rng.below(120) as f64) / 4.0 - 15.0;
                let qenv = Envelope::new(x0, y0, x0 + 3.0, y0 + 2.0);
                let mut got: Vec<(Coord, Coord)> = Vec::new();
                chains.for_candidate_edges(&qenv, &mut |a, b| got.push((a, b)));
                for (a, b) in ring.segments() {
                    let eenv = Envelope::from_coords([a, b].iter());
                    if eenv.intersects(&qenv) {
                        assert!(
                            got.contains(&(a, b)),
                            "edge {a:?}-{b:?} missing for window {qenv:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_ring_locate_matches_naive() {
        let mut rng = Rng(0x5eed_0002);
        for _ in 0..20 {
            let ring = star_ring(&mut rng, 48);
            let prepared = PreparedRing::new(&ring);
            // Grid probes (hits vertices and edges exactly) plus every vertex.
            let mut probes: Vec<Coord> = Vec::new();
            for ix in -60..=60 {
                for iy in -60..=60 {
                    probes.push(Coord::new(ix as f64 / 4.0, iy as f64 / 4.0));
                }
            }
            probes.extend_from_slice(ring.coords());
            for p in probes {
                assert_eq!(
                    prepared.locate(p),
                    locate_in_ring(p, ring.coords()),
                    "probe {p:?} disagrees"
                );
            }
        }
    }

    #[test]
    fn prepared_polygon_locate_matches_naive_with_holes() {
        let outer = Ring::from_xy(&[(0.0, 0.0), (16.0, 0.0), (16.0, 16.0), (0.0, 16.0)]).unwrap();
        let h1 = Ring::from_xy(&[(2.0, 2.0), (6.0, 2.0), (6.0, 6.0), (2.0, 6.0)]).unwrap();
        let h2 = Ring::from_xy(&[(8.0, 8.0), (14.0, 8.0), (14.0, 14.0), (8.0, 14.0)]).unwrap();
        let poly = Polygon::new(outer, vec![h1, h2]);
        let prepared = PreparedPolygon::new(&poly);
        for ix in -4..=68 {
            for iy in -4..=68 {
                let p = Coord::new(ix as f64 / 4.0, iy as f64 / 4.0);
                assert_eq!(prepared.locate(p), locate_in_polygon(p, &poly), "probe {p:?}");
            }
        }
    }

    #[test]
    fn prepared_split_line_matches_naive() {
        let mut rng = Rng(0x5eed_0003);
        for _ in 0..10 {
            let ring = star_ring(&mut rng, 32);
            let poly = Polygon::new(ring, vec![]);
            let prepared = PreparedPolygon::new(&poly);
            for _ in 0..20 {
                let x0 = (rng.below(160) as f64) / 4.0 - 20.0;
                let y0 = (rng.below(160) as f64) / 4.0 - 20.0;
                let x1 = (rng.below(160) as f64) / 4.0 - 20.0;
                let y1 = (rng.below(160) as f64) / 4.0 - 20.0;
                if x0 == x1 && y0 == y1 {
                    continue;
                }
                let line =
                    LineString::from_xy(&[(x0, y0), (x1, y1), (x1 + 2.0, y1 + 0.5)]).unwrap();
                assert_eq!(
                    prepared.split_line(&line),
                    split_line_by_polygon(&line, &poly),
                    "line ({x0},{y0})-({x1},{y1}) split differs"
                );
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = ChainSet::new(&[]);
        assert_eq!(empty.num_chains(), 0);
        let mut hits = 0;
        empty.for_candidate_edges(&Envelope::new(0.0, 0.0, 1.0, 1.0), &mut |_, _| hits += 1);
        assert_eq!(hits, 0);

        // A horizontal ring envelope (degenerate height) is impossible for
        // a valid Ring, but a flat-ish one exercises the single-bin path.
        let flat = Ring::from_xy(&[(0.0, 0.0), (8.0, 0.0), (8.0, 0.25), (0.0, 0.25)]).unwrap();
        let prepared = PreparedRing::new(&flat);
        assert_eq!(prepared.locate(Coord::new(4.0, 0.125)), Location::Interior);
        assert_eq!(prepared.locate(Coord::new(4.0, 0.25)), Location::Boundary);
        assert_eq!(prepared.locate(Coord::new(4.0, 1.0)), Location::Exterior);
    }
}
