//! Well-Known Text reading and writing for all seven geometry types.
//!
//! The parser is a hand-rolled recursive-descent scanner that accepts the
//! OGC grammar (case-insensitive keywords, `EMPTY` at any level, optional
//! whitespace) and reports byte-accurate error positions. The writer
//! produces canonical upper-case WKT with minimal float formatting.

use crate::polygon::Ring;
use crate::{
    Coord, GeomError, Geometry, GeometryCollection, LineString, MultiLineString, MultiPoint,
    MultiPolygon, Point, Polygon, Result,
};
use std::fmt::Write as _;

/// Parses a WKT string into a [`Geometry`].
pub fn parse(input: &str) -> Result<Geometry> {
    let mut p = Parser { input, pos: 0 };
    let g = p.parse_geometry()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after geometry"));
    }
    Ok(g)
}

/// Serializes a [`Geometry`] to canonical WKT.
pub fn write(g: &Geometry) -> String {
    let mut s = String::new();
    write_geometry(g, &mut s);
    s
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn fmt_f64(v: f64, out: &mut String) {
    // Integral values print without a trailing ".0" to match common WKT.
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_coord(c: Coord, out: &mut String) {
    fmt_f64(c.x, out);
    out.push(' ');
    fmt_f64(c.y, out);
}

fn write_coord_seq(coords: &[Coord], out: &mut String) {
    out.push('(');
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_coord(*c, out);
    }
    out.push(')');
}

fn write_polygon_body(p: &Polygon, out: &mut String) {
    out.push('(');
    write_coord_seq(p.exterior().coords(), out);
    for h in p.holes() {
        out.push_str(", ");
        write_coord_seq(h.coords(), out);
    }
    out.push(')');
}

fn write_geometry(g: &Geometry, out: &mut String) {
    match g {
        Geometry::Point(p) => match p.coord() {
            None => out.push_str("POINT EMPTY"),
            Some(c) => {
                out.push_str("POINT (");
                write_coord(c, out);
                out.push(')');
            }
        },
        Geometry::LineString(l) => {
            if l.is_empty() {
                out.push_str("LINESTRING EMPTY");
            } else {
                out.push_str("LINESTRING ");
                write_coord_seq(l.coords(), out);
            }
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON ");
            write_polygon_body(p, out);
        }
        Geometry::MultiPoint(m) => {
            if m.0.is_empty() {
                out.push_str("MULTIPOINT EMPTY");
            } else {
                out.push_str("MULTIPOINT (");
                for (i, p) in m.0.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    match p.coord() {
                        None => out.push_str("EMPTY"),
                        Some(c) => {
                            out.push('(');
                            write_coord(c, out);
                            out.push(')');
                        }
                    }
                }
                out.push(')');
            }
        }
        Geometry::MultiLineString(m) => {
            if m.0.is_empty() {
                out.push_str("MULTILINESTRING EMPTY");
            } else {
                out.push_str("MULTILINESTRING (");
                for (i, l) in m.0.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_coord_seq(l.coords(), out);
                }
                out.push(')');
            }
        }
        Geometry::MultiPolygon(m) => {
            if m.0.is_empty() {
                out.push_str("MULTIPOLYGON EMPTY");
            } else {
                out.push_str("MULTIPOLYGON (");
                for (i, p) in m.0.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_polygon_body(p, out);
                }
                out.push(')');
            }
        }
        Geometry::GeometryCollection(c) => {
            if c.0.is_empty() {
                out.push_str("GEOMETRYCOLLECTION EMPTY");
            } else {
                out.push_str("GEOMETRYCOLLECTION (");
                for (i, g) in c.0.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_geometry(g, out);
                }
                out.push(')');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> GeomError {
        GeomError::WktParse { position: self.pos, message: msg.to_string() }
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn eat(&mut self, ch: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", ch as char)))
        }
    }

    fn try_eat(&mut self, ch: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Reads an identifier (letters only) and upper-cases it.
    fn keyword(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.bytes()[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a keyword"));
        }
        Ok(self.input[start..self.pos].to_ascii_uppercase())
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            // Must not be followed by another letter.
            let after = rest.as_bytes().get(kw.len());
            if after.is_none_or(|b| !b.is_ascii_alphabetic()) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.bytes();
        let mut i = self.pos;
        if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
            i += 1;
        }
        let mut saw_digit = false;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
            saw_digit |= bytes[i].is_ascii_digit();
            i += 1;
        }
        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
            i += 1;
            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                i += 1;
            }
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
        if !saw_digit {
            return Err(self.err("expected a number"));
        }
        let text = &self.input[start..i];
        self.pos = i;
        text.parse::<f64>().map_err(|_| self.err("malformed number"))
    }

    fn coord(&mut self) -> Result<Coord> {
        let x = self.number()?;
        let y = self.number()?;
        let c = Coord::new(x, y);
        if !c.is_finite() {
            return Err(self.err("non-finite coordinate"));
        }
        Ok(c)
    }

    fn coord_seq(&mut self) -> Result<Vec<Coord>> {
        self.eat(b'(')?;
        let mut out = vec![self.coord()?];
        while self.try_eat(b',') {
            out.push(self.coord()?);
        }
        self.eat(b')')?;
        Ok(out)
    }

    fn parse_geometry(&mut self) -> Result<Geometry> {
        let kw = self.keyword()?;
        match kw.as_str() {
            "POINT" => {
                if self.try_keyword("EMPTY") {
                    return Ok(Geometry::Point(Point::empty()));
                }
                self.eat(b'(')?;
                let c = self.coord()?;
                self.eat(b')')?;
                Ok(Geometry::Point(Point::from_coord(c)?))
            }
            "LINESTRING" => {
                if self.try_keyword("EMPTY") {
                    return Ok(Geometry::LineString(LineString::empty()));
                }
                Ok(Geometry::LineString(LineString::new(self.coord_seq()?)?))
            }
            "POLYGON" => {
                if self.try_keyword("EMPTY") {
                    return Err(self
                        .err("POLYGON EMPTY is not representable; use GEOMETRYCOLLECTION EMPTY"));
                }
                Ok(Geometry::Polygon(self.polygon_body()?))
            }
            "MULTIPOINT" => {
                if self.try_keyword("EMPTY") {
                    return Ok(Geometry::MultiPoint(MultiPoint(Vec::new())));
                }
                self.eat(b'(')?;
                let mut pts = vec![self.multipoint_member()?];
                while self.try_eat(b',') {
                    pts.push(self.multipoint_member()?);
                }
                self.eat(b')')?;
                Ok(Geometry::MultiPoint(MultiPoint(pts)))
            }
            "MULTILINESTRING" => {
                if self.try_keyword("EMPTY") {
                    return Ok(Geometry::MultiLineString(MultiLineString(Vec::new())));
                }
                self.eat(b'(')?;
                let mut ls = vec![LineString::new(self.coord_seq()?)?];
                while self.try_eat(b',') {
                    ls.push(LineString::new(self.coord_seq()?)?);
                }
                self.eat(b')')?;
                Ok(Geometry::MultiLineString(MultiLineString(ls)))
            }
            "MULTIPOLYGON" => {
                if self.try_keyword("EMPTY") {
                    return Ok(Geometry::MultiPolygon(MultiPolygon(Vec::new())));
                }
                self.eat(b'(')?;
                let mut ps = vec![self.polygon_body()?];
                while self.try_eat(b',') {
                    ps.push(self.polygon_body()?);
                }
                self.eat(b')')?;
                Ok(Geometry::MultiPolygon(MultiPolygon(ps)))
            }
            "GEOMETRYCOLLECTION" => {
                if self.try_keyword("EMPTY") {
                    return Ok(Geometry::GeometryCollection(GeometryCollection(Vec::new())));
                }
                self.eat(b'(')?;
                let mut gs = vec![self.parse_geometry()?];
                while self.try_eat(b',') {
                    gs.push(self.parse_geometry()?);
                }
                self.eat(b')')?;
                Ok(Geometry::GeometryCollection(GeometryCollection(gs)))
            }
            other => Err(self.err(&format!("unknown geometry keyword '{other}'"))),
        }
    }

    /// `(x y)` or bare `x y` (both appear in the wild) or `EMPTY`.
    fn multipoint_member(&mut self) -> Result<Point> {
        if self.try_keyword("EMPTY") {
            return Ok(Point::empty());
        }
        if self.try_eat(b'(') {
            let c = self.coord()?;
            self.eat(b')')?;
            Point::from_coord(c)
        } else {
            let c = self.coord()?;
            Point::from_coord(c)
        }
    }

    fn polygon_body(&mut self) -> Result<Polygon> {
        self.eat(b'(')?;
        let exterior = Ring::new(self.coord_seq()?)?;
        let mut holes = Vec::new();
        while self.try_eat(b',') {
            holes.push(Ring::new(self.coord_seq()?)?);
        }
        self.eat(b')')?;
        Ok(Polygon::new(exterior, holes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(wkt: &str) {
        let g = parse(wkt).unwrap();
        let out = write(&g);
        let g2 = parse(&out).unwrap();
        assert_eq!(g, g2, "roundtrip mismatch for {wkt}");
    }

    #[test]
    fn parse_point() {
        match parse("POINT (1.5 -2)").unwrap() {
            Geometry::Point(p) => {
                assert_eq!(p.x(), Some(1.5));
                assert_eq!(p.y(), Some(-2.0));
            }
            other => panic!("expected point, got {other:?}"),
        }
        assert!(matches!(parse("point(1 2)").unwrap(), Geometry::Point(_)));
        assert!(parse("POINT EMPTY").unwrap().is_empty());
    }

    #[test]
    fn parse_linestring_and_polygon() {
        roundtrip("LINESTRING (0 0, 1 1, 2 0)");
        roundtrip("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        roundtrip("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
    }

    #[test]
    fn parse_multis() {
        roundtrip("MULTIPOINT ((0 0), (1 1))");
        // Bare-coordinate multipoint variant.
        match parse("MULTIPOINT (0 0, 1 1)").unwrap() {
            Geometry::MultiPoint(m) => assert_eq!(m.0.len(), 2),
            other => panic!("expected multipoint, got {other:?}"),
        }
        roundtrip("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))");
        roundtrip("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))");
        roundtrip("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))");
        roundtrip("GEOMETRYCOLLECTION EMPTY");
        roundtrip("MULTIPOLYGON EMPTY");
    }

    #[test]
    fn scientific_notation_and_signs() {
        match parse("POINT (1e3 -2.5E-2)").unwrap() {
            Geometry::Point(p) => {
                assert_eq!(p.x(), Some(1000.0));
                assert_eq!(p.y(), Some(-0.025));
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        match parse("POINT (1 )") {
            Err(GeomError::WktParse { position, .. }) => assert!(position >= 8),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("CIRCLE (0 0, 5)").is_err());
        assert!(parse("POINT (1 2) garbage").is_err());
        assert!(parse("LINESTRING (0 0)").is_err()); // single coordinate
        assert!(parse("POLYGON ((0 0, 1 0, 0 0))").is_err()); // degenerate ring
    }

    #[test]
    fn nested_collection() {
        roundtrip("GEOMETRYCOLLECTION (GEOMETRYCOLLECTION (POINT (1 1)), POINT (2 2))");
    }

    #[test]
    fn whitespace_tolerance() {
        let g = parse("  POLYGON  (  ( 0 0 ,4 0,  4 4, 0 4 , 0 0 ) ) ").unwrap();
        assert!(matches!(g, Geometry::Polygon(_)));
    }

    #[test]
    fn writer_formats_integers_compactly() {
        let g = parse("POINT (1 2)").unwrap();
        assert_eq!(write(&g), "POINT (1 2)");
        let g = parse("POINT (1.5 2)").unwrap();
        assert_eq!(write(&g), "POINT (1.5 2)");
    }
}
