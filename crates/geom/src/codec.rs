//! Minimal byte-buffer codec traits over `Vec<u8>` and `&[u8]`.
//!
//! The workspace builds fully offline with zero external crates, so the
//! handful of `bytes::{Buf, BufMut}` operations the codecs need are
//! provided here as extension traits: [`PutBytes`] for appending to a
//! `Vec<u8>` and [`TakeBytes`] for consuming from the front of a
//! `&[u8]` cursor (`data: &mut &[u8]`, as in the `bytes` crate).
//!
//! Readers panic on underflow, exactly like `bytes::Buf`; callers are
//! expected to check [`TakeBytes::remaining`] first, which is what every
//! decoder in the workspace already does.

/// Append-side codec operations on a growable byte buffer.
pub trait PutBytes {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
    /// Appends raw bytes.
    fn put_slice(&mut self, v: &[u8]);
}

impl PutBytes for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Consume-side codec operations on a byte-slice cursor.
///
/// Implemented for `&[u8]`, so a `data: &mut &[u8]` cursor advances past
/// everything it reads.
pub trait TakeBytes {
    /// Bytes left in the cursor.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
}

macro_rules! take_fixed {
    ($self:ident, $ty:ty, $conv:ident) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let (head, tail) = $self.split_at(N);
        let v = <$ty>::$conv(head.try_into().expect("split_at returned N bytes"));
        *$self = tail;
        v
    }};
}

impl TakeBytes for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        take_fixed!(self, u16, from_le_bytes)
    }
    fn get_u32_le(&mut self) -> u32 {
        take_fixed!(self, u32, from_le_bytes)
    }
    fn get_u32(&mut self) -> u32 {
        take_fixed!(self, u32, from_be_bytes)
    }
    fn get_u64_le(&mut self) -> u64 {
        take_fixed!(self, u64, from_le_bytes)
    }
    fn get_i64_le(&mut self) -> i64 {
        take_fixed!(self, i64, from_le_bytes)
    }
    fn get_f64_le(&mut self) -> f64 {
        take_fixed!(self, f64, from_le_bytes)
    }
    fn get_f64(&mut self) -> f64 {
        take_fixed!(self, f64, from_be_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u32(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-12);
        buf.put_f64_le(2.5);
        buf.put_f64(-2.5);
        buf.put_slice(b"ab");

        let mut data: &[u8] = &buf;
        assert_eq!(data.remaining(), buf.len());
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u16_le(), 300);
        assert_eq!(data.get_u32_le(), 70_000);
        assert_eq!(data.get_u32(), 70_000);
        assert_eq!(data.get_u64_le(), 1 << 40);
        assert_eq!(data.get_i64_le(), -12);
        assert_eq!(data.get_f64_le(), 2.5);
        assert_eq!(data.get_f64(), -2.5);
        assert_eq!(data, b"ab");
        data.advance(2);
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    fn little_and_big_endian_differ() {
        let mut le = Vec::new();
        le.put_u32_le(1);
        let mut be = Vec::new();
        be.put_u32(1);
        assert_eq!(le, [1, 0, 0, 0]);
        assert_eq!(be, [0, 0, 0, 1]);
    }
}
