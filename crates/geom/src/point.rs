use crate::{Coord, Envelope, GeomError, Result};

/// A single position, or the empty point.
///
/// OGC Simple Features allows `POINT EMPTY`; we model that with an inner
/// `Option<Coord>` so emptiness is explicit rather than encoded as NaN.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point(pub(crate) Option<Coord>);

impl Point {
    /// Creates a point at `(x, y)`.
    ///
    /// # Errors
    /// Returns [`GeomError::NonFiniteCoordinate`] if either component is
    /// NaN or infinite.
    pub fn new(x: f64, y: f64) -> Result<Point> {
        let c = Coord::new(x, y);
        if !c.is_finite() {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(Point(Some(c)))
    }

    /// Creates the empty point (`POINT EMPTY`).
    #[inline]
    pub const fn empty() -> Point {
        Point(None)
    }

    /// Creates a point from an existing coordinate.
    ///
    /// # Errors
    /// Returns [`GeomError::NonFiniteCoordinate`] for non-finite input.
    pub fn from_coord(c: Coord) -> Result<Point> {
        if !c.is_finite() {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(Point(Some(c)))
    }

    /// The underlying coordinate, or `None` for the empty point.
    #[inline]
    pub fn coord(&self) -> Option<Coord> {
        self.0
    }

    /// `true` for `POINT EMPTY`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// X component; `None` when empty.
    #[inline]
    pub fn x(&self) -> Option<f64> {
        self.0.map(|c| c.x)
    }

    /// Y component; `None` when empty.
    #[inline]
    pub fn y(&self) -> Option<f64> {
        self.0.map(|c| c.y)
    }

    /// Minimum bounding rectangle (empty envelope for the empty point).
    pub fn envelope(&self) -> Envelope {
        match self.0 {
            Some(c) => Envelope::from_coord(c),
            None => Envelope::EMPTY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(1.5, -2.0).unwrap();
        assert_eq!(p.x(), Some(1.5));
        assert_eq!(p.y(), Some(-2.0));
        assert!(!p.is_empty());
        assert_eq!(p.envelope(), Envelope::new(1.5, -2.0, 1.5, -2.0));
    }

    #[test]
    fn empty_point() {
        let p = Point::empty();
        assert!(p.is_empty());
        assert_eq!(p.x(), None);
        assert!(p.envelope().is_empty());
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(Point::new(f64::NAN, 0.0), Err(GeomError::NonFiniteCoordinate));
        assert_eq!(Point::new(0.0, f64::INFINITY), Err(GeomError::NonFiniteCoordinate));
    }
}
