use crate::{
    Envelope, GeometryCollection, LineString, MultiLineString, MultiPoint, MultiPolygon, Point,
    Polygon,
};

/// The topological dimension of a geometry or of an intersection-matrix
/// cell, following the DE-9IM convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dimension {
    /// The empty set (written `F` in DE-9IM patterns, value −1 in OGC).
    Empty,
    /// Zero-dimensional: points.
    Zero,
    /// One-dimensional: curves.
    One,
    /// Two-dimensional: surfaces.
    Two,
}

impl Dimension {
    /// The larger of two dimensions (used when combining components).
    #[inline]
    pub fn max(self, other: Dimension) -> Dimension {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// OGC integer encoding: −1, 0, 1, 2.
    pub fn as_i32(self) -> i32 {
        match self {
            Dimension::Empty => -1,
            Dimension::Zero => 0,
            Dimension::One => 1,
            Dimension::Two => 2,
        }
    }

    /// The DE-9IM pattern character: `F`, `0`, `1` or `2`.
    pub fn as_char(self) -> char {
        match self {
            Dimension::Empty => 'F',
            Dimension::Zero => '0',
            Dimension::One => '1',
            Dimension::Two => '2',
        }
    }
}

/// Discriminant of the seven Simple Features geometry types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GeometryType {
    /// `POINT`
    Point,
    /// `LINESTRING`
    LineString,
    /// `POLYGON`
    Polygon,
    /// `MULTIPOINT`
    MultiPoint,
    /// `MULTILINESTRING`
    MultiLineString,
    /// `MULTIPOLYGON`
    MultiPolygon,
    /// `GEOMETRYCOLLECTION`
    GeometryCollection,
}

impl GeometryType {
    /// The WKT keyword for this type.
    pub fn wkt_keyword(self) -> &'static str {
        match self {
            GeometryType::Point => "POINT",
            GeometryType::LineString => "LINESTRING",
            GeometryType::Polygon => "POLYGON",
            GeometryType::MultiPoint => "MULTIPOINT",
            GeometryType::MultiLineString => "MULTILINESTRING",
            GeometryType::MultiPolygon => "MULTIPOLYGON",
            GeometryType::GeometryCollection => "GEOMETRYCOLLECTION",
        }
    }

    /// The WKB type code (1–7).
    pub fn wkb_code(self) -> u32 {
        match self {
            GeometryType::Point => 1,
            GeometryType::LineString => 2,
            GeometryType::Polygon => 3,
            GeometryType::MultiPoint => 4,
            GeometryType::MultiLineString => 5,
            GeometryType::MultiPolygon => 6,
            GeometryType::GeometryCollection => 7,
        }
    }
}

/// The closed sum of all geometry types — what flows through the SQL engine,
/// the indexes and the benchmark.
#[derive(Clone, Debug, PartialEq)]
pub enum Geometry {
    /// A single position.
    Point(Point),
    /// A polyline.
    LineString(LineString),
    /// A surface with optional holes.
    Polygon(Polygon),
    /// Several points.
    MultiPoint(MultiPoint),
    /// Several polylines.
    MultiLineString(MultiLineString),
    /// Several surfaces.
    MultiPolygon(MultiPolygon),
    /// A heterogeneous bag of geometries.
    GeometryCollection(GeometryCollection),
}

impl Geometry {
    /// The type discriminant.
    pub fn geometry_type(&self) -> GeometryType {
        match self {
            Geometry::Point(_) => GeometryType::Point,
            Geometry::LineString(_) => GeometryType::LineString,
            Geometry::Polygon(_) => GeometryType::Polygon,
            Geometry::MultiPoint(_) => GeometryType::MultiPoint,
            Geometry::MultiLineString(_) => GeometryType::MultiLineString,
            Geometry::MultiPolygon(_) => GeometryType::MultiPolygon,
            Geometry::GeometryCollection(_) => GeometryType::GeometryCollection,
        }
    }

    /// `true` when the geometry contains no point of the plane.
    pub fn is_empty(&self) -> bool {
        match self {
            Geometry::Point(p) => p.is_empty(),
            Geometry::LineString(l) => l.is_empty(),
            Geometry::Polygon(_) => false, // a valid polygon always has area
            Geometry::MultiPoint(m) => m.is_empty(),
            Geometry::MultiLineString(m) => m.is_empty(),
            Geometry::MultiPolygon(m) => m.is_empty(),
            Geometry::GeometryCollection(c) => c.is_empty(),
        }
    }

    /// Topological dimension of the point set ([`Dimension::Empty`] for
    /// empty geometries; the max over members for collections).
    pub fn dimension(&self) -> Dimension {
        match self {
            Geometry::Point(p) => {
                if p.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Zero
                }
            }
            Geometry::LineString(l) => {
                if l.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::One
                }
            }
            Geometry::Polygon(_) => Dimension::Two,
            Geometry::MultiPoint(m) => {
                if m.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Zero
                }
            }
            Geometry::MultiLineString(m) => {
                if m.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::One
                }
            }
            Geometry::MultiPolygon(m) => {
                if m.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Two
                }
            }
            Geometry::GeometryCollection(c) => {
                c.0.iter().map(Geometry::dimension).fold(Dimension::Empty, Dimension::max)
            }
        }
    }

    /// Minimum bounding rectangle.
    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => p.envelope(),
            Geometry::LineString(l) => l.envelope(),
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPoint(m) => m.envelope(),
            Geometry::MultiLineString(m) => m.envelope(),
            Geometry::MultiPolygon(m) => m.envelope(),
            Geometry::GeometryCollection(c) => c.envelope(),
        }
    }

    /// The combinatorial boundary per Simple Features:
    /// * point / multipoint → empty collection,
    /// * linestring → its two endpoints (empty if closed),
    /// * multilinestring → endpoints occurring an odd number of times
    ///   (the "mod-2" rule),
    /// * polygon → its rings as a multilinestring,
    /// * collections → boundaries of the members.
    pub fn boundary(&self) -> Geometry {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => {
                Geometry::GeometryCollection(GeometryCollection(Vec::new()))
            }
            Geometry::LineString(l) => boundary_of_lines(std::slice::from_ref(l)),
            Geometry::MultiLineString(m) => boundary_of_lines(&m.0),
            Geometry::Polygon(p) => Geometry::MultiLineString(MultiLineString(
                p.rings().map(|r| r.to_linestring()).collect(),
            )),
            Geometry::MultiPolygon(m) => Geometry::MultiLineString(MultiLineString(
                m.0.iter().flat_map(|p| p.rings().map(|r| r.to_linestring())).collect(),
            )),
            Geometry::GeometryCollection(c) => Geometry::GeometryCollection(GeometryCollection(
                c.0.iter().map(Geometry::boundary).collect(),
            )),
        }
    }

    /// Total number of coordinates in the geometry (closing repeats counted).
    pub fn num_coords(&self) -> usize {
        match self {
            Geometry::Point(p) => usize::from(!p.is_empty()),
            Geometry::LineString(l) => l.num_coords(),
            Geometry::Polygon(p) => p.rings().map(|r| r.num_coords()).sum(),
            Geometry::MultiPoint(m) => m.0.iter().filter(|p| !p.is_empty()).count(),
            Geometry::MultiLineString(m) => m.0.iter().map(LineString::num_coords).sum(),
            Geometry::MultiPolygon(m) => {
                m.0.iter().map(|p| p.rings().map(|r| r.num_coords()).sum::<usize>()).sum()
            }
            Geometry::GeometryCollection(c) => c.0.iter().map(Geometry::num_coords).sum(),
        }
    }
}

/// Boundary of a set of linestrings under the mod-2 rule: an endpoint is on
/// the boundary iff it terminates an odd number of member curves.
fn boundary_of_lines(lines: &[LineString]) -> Geometry {
    use crate::Coord;
    let mut counts: Vec<(Coord, usize)> = Vec::new();
    let mut bump = |c: Coord| {
        if let Some(entry) = counts.iter_mut().find(|(k, _)| *k == c) {
            entry.1 += 1;
        } else {
            counts.push((c, 1));
        }
    };
    for l in lines {
        if l.is_empty() || l.is_closed() {
            continue;
        }
        if let (Some(s), Some(e)) = (l.start(), l.end()) {
            bump(s);
            bump(e);
        }
    }
    let pts: Vec<Point> =
        counts.into_iter().filter(|&(_, n)| n % 2 == 1).map(|(c, _)| Point(Some(c))).collect();
    Geometry::MultiPoint(MultiPoint(pts))
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Geometry {
        Geometry::Point(p)
    }
}
impl From<LineString> for Geometry {
    fn from(l: LineString) -> Geometry {
        Geometry::LineString(l)
    }
}
impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Geometry {
        Geometry::Polygon(p)
    }
}
impl From<MultiPoint> for Geometry {
    fn from(m: MultiPoint) -> Geometry {
        Geometry::MultiPoint(m)
    }
}
impl From<MultiLineString> for Geometry {
    fn from(m: MultiLineString) -> Geometry {
        Geometry::MultiLineString(m)
    }
}
impl From<MultiPolygon> for Geometry {
    fn from(m: MultiPolygon) -> Geometry {
        Geometry::MultiPolygon(m)
    }
}
impl From<GeometryCollection> for Geometry {
    fn from(c: GeometryCollection) -> Geometry {
        Geometry::GeometryCollection(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    fn square() -> Polygon {
        Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    #[test]
    fn dimensions() {
        assert_eq!(Geometry::from(Point::new(0.0, 0.0).unwrap()).dimension(), Dimension::Zero);
        assert_eq!(Geometry::from(Point::empty()).dimension(), Dimension::Empty);
        assert_eq!(
            Geometry::from(LineString::from_xy(&[(0.0, 0.0), (1.0, 1.0)]).unwrap()).dimension(),
            Dimension::One
        );
        assert_eq!(Geometry::from(square()).dimension(), Dimension::Two);
        let gc = Geometry::GeometryCollection(GeometryCollection(vec![
            Geometry::from(Point::new(0.0, 0.0).unwrap()),
            Geometry::from(square()),
        ]));
        assert_eq!(gc.dimension(), Dimension::Two);
    }

    #[test]
    fn dimension_codes() {
        assert_eq!(Dimension::Empty.as_i32(), -1);
        assert_eq!(Dimension::Two.as_i32(), 2);
        assert_eq!(Dimension::Empty.as_char(), 'F');
        assert_eq!(Dimension::One.as_char(), '1');
        assert_eq!(Dimension::Zero.max(Dimension::One), Dimension::One);
    }

    #[test]
    fn boundary_of_open_line_is_endpoints() {
        let l = LineString::from_xy(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0)]).unwrap();
        match Geometry::from(l).boundary() {
            Geometry::MultiPoint(mp) => {
                assert_eq!(mp.0.len(), 2);
                assert_eq!(mp.0[0].coord(), Some(Coord::new(0.0, 0.0)));
                assert_eq!(mp.0[1].coord(), Some(Coord::new(2.0, 1.0)));
            }
            other => panic!("expected multipoint, got {other:?}"),
        }
    }

    #[test]
    fn boundary_of_closed_line_is_empty() {
        let ring = LineString::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]).unwrap();
        match Geometry::from(ring).boundary() {
            Geometry::MultiPoint(mp) => assert!(mp.0.is_empty()),
            other => panic!("expected multipoint, got {other:?}"),
        }
    }

    #[test]
    fn mod2_boundary_rule() {
        // Two lines sharing an endpoint at (1,0): that point touches twice,
        // so it is NOT on the boundary of the multilinestring.
        let a = LineString::from_xy(&[(0.0, 0.0), (1.0, 0.0)]).unwrap();
        let b = LineString::from_xy(&[(1.0, 0.0), (2.0, 0.0)]).unwrap();
        match Geometry::MultiLineString(MultiLineString(vec![a, b])).boundary() {
            Geometry::MultiPoint(mp) => {
                let coords: Vec<_> = mp.0.iter().filter_map(Point::coord).collect();
                assert_eq!(coords.len(), 2);
                assert!(coords.contains(&Coord::new(0.0, 0.0)));
                assert!(coords.contains(&Coord::new(2.0, 0.0)));
            }
            other => panic!("expected multipoint, got {other:?}"),
        }
    }

    #[test]
    fn polygon_boundary_is_rings() {
        match Geometry::from(square()).boundary() {
            Geometry::MultiLineString(ml) => {
                assert_eq!(ml.0.len(), 1);
                assert!(ml.0[0].is_closed());
            }
            other => panic!("expected multilinestring, got {other:?}"),
        }
    }

    #[test]
    fn point_boundary_is_empty() {
        let b = Geometry::from(Point::new(1.0, 2.0).unwrap()).boundary();
        assert!(b.is_empty());
    }

    #[test]
    fn num_coords_counts_everything() {
        assert_eq!(Geometry::from(square()).num_coords(), 5);
        assert_eq!(Geometry::from(Point::empty()).num_coords(), 0);
    }

    #[test]
    fn type_metadata() {
        assert_eq!(GeometryType::Polygon.wkt_keyword(), "POLYGON");
        assert_eq!(GeometryType::MultiPolygon.wkb_code(), 6);
        assert_eq!(Geometry::from(square()).geometry_type(), GeometryType::Polygon);
    }
}
