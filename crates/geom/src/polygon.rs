use crate::{Coord, Envelope, GeomError, LineString, Result};

/// A closed ring of coordinates: first and last coincide, at least four
/// entries (a triangle plus the closing repeat).
///
/// Rings are the building blocks of [`Polygon`]. On construction the
/// orientation is *not* changed; [`Polygon::new`] normalizes its rings
/// (exterior counter-clockwise, holes clockwise).
#[derive(Clone, Debug, PartialEq)]
pub struct Ring {
    coords: Vec<Coord>,
}

impl Ring {
    /// Builds a ring, validating closure, minimum size, finiteness and the
    /// absence of consecutive duplicates and of zero area.
    ///
    /// # Errors
    /// [`GeomError::InvalidGeometry`] when any invariant is violated.
    pub fn new(coords: Vec<Coord>) -> Result<Ring> {
        if coords.len() < 4 {
            return Err(GeomError::InvalidGeometry(
                "ring needs at least 4 coordinates (closed triangle)".into(),
            ));
        }
        if coords.first() != coords.last() {
            return Err(GeomError::InvalidGeometry("ring is not closed".into()));
        }
        for w in coords.windows(2) {
            if w[0] == w[1] {
                return Err(GeomError::InvalidGeometry(
                    "ring has consecutive duplicate coordinates".into(),
                ));
            }
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let ring = Ring { coords };
        if ring.signed_area() == 0.0 {
            return Err(GeomError::InvalidGeometry("ring has zero area".into()));
        }
        Ok(ring)
    }

    /// Builds a ring from `(x, y)` pairs, closing it automatically if the
    /// last pair does not repeat the first.
    pub fn from_xy(pairs: &[(f64, f64)]) -> Result<Ring> {
        let mut coords: Vec<Coord> = pairs.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        if !coords.is_empty() && coords.first() != coords.last() {
            coords.push(coords[0]);
        }
        Ring::new(coords)
    }

    /// Coordinate slice, first == last.
    #[inline]
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Number of coordinates including the closing repeat.
    #[inline]
    pub fn num_coords(&self) -> usize {
        self.coords.len()
    }

    /// Iterator over the ring's edges.
    pub fn segments(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.coords.windows(2).map(|w| (w[0], w[1]))
    }

    /// Shoelace signed area: positive for counter-clockwise rings.
    pub fn signed_area(&self) -> f64 {
        let mut acc = 0.0;
        for (a, b) in self.segments() {
            acc += a.cross(b);
        }
        acc * 0.5
    }

    /// Absolute enclosed area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// `true` when the ring winds counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Minimum bounding rectangle.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_coords(self.coords.iter())
    }

    /// Returns the ring with reversed winding.
    pub fn reversed(&self) -> Ring {
        let mut coords = self.coords.clone();
        coords.reverse();
        Ring { coords }
    }

    /// The ring as a closed [`LineString`] (used for boundary extraction).
    pub fn to_linestring(&self) -> LineString {
        // Invariant: a valid ring is always a valid linestring.
        LineString::new(self.coords.clone()).expect("valid ring is a valid linestring")
    }
}

/// A polygon: one exterior ring and zero or more interior rings (holes).
///
/// Normalization performed by [`Polygon::new`]: the exterior ring is stored
/// counter-clockwise and every hole clockwise, so downstream algorithms can
/// rely on winding. Hole placement (inside the exterior, non-overlapping)
/// is the data producer's responsibility, as in most spatial databases.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Builds a polygon from an exterior ring and holes, normalizing the
    /// winding of each ring.
    pub fn new(exterior: Ring, holes: Vec<Ring>) -> Polygon {
        let exterior = if exterior.is_ccw() { exterior } else { exterior.reversed() };
        let holes = holes.into_iter().map(|h| if h.is_ccw() { h.reversed() } else { h }).collect();
        Polygon { exterior, holes }
    }

    /// Builds a hole-free polygon from `(x, y)` pairs.
    pub fn from_xy(pairs: &[(f64, f64)]) -> Result<Polygon> {
        Ok(Polygon::new(Ring::from_xy(pairs)?, Vec::new()))
    }

    /// Builds the axis-aligned rectangle polygon of an envelope.
    ///
    /// # Errors
    /// [`GeomError::InvalidGeometry`] if the envelope is empty or degenerate
    /// (zero width or height — a rectangle must enclose area).
    pub fn from_envelope(e: &Envelope) -> Result<Polygon> {
        if e.is_empty() || e.width() == 0.0 || e.height() == 0.0 {
            return Err(GeomError::InvalidGeometry(
                "cannot build a polygon from an empty or degenerate envelope".into(),
            ));
        }
        let mut cs = e.corners();
        cs.push(cs[0]);
        Ok(Polygon::new(Ring::new(cs)?, Vec::new()))
    }

    /// The exterior ring (always counter-clockwise).
    #[inline]
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior rings (always clockwise).
    #[inline]
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Enclosed area: exterior area minus hole areas.
    pub fn area(&self) -> f64 {
        let holes: f64 = self.holes.iter().map(Ring::area).sum();
        (self.exterior.area() - holes).max(0.0)
    }

    /// Total boundary length (exterior plus holes).
    pub fn perimeter(&self) -> f64 {
        self.exterior.perimeter() + self.holes.iter().map(Ring::perimeter).sum::<f64>()
    }

    /// Minimum bounding rectangle (the exterior's).
    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }

    /// All rings: exterior first, then holes.
    pub fn rings(&self) -> impl Iterator<Item = &Ring> {
        std::iter::once(&self.exterior).chain(self.holes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    #[test]
    fn ring_validation() {
        assert!(Ring::from_xy(&[(0.0, 0.0), (1.0, 0.0)]).is_err());
        // collinear degenerate ring (zero area)
        assert!(Ring::from_xy(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]).is_err());
        let open = vec![
            Coord::new(0.0, 0.0),
            Coord::new(1.0, 0.0),
            Coord::new(1.0, 1.0),
            Coord::new(0.5, 0.5),
        ];
        assert!(Ring::new(open).is_err());
    }

    #[test]
    fn ring_auto_close_and_area() {
        let r = Ring::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]).unwrap();
        assert_eq!(r.num_coords(), 5);
        assert_eq!(r.signed_area(), 4.0);
        assert!(r.is_ccw());
        assert_eq!(r.reversed().signed_area(), -4.0);
        assert_eq!(r.perimeter(), 8.0);
    }

    #[test]
    fn polygon_normalizes_winding() {
        // clockwise exterior input
        let cw = Ring::from_xy(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]).unwrap();
        assert!(!cw.is_ccw());
        let p = Polygon::new(cw, Vec::new());
        assert!(p.exterior().is_ccw());

        let hole_ccw =
            Ring::from_xy(&[(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]).unwrap();
        let outer = Ring::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap();
        let p = Polygon::new(outer, vec![hole_ccw]);
        assert!(!p.holes()[0].is_ccw());
    }

    #[test]
    fn polygon_area_subtracts_holes() {
        let outer = Ring::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap();
        let hole = Ring::from_xy(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]).unwrap();
        let p = Polygon::new(outer, vec![hole]);
        assert_eq!(p.area(), 15.0);
        assert_eq!(p.perimeter(), 16.0 + 4.0);
    }

    #[test]
    fn polygon_from_envelope() {
        let e = Envelope::new(0.0, 0.0, 2.0, 3.0);
        let p = Polygon::from_envelope(&e).unwrap();
        assert_eq!(p.area(), 6.0);
        assert!(Polygon::from_envelope(&Envelope::EMPTY).is_err());
        assert!(Polygon::from_envelope(&Envelope::new(1.0, 1.0, 1.0, 5.0)).is_err());
    }

    #[test]
    fn envelope_of_polygon() {
        assert_eq!(unit_square().envelope(), Envelope::new(0.0, 0.0, 1.0, 1.0));
    }
}
