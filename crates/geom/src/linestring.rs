use crate::{Coord, Envelope, GeomError, Result};

/// A polyline: an ordered sequence of two or more coordinates, or empty.
///
/// Invariants enforced at construction:
/// * either zero coordinates (`LINESTRING EMPTY`) or at least two,
/// * every coordinate finite,
/// * no two *consecutive* coordinates identical (repeated points carry no
///   geometric information and break several algorithms).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineString {
    coords: Vec<Coord>,
}

impl LineString {
    /// Builds a linestring from a coordinate sequence.
    ///
    /// Consecutive duplicate coordinates are rejected rather than silently
    /// dropped so that callers notice malformed data.
    ///
    /// # Errors
    /// [`GeomError::InvalidGeometry`] for a single-coordinate input or
    /// consecutive duplicates; [`GeomError::NonFiniteCoordinate`] for
    /// NaN/infinite components.
    pub fn new(coords: Vec<Coord>) -> Result<LineString> {
        if coords.len() == 1 {
            return Err(GeomError::InvalidGeometry(
                "linestring needs at least 2 coordinates (or 0 for EMPTY)".into(),
            ));
        }
        for w in coords.windows(2) {
            if w[0] == w[1] {
                return Err(GeomError::InvalidGeometry(
                    "linestring has consecutive duplicate coordinates".into(),
                ));
            }
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(LineString { coords })
    }

    /// Builds a linestring from `(x, y)` pairs. Convenience for tests and
    /// data generation.
    pub fn from_xy(pairs: &[(f64, f64)]) -> Result<LineString> {
        LineString::new(pairs.iter().map(|&(x, y)| Coord::new(x, y)).collect())
    }

    /// The empty linestring.
    #[inline]
    pub fn empty() -> LineString {
        LineString { coords: Vec::new() }
    }

    /// Coordinate slice (empty slice for `LINESTRING EMPTY`).
    #[inline]
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Number of coordinates.
    #[inline]
    pub fn num_coords(&self) -> usize {
        self.coords.len()
    }

    /// `true` for `LINESTRING EMPTY`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// `true` when the first and last coordinates coincide (a ring-shaped
    /// line). Empty linestrings are not closed.
    pub fn is_closed(&self) -> bool {
        match (self.coords.first(), self.coords.last()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// First coordinate, if any.
    #[inline]
    pub fn start(&self) -> Option<Coord> {
        self.coords.first().copied()
    }

    /// Last coordinate, if any.
    #[inline]
    pub fn end(&self) -> Option<Coord> {
        self.coords.last().copied()
    }

    /// Iterator over the line's segments as coordinate pairs.
    pub fn segments(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.coords.windows(2).map(|w| (w[0], w[1]))
    }

    /// Minimum bounding rectangle.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_coords(self.coords.iter())
    }

    /// Sum of segment lengths.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Returns a copy with the coordinate order reversed.
    pub fn reversed(&self) -> LineString {
        let mut coords = self.coords.clone();
        coords.reverse();
        LineString { coords }
    }

    /// The point at parametric distance `d` along the line (clamped to the
    /// endpoints). `None` for the empty linestring.
    pub fn interpolate(&self, d: f64) -> Option<Coord> {
        let first = self.coords.first()?;
        if d <= 0.0 {
            return Some(*first);
        }
        let mut remaining = d;
        for (a, b) in self.segments() {
            let seg = a.distance(b);
            if remaining <= seg {
                return Some(a.lerp(b, remaining / seg));
            }
            remaining -= seg;
        }
        self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(pairs: &[(f64, f64)]) -> LineString {
        LineString::from_xy(pairs).unwrap()
    }

    #[test]
    fn construction_invariants() {
        assert!(LineString::from_xy(&[(0.0, 0.0)]).is_err());
        assert!(LineString::from_xy(&[(0.0, 0.0), (0.0, 0.0)]).is_err());
        assert!(LineString::from_xy(&[(0.0, 0.0), (1.0, 1.0), (1.0, 1.0)]).is_err());
        assert!(LineString::from_xy(&[]).unwrap().is_empty());
        assert!(LineString::new(vec![Coord::new(f64::NAN, 0.0), Coord::new(1.0, 1.0)]).is_err());
    }

    #[test]
    fn closedness() {
        let open = line(&[(0.0, 0.0), (1.0, 0.0)]);
        assert!(!open.is_closed());
        let ring = line(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        assert!(ring.is_closed());
        assert!(!LineString::empty().is_closed());
    }

    #[test]
    fn length_and_segments() {
        let l = line(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(l.length(), 7.0);
        assert_eq!(l.segments().count(), 2);
        assert_eq!(l.envelope(), Envelope::new(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn interpolation() {
        let l = line(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(l.interpolate(0.0), Some(Coord::new(0.0, 0.0)));
        assert_eq!(l.interpolate(3.0), Some(Coord::new(3.0, 0.0)));
        assert_eq!(l.interpolate(5.0), Some(Coord::new(3.0, 2.0)));
        assert_eq!(l.interpolate(100.0), Some(Coord::new(3.0, 4.0)));
        assert_eq!(LineString::empty().interpolate(1.0), None);
    }

    #[test]
    fn reversal() {
        let l = line(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0)]);
        let r = l.reversed();
        assert_eq!(r.start(), Some(Coord::new(2.0, 1.0)));
        assert_eq!(r.end(), Some(Coord::new(0.0, 0.0)));
        assert_eq!(r.length(), l.length());
    }
}
