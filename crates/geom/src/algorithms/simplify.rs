//! Douglas–Peucker polyline simplification.

use super::distance::point_segment_distance_sq;
use crate::{
    Coord, Geometry, GeometryCollection, LineString, MultiLineString, MultiPolygon, Polygon, Result,
};

/// Simplifies a geometry with the Douglas–Peucker algorithm at the given
/// tolerance (maximum allowed deviation).
///
/// * Points are returned unchanged.
/// * Linestrings keep their endpoints.
/// * Polygon rings are simplified but never below a valid ring; if a ring
///   would collapse, the original ring is kept (the conservative behaviour
///   of `ST_Simplify`'s "preserve" variants).
pub fn simplify(g: &Geometry, tolerance: f64) -> Result<Geometry> {
    if tolerance < 0.0 || !tolerance.is_finite() {
        return Err(crate::GeomError::InvalidArgument(
            "simplify tolerance must be finite and non-negative".into(),
        ));
    }
    Ok(simplify_inner(g, tolerance * tolerance))
}

fn simplify_inner(g: &Geometry, tol_sq: f64) -> Geometry {
    match g {
        Geometry::Point(_) | Geometry::MultiPoint(_) => g.clone(),
        Geometry::LineString(l) => Geometry::LineString(simplify_line(l, tol_sq)),
        Geometry::MultiLineString(m) => Geometry::MultiLineString(MultiLineString(
            m.0.iter().map(|l| simplify_line(l, tol_sq)).collect(),
        )),
        Geometry::Polygon(p) => Geometry::Polygon(simplify_polygon(p, tol_sq)),
        Geometry::MultiPolygon(m) => Geometry::MultiPolygon(MultiPolygon(
            m.0.iter().map(|p| simplify_polygon(p, tol_sq)).collect(),
        )),
        Geometry::GeometryCollection(c) => Geometry::GeometryCollection(GeometryCollection(
            c.0.iter().map(|g| simplify_inner(g, tol_sq)).collect(),
        )),
    }
}

fn simplify_line(l: &LineString, tol_sq: f64) -> LineString {
    let coords = l.coords();
    if coords.len() <= 2 {
        return l.clone();
    }
    let mut keep = vec![false; coords.len()];
    keep[0] = true;
    keep[coords.len() - 1] = true;
    dp_mark(coords, 0, coords.len() - 1, tol_sq, &mut keep);
    let kept: Vec<Coord> = coords.iter().zip(&keep).filter(|(_, &k)| k).map(|(c, _)| *c).collect();
    // Kept endpoints guarantee ≥2 coords and no consecutive duplicates
    // (subsequence of a duplicate-free sequence... except endpoints of a
    // closed line). Fall back to the original on the rare invalid case.
    LineString::new(kept).unwrap_or_else(|_| l.clone())
}

/// Marks, between `lo` and `hi` (both already kept), the vertices that
/// survive at the given squared tolerance. Iterative stack to avoid deep
/// recursion on pathological inputs.
fn dp_mark(coords: &[Coord], lo: usize, hi: usize, tol_sq: f64, keep: &mut [bool]) {
    let mut stack = vec![(lo, hi)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (a, b) = (coords[lo], coords[hi]);
        let mut worst = lo;
        let mut worst_d = -1.0;
        for (i, &c) in coords.iter().enumerate().take(hi).skip(lo + 1) {
            let d = point_segment_distance_sq(c, a, b);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > tol_sq {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
}

fn simplify_polygon(p: &Polygon, tol_sq: f64) -> Polygon {
    let simplify_ring = |r: &crate::polygon::Ring| -> crate::polygon::Ring {
        let line = r.to_linestring();
        let s = simplify_line(&line, tol_sq);
        crate::polygon::Ring::new(s.coords().to_vec()).unwrap_or_else(|_| r.clone())
    };
    Polygon::new(simplify_ring(p.exterior()), p.holes().iter().map(simplify_ring).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_near_collinear_vertices() {
        let l =
            LineString::from_xy(&[(0.0, 0.0), (1.0, 0.01), (2.0, -0.01), (3.0, 0.005), (4.0, 0.0)])
                .unwrap();
        match simplify(&l.into(), 0.1).unwrap() {
            Geometry::LineString(s) => {
                assert_eq!(s.num_coords(), 2);
                assert_eq!(s.start(), Some(Coord::new(0.0, 0.0)));
                assert_eq!(s.end(), Some(Coord::new(4.0, 0.0)));
            }
            other => panic!("expected linestring, got {other:?}"),
        }
    }

    #[test]
    fn keeps_significant_vertices() {
        let l = LineString::from_xy(&[(0.0, 0.0), (2.0, 5.0), (4.0, 0.0)]).unwrap();
        match simplify(&l.into(), 0.1).unwrap() {
            Geometry::LineString(s) => assert_eq!(s.num_coords(), 3),
            other => panic!("expected linestring, got {other:?}"),
        }
    }

    #[test]
    fn zero_tolerance_is_identity_for_general_position() {
        let l = LineString::from_xy(&[(0.0, 0.0), (1.0, 2.0), (3.0, -1.0), (4.0, 4.0)]).unwrap();
        match simplify(&l.clone().into(), 0.0).unwrap() {
            Geometry::LineString(s) => assert_eq!(s, l),
            other => panic!("expected linestring, got {other:?}"),
        }
    }

    #[test]
    fn polygon_ring_never_collapses() {
        let p = Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap();
        // Huge tolerance would collapse the ring; original must survive.
        match simplify(&p.clone().into(), 1000.0).unwrap() {
            Geometry::Polygon(s) => assert_eq!(s.area(), p.area()),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn polygon_detail_reduction() {
        // Octagon-ish ring with tiny wobbles on one edge.
        let p = Polygon::from_xy(&[
            (0.0, 0.0),
            (1.0, 0.001),
            (2.0, -0.001),
            (3.0, 0.0),
            (3.0, 3.0),
            (0.0, 3.0),
        ])
        .unwrap();
        match simplify(&p.into(), 0.01).unwrap() {
            Geometry::Polygon(s) => assert_eq!(s.exterior().num_coords(), 5),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_tolerance() {
        let g: Geometry = Point::new(0.0, 0.0).unwrap().into();
        assert!(simplify(&g, -1.0).is_err());
        assert!(simplify(&g, f64::NAN).is_err());
    }

    use crate::Point;
}
