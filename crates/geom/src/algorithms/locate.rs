//! Point-in-polygon location with exact boundary detection.

use super::orientation::{orient2d, Orientation};
use super::segment::point_on_segment;
use crate::{Coord, Polygon};

/// Where a point lies relative to an areal geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    /// Strictly inside.
    Interior,
    /// Exactly on an edge or vertex.
    Boundary,
    /// Strictly outside.
    Exterior,
}

/// Locates `p` relative to the closed region bounded by `ring` (a closed
/// coordinate sequence, first == last). Winding direction is irrelevant.
///
/// Uses a ray-crossing count whose crossing decisions are made with the
/// robust orientation predicate, so the result is exact for all inputs.
pub fn locate_in_ring(p: Coord, ring: &[Coord]) -> Location {
    debug_assert!(ring.len() >= 4 && ring.first() == ring.last());
    let mut crossings = 0u32;
    for w in ring.windows(2) {
        let (a, b) = (w[0], w[1]);
        if point_on_segment(p, a, b) {
            return Location::Boundary;
        }
        // Half-open vertical span test avoids double-counting shared
        // vertices: upward edges own their start, downward their end.
        let upward = a.y <= p.y && b.y > p.y;
        let downward = b.y <= p.y && a.y > p.y;
        if upward {
            if orient2d(a, b, p) == Orientation::CounterClockwise {
                crossings += 1;
            }
        } else if downward && orient2d(a, b, p) == Orientation::Clockwise {
            crossings += 1;
        }
    }
    if crossings % 2 == 1 {
        Location::Interior
    } else {
        Location::Exterior
    }
}

/// Locates `p` relative to a polygon, treating holes correctly: a point
/// inside a hole is exterior, a point on a hole boundary is boundary.
pub fn locate_in_polygon(p: Coord, poly: &Polygon) -> Location {
    // Cheap envelope reject first.
    if !poly.envelope().contains_coord(p) {
        return Location::Exterior;
    }
    match locate_in_ring(p, poly.exterior().coords()) {
        Location::Exterior => Location::Exterior,
        Location::Boundary => Location::Boundary,
        Location::Interior => {
            for hole in poly.holes() {
                match locate_in_ring(p, hole.coords()) {
                    Location::Interior => return Location::Exterior,
                    Location::Boundary => return Location::Boundary,
                    Location::Exterior => {}
                }
            }
            Location::Interior
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    fn square() -> Vec<Coord> {
        vec![c(0.0, 0.0), c(4.0, 0.0), c(4.0, 4.0), c(0.0, 4.0), c(0.0, 0.0)]
    }

    #[test]
    fn ring_location_basics() {
        let r = square();
        assert_eq!(locate_in_ring(c(2.0, 2.0), &r), Location::Interior);
        assert_eq!(locate_in_ring(c(5.0, 2.0), &r), Location::Exterior);
        assert_eq!(locate_in_ring(c(4.0, 2.0), &r), Location::Boundary);
        assert_eq!(locate_in_ring(c(0.0, 0.0), &r), Location::Boundary);
        assert_eq!(locate_in_ring(c(2.0, 4.0), &r), Location::Boundary);
    }

    #[test]
    fn ray_through_vertex_not_double_counted() {
        // Point whose rightward ray passes exactly through the vertex (4,2)
        // of a diamond. Correct answer: interior.
        let diamond = vec![c(2.0, 0.0), c(4.0, 2.0), c(2.0, 4.0), c(0.0, 2.0), c(2.0, 0.0)];
        assert_eq!(locate_in_ring(c(2.0, 2.0), &diamond), Location::Interior);
        // Exterior point whose ray passes through two vertices ((0,2) and
        // (4,2)): still exterior.
        assert_eq!(locate_in_ring(c(-1.0, 2.0), &diamond), Location::Exterior);
    }

    #[test]
    fn winding_direction_is_irrelevant() {
        let mut r = square();
        r.reverse();
        assert_eq!(locate_in_ring(c(2.0, 2.0), &r), Location::Interior);
        assert_eq!(locate_in_ring(c(5.0, 5.0), &r), Location::Exterior);
    }

    #[test]
    fn polygon_with_hole() {
        let outer = Ring::from_xy(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]).unwrap();
        let hole = Ring::from_xy(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]).unwrap();
        let p = Polygon::new(outer, vec![hole]);
        assert_eq!(locate_in_polygon(c(1.0, 1.0), &p), Location::Interior);
        assert_eq!(locate_in_polygon(c(5.0, 5.0), &p), Location::Exterior); // in hole
        assert_eq!(locate_in_polygon(c(4.0, 5.0), &p), Location::Boundary); // hole edge
        assert_eq!(locate_in_polygon(c(0.0, 5.0), &p), Location::Boundary);
        assert_eq!(locate_in_polygon(c(-1.0, 5.0), &p), Location::Exterior);
    }

    #[test]
    fn concave_ring() {
        // A "U" shape: the notch is exterior.
        let u = vec![
            c(0.0, 0.0),
            c(6.0, 0.0),
            c(6.0, 6.0),
            c(4.0, 6.0),
            c(4.0, 2.0),
            c(2.0, 2.0),
            c(2.0, 6.0),
            c(0.0, 6.0),
            c(0.0, 0.0),
        ];
        assert_eq!(locate_in_ring(c(3.0, 4.0), &u), Location::Exterior); // notch
        assert_eq!(locate_in_ring(c(1.0, 4.0), &u), Location::Interior); // left arm
        assert_eq!(locate_in_ring(c(5.0, 4.0), &u), Location::Interior); // right arm
        assert_eq!(locate_in_ring(c(3.0, 1.0), &u), Location::Interior); // base
        assert_eq!(locate_in_ring(c(3.0, 2.0), &u), Location::Boundary); // notch floor
    }
}
