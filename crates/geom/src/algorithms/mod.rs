//! Geometric algorithms: robust predicates, measures, constructive
//! operations and overlay.
//!
//! The modules are layered:
//!
//! 1. [`orientation`] and [`segment`] — exact-sign primitives,
//! 2. [`locate`], [`measures`], [`mod@distance`], [`mod@convex_hull`],
//!    [`mod@simplify`] — point-set queries and measures built on (1),
//! 3. [`clip`], [`mod@buffer`], [`line_split`] — constructive operations used
//!    by the spatial-analysis micro benchmarks and macro scenarios.

pub mod affine;
pub mod buffer;
pub mod clip;
pub mod convex_hull;
pub mod distance;
pub mod geodesic;
pub mod line_split;
pub mod locate;
pub mod measures;
pub mod orientation;
pub mod segment;
pub mod simplify;
pub mod tolerance;

pub use affine::{affine, rotate, scale, translate, AffineTransform};
pub use buffer::buffer;
pub use clip::{difference, intersection, union, BoolOp};
pub use convex_hull::convex_hull;
pub use distance::distance;
pub use line_split::{split_line_by_polygon, LinePortion, PortionClass};
pub use locate::{locate_in_polygon, locate_in_ring, Location};
pub use measures::{area, centroid, length};
pub use orientation::{orient2d, Orientation};
pub use segment::{segment_intersection, SegmentIntersection};
pub use simplify::simplify;
pub use tolerance::{param_on_segment, OVERLAP_TOL, PARAM_EPS};
