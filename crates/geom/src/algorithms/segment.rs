//! Exact segment–segment intersection classification.
//!
//! Decisions (does it intersect? proper crossing? collinear overlap?) are
//! made with the robust [`orient2d`] predicate, so they are exact. Only the
//! *coordinates* of a computed crossing point are subject to rounding,
//! which is the standard trade-off in floating-point geometry kernels.

use super::orientation::{orient2d, Orientation};
use crate::Coord;

/// Result of intersecting two closed segments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegmentIntersection {
    /// The segments share no point.
    None,
    /// The segments share exactly one point.
    Point(Coord),
    /// The segments are collinear and share a sub-segment of positive
    /// length, reported as its two endpoints.
    Overlap(Coord, Coord),
}

/// `true` when `p` lies on the closed segment `a b` (exact test).
pub fn point_on_segment(p: Coord, a: Coord, b: Coord) -> bool {
    if orient2d(a, b, p) != Orientation::Collinear {
        return false;
    }
    within_bounds(p, a, b)
}

/// `true` when `p` lies strictly inside the open segment `a b`.
pub fn point_in_segment_interior(p: Coord, a: Coord, b: Coord) -> bool {
    point_on_segment(p, a, b) && p != a && p != b
}

/// Collinear bounding test: assumes `p` is collinear with `a b`.
#[inline]
fn within_bounds(p: Coord, a: Coord, b: Coord) -> bool {
    let (min_x, max_x) = if a.x <= b.x { (a.x, b.x) } else { (b.x, a.x) };
    let (min_y, max_y) = if a.y <= b.y { (a.y, b.y) } else { (b.y, a.y) };
    p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y
}

/// Intersects the closed segments `a b` and `c d`.
///
/// Classification (none / point / overlap) is exact; a reported crossing
/// coordinate is the correctly rounded parametric solution.
pub fn segment_intersection(a: Coord, b: Coord, c: Coord, d: Coord) -> SegmentIntersection {
    let o1 = orient2d(c, d, a);
    let o2 = orient2d(c, d, b);
    let o3 = orient2d(a, b, c);
    let o4 = orient2d(a, b, d);

    // General position: proper crossing.
    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        return SegmentIntersection::Point(cross_point(a, b, c, d));
    }

    // Collect endpoint-on-segment incidences (covers T-junctions and
    // endpoint-to-endpoint touches).
    let mut touch: Option<Coord> = None;
    let push = |p: Coord, touch: &mut Option<Coord>| {
        if touch.is_none() {
            *touch = Some(p)
        }
    };
    let all_collinear = o1 == Orientation::Collinear
        && o2 == Orientation::Collinear
        && o3 == Orientation::Collinear
        && o4 == Orientation::Collinear;

    if all_collinear {
        return collinear_overlap(a, b, c, d);
    }

    if o1 == Orientation::Collinear && within_bounds(a, c, d) {
        push(a, &mut touch);
    }
    if o2 == Orientation::Collinear && within_bounds(b, c, d) {
        push(b, &mut touch);
    }
    if o3 == Orientation::Collinear && within_bounds(c, a, b) {
        push(c, &mut touch);
    }
    if o4 == Orientation::Collinear && within_bounds(d, a, b) {
        push(d, &mut touch);
    }
    match touch {
        Some(p) => SegmentIntersection::Point(p),
        None => {
            // Mixed signs but no collinear incidence within bounds → the
            // infinite lines cross outside at least one segment.
            if o1 != o2 && o3 != o4 {
                SegmentIntersection::Point(cross_point(a, b, c, d))
            } else {
                SegmentIntersection::None
            }
        }
    }
}

/// Overlap of two segments already known to be collinear.
fn collinear_overlap(a: Coord, b: Coord, c: Coord, d: Coord) -> SegmentIntersection {
    // Project onto the dominant axis to order the endpoints.
    let use_x = (b.x - a.x).abs() >= (b.y - a.y).abs();
    let key = |p: Coord| if use_x { p.x } else { p.y };

    let (s1, e1) = if key(a) <= key(b) { (a, b) } else { (b, a) };
    let (s2, e2) = if key(c) <= key(d) { (c, d) } else { (d, c) };

    let lo = if key(s1) >= key(s2) { s1 } else { s2 };
    let hi = if key(e1) <= key(e2) { e1 } else { e2 };

    if key(lo) > key(hi) {
        SegmentIntersection::None
    } else if lo == hi || key(lo) == key(hi) {
        SegmentIntersection::Point(lo)
    } else {
        SegmentIntersection::Overlap(lo, hi)
    }
}

/// Parametric crossing point of two non-parallel lines.
fn cross_point(a: Coord, b: Coord, c: Coord, d: Coord) -> Coord {
    let r = b - a;
    let s = d - c;
    let denom = r.cross(s);
    if denom == 0.0 {
        // Callers guarantee non-parallelism; degrade gracefully anyway.
        return a;
    }
    let t = (c - a).cross(s) / denom;
    a.lerp(b, t.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn proper_crossing() {
        match segment_intersection(c(0.0, 0.0), c(2.0, 2.0), c(0.0, 2.0), c(2.0, 0.0)) {
            SegmentIntersection::Point(p) => {
                assert!(p.close_to(c(1.0, 1.0), 1e-12));
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_segments() {
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(0.0, 1.0), c(1.0, 1.0)),
            SegmentIntersection::None
        );
        // Collinear but separated.
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)),
            SegmentIntersection::None
        );
    }

    #[test]
    fn endpoint_touch() {
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(2.0, 1.0)),
            SegmentIntersection::Point(c(1.0, 0.0))
        );
    }

    #[test]
    fn t_junction() {
        // c-d ends on the interior of a-b.
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(2.0, 0.0), c(1.0, 1.0), c(1.0, 0.0)),
            SegmentIntersection::Point(c(1.0, 0.0))
        );
    }

    #[test]
    fn collinear_overlap_segment() {
        match segment_intersection(c(0.0, 0.0), c(3.0, 0.0), c(1.0, 0.0), c(5.0, 0.0)) {
            SegmentIntersection::Overlap(p, q) => {
                assert_eq!(p, c(1.0, 0.0));
                assert_eq!(q, c(3.0, 0.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_touch_at_single_point() {
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(2.0, 0.0)),
            SegmentIntersection::Point(c(1.0, 0.0))
        );
    }

    #[test]
    fn vertical_collinear_overlap() {
        match segment_intersection(c(0.0, 0.0), c(0.0, 4.0), c(0.0, 3.0), c(0.0, 1.0)) {
            SegmentIntersection::Overlap(p, q) => {
                assert_eq!(p, c(0.0, 1.0));
                assert_eq!(q, c(0.0, 3.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn containment_overlap() {
        // One segment entirely inside the other.
        match segment_intersection(c(0.0, 0.0), c(10.0, 0.0), c(2.0, 0.0), c(4.0, 0.0)) {
            SegmentIntersection::Overlap(p, q) => {
                assert_eq!(p, c(2.0, 0.0));
                assert_eq!(q, c(4.0, 0.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn point_on_segment_tests() {
        assert!(point_on_segment(c(1.0, 1.0), c(0.0, 0.0), c(2.0, 2.0)));
        assert!(point_on_segment(c(0.0, 0.0), c(0.0, 0.0), c(2.0, 2.0)));
        assert!(!point_on_segment(c(3.0, 3.0), c(0.0, 0.0), c(2.0, 2.0)));
        assert!(!point_on_segment(c(1.0, 1.0001), c(0.0, 0.0), c(2.0, 2.0)));
        assert!(point_in_segment_interior(c(1.0, 1.0), c(0.0, 0.0), c(2.0, 2.0)));
        assert!(!point_in_segment_interior(c(0.0, 0.0), c(0.0, 0.0), c(2.0, 2.0)));
    }

    #[test]
    fn near_parallel_classification_is_exact() {
        // Two segments that are *exactly* parallel but offset by one ulp
        // must not be reported as crossing.
        let eps = f64::EPSILON;
        let r = segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(0.0, eps), c(1.0, eps));
        assert_eq!(r, SegmentIntersection::None);
    }
}
