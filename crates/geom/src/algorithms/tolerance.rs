//! The shared tolerances and parametric helpers of the exact relate
//! pipeline.
//!
//! Every algorithm that books parametric positions along a segment
//! (line splitting, interval coverage, DE-9IM curve bookkeeping) must
//! use the *same* epsilons and the same projection, or the naive and
//! prepared (indexed) evaluation paths drift apart and stop being
//! bit-identical. This module is the single home for those constants:
//! duplicating them at a call site is a bug.
//!
//! Note the layering: geometric *decisions* (on which side, on the
//! segment or not) are always made with the exact predicates in
//! [`super::orientation`] and [`super::segment`]; the tolerances here
//! apply only to 1-D parametric arithmetic performed *after* those
//! exact classifications.

use crate::Coord;

/// Tolerance for comparing parametric positions in `[0, 1]` along a
/// segment: cut positions closer than this are treated as the same cut,
/// and interval endpoints within this of each other are considered to
/// meet.
pub const PARAM_EPS: f64 = 1e-12;

/// Tolerance for testing whether a parametric sub-interval lies inside a
/// collinear-overlap interval (boundary classification of line pieces).
/// Looser than [`PARAM_EPS`] because the interval endpoints themselves
/// carry the rounding of projected intersection coordinates.
pub const OVERLAP_TOL: f64 = 1e-9;

/// Parametric position of `p` (known to lie on segment `a b`) in
/// `[0, 1]`, projected on the dominant axis for stability.
///
/// This is the one sanctioned way to turn an exact incidence back into a
/// 1-D parameter; both the naive and the prepared relate paths route
/// through it.
pub fn param_on_segment(a: Coord, b: Coord, p: Coord) -> f64 {
    let dx = (b.x - a.x).abs();
    let dy = (b.y - a.y).abs();
    let t = if dx >= dy {
        if b.x == a.x {
            0.0
        } else {
            (p.x - a.x) / (b.x - a.x)
        }
    } else {
        (p.y - a.y) / (b.y - a.y)
    };
    t.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_projects_on_dominant_axis() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(4.0, 1.0);
        assert_eq!(param_on_segment(a, b, Coord::new(2.0, 0.5)), 0.5);
        // Vertical segment: the y axis dominates.
        let c = Coord::new(0.0, 4.0);
        assert_eq!(param_on_segment(a, c, Coord::new(0.0, 1.0)), 0.25);
    }

    #[test]
    fn param_is_clamped() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 0.0);
        assert_eq!(param_on_segment(a, b, Coord::new(-1.0, 0.0)), 0.0);
        assert_eq!(param_on_segment(a, b, Coord::new(2.0, 0.0)), 1.0);
    }

    #[test]
    fn degenerate_segment_maps_to_zero() {
        let a = Coord::new(1.0, 1.0);
        assert_eq!(param_on_segment(a, a, a), 0.0);
    }
}
