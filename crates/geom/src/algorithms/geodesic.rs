//! Geodetic (sphere-based) measures.
//!
//! The Jackpine paper singles out *true geodetic support* as one of the
//! axes on which the benchmarked systems differed. This module provides
//! the spherical measures behind the engine's `ST_DistanceSphere`,
//! `ST_LengthSphere` and `ST_AreaSphere` functions, treating coordinates
//! as longitude/latitude degrees on a sphere of mean Earth radius.

use crate::{Coord, Geometry, LineString, Polygon};

/// Mean Earth radius in meters (IUGG mean radius R₁).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two lon/lat coordinates, in meters,
/// by the haversine formula (numerically stable for small distances).
pub fn haversine_distance(a: Coord, b: Coord) -> f64 {
    let (lon1, lat1) = (a.x.to_radians(), a.y.to_radians());
    let (lon2, lat2) = (b.x.to_radians(), b.y.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat * 0.5).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon * 0.5).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Great-circle distance between the closest *vertices* of two
/// geometries, in meters.
///
/// Matching the common `ST_DistanceSphere` fast path, distances are
/// computed vertex-to-vertex (plus each geometry's envelope check); for
/// the benchmark's point-heavy geodetic queries this is exact, and for
/// lines/polygons it is the standard upper-bound approximation systems of
/// the paper's era shipped.
pub fn distance_sphere(a: &Geometry, b: &Geometry) -> f64 {
    let mut va = Vec::new();
    let mut vb = Vec::new();
    super::convex_hull::collect_coords(a, &mut va);
    super::convex_hull::collect_coords(b, &mut vb);
    let mut best = f64::INFINITY;
    for &p in &va {
        for &q in &vb {
            let d = haversine_distance(p, q);
            if d < best {
                best = d;
            }
        }
    }
    best
}

/// Geodesic length of a geometry's curves in meters (sum of great-circle
/// segment lengths; polygon rings contribute their perimeters).
pub fn length_sphere(g: &Geometry) -> f64 {
    match g {
        Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
        Geometry::LineString(l) => line_length_sphere(l),
        Geometry::MultiLineString(m) => m.0.iter().map(line_length_sphere).sum(),
        Geometry::Polygon(p) => polygon_perimeter_sphere(p),
        Geometry::MultiPolygon(m) => m.0.iter().map(polygon_perimeter_sphere).sum(),
        Geometry::GeometryCollection(c) => c.0.iter().map(length_sphere).sum(),
    }
}

fn line_length_sphere(l: &LineString) -> f64 {
    l.segments().map(|(a, b)| haversine_distance(a, b)).sum()
}

fn polygon_perimeter_sphere(p: &Polygon) -> f64 {
    p.rings().map(|r| r.segments().map(|(a, b)| haversine_distance(a, b)).sum::<f64>()).sum()
}

/// Spherical area of a geometry in square meters.
///
/// Ring area uses the spherical-excess line integral
/// `A = (R²/2)·|Σ (λ₂−λ₁)(2 + sin φ₁ + sin φ₂)|`, the formula geography
/// implementations use for polygons small relative to the sphere. Holes
/// subtract.
pub fn area_sphere(g: &Geometry) -> f64 {
    match g {
        Geometry::Polygon(p) => polygon_area_sphere(p),
        Geometry::MultiPolygon(m) => m.0.iter().map(polygon_area_sphere).sum(),
        Geometry::GeometryCollection(c) => c.0.iter().map(area_sphere).sum(),
        _ => 0.0,
    }
}

fn polygon_area_sphere(p: &Polygon) -> f64 {
    let outer = ring_area_sphere(p.exterior().coords());
    let holes: f64 = p.holes().iter().map(|h| ring_area_sphere(h.coords())).sum();
    (outer - holes).max(0.0)
}

fn ring_area_sphere(coords: &[Coord]) -> f64 {
    let mut acc = 0.0;
    for w in coords.windows(2) {
        let (l1, f1) = (w[0].x.to_radians(), w[0].y.to_radians());
        let (l2, f2) = (w[1].x.to_radians(), w[1].y.to_radians());
        acc += (l2 - l1) * (2.0 + f1.sin() + f2.sin());
    }
    (acc * EARTH_RADIUS_M * EARTH_RADIUS_M / 2.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    #[test]
    fn haversine_known_distances() {
        // One degree of latitude ≈ 111.2 km everywhere.
        let d = haversine_distance(Coord::new(0.0, 0.0), Coord::new(0.0, 1.0));
        assert!((d - 111_195.0).abs() < 200.0, "1° lat = {d} m");
        // One degree of longitude at 60°N ≈ half that.
        let d60 = haversine_distance(Coord::new(0.0, 60.0), Coord::new(1.0, 60.0));
        assert!((d60 - 55_597.0).abs() < 300.0, "1° lon @60N = {d60} m");
        // Symmetric and zero at identity.
        assert_eq!(
            haversine_distance(Coord::new(2.0, 3.0), Coord::new(5.0, 7.0)),
            haversine_distance(Coord::new(5.0, 7.0), Coord::new(2.0, 3.0))
        );
        assert_eq!(haversine_distance(Coord::new(2.0, 3.0), Coord::new(2.0, 3.0)), 0.0);
    }

    #[test]
    fn length_of_meridian_arc() {
        let g = wkt::parse("LINESTRING (10 0, 10 1, 10 2)").unwrap();
        let len = length_sphere(&g);
        assert!((len - 2.0 * 111_195.0).abs() < 400.0, "2° meridian = {len} m");
    }

    #[test]
    fn area_of_small_square() {
        // 0.1° × 0.1° square at the equator ≈ (11.12 km)² ≈ 1.237e8 m².
        let g = wkt::parse("POLYGON ((0 0, 0.1 0, 0.1 0.1, 0 0.1, 0 0))").unwrap();
        let a = area_sphere(&g);
        let expect = (0.1 * 111_195.0f64).powi(2);
        assert!((a - expect).abs() < expect * 0.01, "area {a} vs {expect}");
    }

    #[test]
    fn area_shrinks_with_latitude() {
        let eq = wkt::parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        let north = wkt::parse("POLYGON ((0 59, 1 59, 1 60, 0 60, 0 59))").unwrap();
        assert!(area_sphere(&north) < area_sphere(&eq) * 0.6);
    }

    #[test]
    fn holes_subtract_spherically() {
        let solid = wkt::parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        let holed = wkt::parse(
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0), \
             (0.25 0.25, 0.75 0.25, 0.75 0.75, 0.25 0.75, 0.25 0.25))",
        )
        .unwrap();
        let ratio = area_sphere(&holed) / area_sphere(&solid);
        assert!((ratio - 0.75).abs() < 0.01, "hole ratio {ratio}");
    }

    #[test]
    fn distance_sphere_between_geometries() {
        let a = wkt::parse("POINT (0 0)").unwrap();
        let b = wkt::parse("LINESTRING (0 2, 5 2)").unwrap();
        let d = distance_sphere(&a, &b);
        assert!((d - 2.0 * 111_195.0).abs() < 500.0);
    }
}
