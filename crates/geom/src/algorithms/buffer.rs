//! Buffer computation (the `ST_Buffer` of the analysis micro benchmark and
//! the core primitive of the flood-risk and toxic-spill macro scenarios).
//!
//! Strategy: a buffered point is a discretized circle; a buffered line is
//! the union of per-segment *capsules* (rectangle plus round caps); a
//! buffered polygon is the polygon unioned with capsules along its
//! boundary (or, for negative distances, minus those capsules). All unions
//! go through the overlay module, so the result is a proper polygon set.

use super::clip::{difference, union};
use crate::{Coord, GeomError, Geometry, GeometryCollection, LineString, Polygon, Result};

/// Number of segments per quarter circle used to approximate arcs.
/// Eight matches PostGIS's default `quad_segs`.
pub const DEFAULT_QUAD_SEGS: usize = 8;

/// Computes the buffer of `g` at `distance` with the default arc
/// approximation ([`DEFAULT_QUAD_SEGS`]).
pub fn buffer(g: &Geometry, distance: f64) -> Result<Geometry> {
    buffer_with_segments(g, distance, DEFAULT_QUAD_SEGS)
}

/// Computes the buffer of `g` at `distance` using `quad_segs` segments per
/// quarter circle.
///
/// * `distance > 0`: grow. Supported for every geometry type.
/// * `distance == 0`: identity for areal geometries, empty for others
///   (matching common spatial-SQL behaviour).
/// * `distance < 0`: shrink. Supported for areal geometries only.
pub fn buffer_with_segments(g: &Geometry, distance: f64, quad_segs: usize) -> Result<Geometry> {
    if !distance.is_finite() {
        return Err(GeomError::InvalidArgument("buffer distance must be finite".into()));
    }
    if quad_segs == 0 {
        return Err(GeomError::InvalidArgument("quad_segs must be at least 1".into()));
    }
    if distance == 0.0 {
        return Ok(match g {
            Geometry::Polygon(_) | Geometry::MultiPolygon(_) => g.clone(),
            _ => Geometry::GeometryCollection(GeometryCollection(Vec::new())),
        });
    }
    if distance < 0.0 {
        return match g {
            Geometry::Polygon(_) | Geometry::MultiPolygon(_) => {
                negative_polygon_buffer(g, -distance, quad_segs)
            }
            _ => {
                Err(GeomError::InvalidArgument("negative buffer requires an areal geometry".into()))
            }
        };
    }

    match g {
        Geometry::Point(p) => match p.coord() {
            Some(c) => Ok(Geometry::Polygon(circle_polygon(c, distance, quad_segs)?)),
            None => Ok(Geometry::GeometryCollection(GeometryCollection(Vec::new()))),
        },
        Geometry::MultiPoint(m) => {
            let mut acc: Option<Geometry> = None;
            for p in &m.0 {
                if let Some(c) = p.coord() {
                    let circle = Geometry::Polygon(circle_polygon(c, distance, quad_segs)?);
                    acc = Some(match acc {
                        None => circle,
                        Some(a) => union(&a, &circle)?,
                    });
                }
            }
            Ok(acc.unwrap_or_else(|| Geometry::GeometryCollection(GeometryCollection(Vec::new()))))
        }
        Geometry::LineString(l) => line_buffer(l, distance, quad_segs),
        Geometry::MultiLineString(m) => {
            let mut acc: Option<Geometry> = None;
            for l in &m.0 {
                if l.is_empty() {
                    continue;
                }
                let b = line_buffer(l, distance, quad_segs)?;
                acc = Some(match acc {
                    None => b,
                    Some(a) => union(&a, &b)?,
                });
            }
            Ok(acc.unwrap_or_else(|| Geometry::GeometryCollection(GeometryCollection(Vec::new()))))
        }
        Geometry::Polygon(_) | Geometry::MultiPolygon(_) => {
            positive_polygon_buffer(g, distance, quad_segs)
        }
        Geometry::GeometryCollection(c) => {
            let mut acc: Option<Geometry> = None;
            for member in &c.0 {
                if member.is_empty() {
                    continue;
                }
                let b = buffer_with_segments(member, distance, quad_segs)?;
                if b.is_empty() {
                    continue;
                }
                acc = Some(match acc {
                    None => b,
                    Some(a) => union(&a, &b)?,
                });
            }
            Ok(acc.unwrap_or_else(|| Geometry::GeometryCollection(GeometryCollection(Vec::new()))))
        }
    }
}

/// Emits the vertices of a CCW arc around `center` from `from` to `to`
/// radians (`to > from`).
///
/// Interior vertices are placed on a *global* angular grid (multiples of
/// the step), so two arcs around the same center with the same radius
/// produce bitwise-identical coordinates wherever they overlap. Capsules
/// of adjacent polyline segments share their joint's cap vertices exactly,
/// which keeps the downstream overlay free of near-coincident slivers.
fn arc_points(
    center: Coord,
    radius: f64,
    from: f64,
    to: f64,
    quad_segs: usize,
    out: &mut Vec<Coord>,
) {
    let per_circle = 4 * quad_segs as i64;
    let step = std::f64::consts::TAU / per_circle as f64;
    let push = |theta: f64, out: &mut Vec<Coord>| {
        let p = Coord::new(center.x + radius * theta.cos(), center.y + radius * theta.sin());
        if out.last() != Some(&p) {
            out.push(p);
        }
    };
    push(from, out);
    // Interior vertices on the global angular grid. The grid index is
    // reduced modulo a full circle *before* the trigonometry, so arcs of
    // different parametrizations around the same center produce bitwise
    // identical vertices wherever they overlap.
    let mut k = (from / step).floor() as i64 + 1;
    while (k as f64) * step <= from {
        k += 1;
    }
    while (k as f64) * step < to {
        let m = k.rem_euclid(per_circle);
        push(m as f64 * step, out);
        k += 1;
    }
    push(to, out);
}

/// A discretized circle as a CCW polygon.
fn circle_polygon(center: Coord, radius: f64, quad_segs: usize) -> Result<Polygon> {
    let mut pts = Vec::with_capacity(quad_segs * 4 + 2);
    arc_points(center, radius, 0.0, std::f64::consts::TAU, quad_segs, &mut pts);
    // arc_points emits both 0 and 2π; force exact closure.
    if let Some(&first) = pts.first() {
        if let Some(last) = pts.last_mut() {
            *last = first;
        }
    }
    Ok(Polygon::new(crate::polygon::Ring::new(pts)?, Vec::new()))
}

/// A capsule (stadium shape) around segment `a b` as a CCW polygon.
fn capsule_polygon(a: Coord, b: Coord, radius: f64, quad_segs: usize) -> Result<Polygon> {
    let d = b - a;
    let len = d.norm();
    if len == 0.0 {
        return circle_polygon(a, radius, quad_segs);
    }
    let dir_angle = d.y.atan2(d.x);
    let mut pts: Vec<Coord> = Vec::with_capacity(4 * quad_segs + 6);
    // Semicircle around b: from dir−90° to dir+90°, CCW.
    arc_points(
        b,
        radius,
        dir_angle - std::f64::consts::FRAC_PI_2,
        dir_angle + std::f64::consts::FRAC_PI_2,
        quad_segs,
        &mut pts,
    );
    // Semicircle around a: from dir+90° to dir+270°, CCW.
    arc_points(
        a,
        radius,
        dir_angle + std::f64::consts::FRAC_PI_2,
        dir_angle + 1.5 * std::f64::consts::PI,
        quad_segs,
        &mut pts,
    );
    pts.push(pts[0]);
    pts.dedup();
    Ok(Polygon::new(crate::polygon::Ring::new(pts)?, Vec::new()))
}

fn line_buffer(l: &LineString, distance: f64, quad_segs: usize) -> Result<Geometry> {
    let mut acc: Option<Geometry> = None;
    for (a, b) in l.segments() {
        let cap = Geometry::Polygon(capsule_polygon(a, b, distance, quad_segs)?);
        acc = Some(match acc {
            None => cap,
            Some(g) => union(&g, &cap)?,
        });
    }
    acc.ok_or_else(|| GeomError::InvalidArgument("cannot buffer an empty linestring".into()))
}

fn positive_polygon_buffer(g: &Geometry, distance: f64, quad_segs: usize) -> Result<Geometry> {
    // Union the polygon with capsules along every ring edge.
    let mut acc = g.clone();
    let polys: Vec<Polygon> = match g {
        Geometry::Polygon(p) => vec![p.clone()],
        Geometry::MultiPolygon(m) => m.0.clone(),
        _ => unreachable!("caller checked arity"),
    };
    for p in &polys {
        for (a, b) in p.rings().flat_map(|r| r.segments()) {
            let cap = Geometry::Polygon(capsule_polygon(a, b, distance, quad_segs)?);
            acc = union(&acc, &cap)?;
        }
    }
    Ok(acc)
}

fn negative_polygon_buffer(g: &Geometry, distance: f64, quad_segs: usize) -> Result<Geometry> {
    let mut acc = g.clone();
    let polys: Vec<Polygon> = match g {
        Geometry::Polygon(p) => vec![p.clone()],
        Geometry::MultiPolygon(m) => m.0.clone(),
        _ => unreachable!("caller checked arity"),
    };
    for p in &polys {
        for (a, b) in p.rings().flat_map(|r| r.segments()) {
            let cap = Geometry::Polygon(capsule_polygon(a, b, distance, quad_segs)?);
            acc = difference(&acc, &cap)?;
            if acc.is_empty() {
                return Ok(acc);
            }
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::measures::area;
    use crate::Point;

    #[test]
    fn point_buffer_is_near_circle() {
        let p: Geometry = Point::new(0.0, 0.0).unwrap().into();
        let b = buffer(&p, 2.0).unwrap();
        let a = area(&b);
        let exact = std::f64::consts::PI * 4.0;
        // Inscribed polygon: slightly below πr², within 2 %.
        assert!(a < exact && a > exact * 0.98, "area = {a}");
    }

    #[test]
    fn line_buffer_area_close_to_capsule_formula() {
        let l: Geometry = LineString::from_xy(&[(0.0, 0.0), (10.0, 0.0)]).unwrap().into();
        let b = buffer(&l, 1.0).unwrap();
        let a = area(&b);
        let exact = 10.0 * 2.0 + std::f64::consts::PI; // rectangle + two half caps
        assert!((a - exact).abs() < exact * 0.02, "area = {a}, want ≈ {exact}");
    }

    #[test]
    fn bent_line_buffer() {
        let l: Geometry =
            LineString::from_xy(&[(0.0, 0.0), (5.0, 0.0), (5.0, 5.0)]).unwrap().into();
        let b = buffer(&l, 0.5).unwrap();
        let a = area(&b);
        // Two capsules of length 5 overlapping near the elbow: total close
        // to 2*(5*1 + π/4) minus the elbow overlap.
        assert!(a > 9.0 && a < 11.5, "area = {a}");
    }

    #[test]
    fn polygon_positive_buffer_grows() {
        let s: Geometry =
            Polygon::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap().into();
        let b = buffer(&s, 1.0).unwrap();
        let a = area(&b);
        // Exact: 16 + perimeter*1 + π*1² = 16 + 16 + π ≈ 35.14
        let exact = 16.0 + 16.0 + std::f64::consts::PI;
        assert!((a - exact).abs() < exact * 0.02, "area = {a}, want ≈ {exact}");
    }

    #[test]
    fn polygon_negative_buffer_shrinks() {
        let s: Geometry =
            Polygon::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap().into();
        let b = buffer(&s, -1.0).unwrap();
        let a = area(&b);
        assert!((a - 4.0).abs() < 0.2, "area = {a}, want ≈ 4");
    }

    #[test]
    fn negative_buffer_annihilates_small_polygon() {
        let s: Geometry =
            Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap().into();
        let b = buffer(&s, -2.0).unwrap();
        assert_eq!(area(&b), 0.0);
    }

    #[test]
    fn zero_distance_semantics() {
        let s: Geometry =
            Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap().into();
        assert_eq!(buffer(&s, 0.0).unwrap(), s);
        let p: Geometry = Point::new(0.0, 0.0).unwrap().into();
        assert!(buffer(&p, 0.0).unwrap().is_empty());
    }

    #[test]
    fn invalid_arguments() {
        let p: Geometry = Point::new(0.0, 0.0).unwrap().into();
        assert!(buffer(&p, f64::NAN).is_err());
        assert!(buffer(&p, -1.0).is_err()); // negative on non-areal
        assert!(buffer_with_segments(&p, 1.0, 0).is_err());
    }

    #[test]
    fn buffer_contains_original_for_positive_distance() {
        use crate::algorithms::locate::{locate_in_polygon, Location};
        let l = LineString::from_xy(&[(0.0, 0.0), (3.0, 1.0), (6.0, 0.0)]).unwrap();
        let b = buffer(&l.clone().into(), 0.5).unwrap();
        let polys: Vec<&Polygon> = match &b {
            Geometry::Polygon(p) => vec![p],
            Geometry::MultiPolygon(m) => m.0.iter().collect(),
            other => panic!("expected areal buffer, got {other:?}"),
        };
        for c in l.coords() {
            assert!(
                polys.iter().any(|p| locate_in_polygon(*c, p) == Location::Interior),
                "vertex {c} not inside buffer"
            );
        }
    }

    #[test]
    fn quad_segs_controls_fidelity() {
        let p: Geometry = Point::new(0.0, 0.0).unwrap().into();
        let coarse = area(&buffer_with_segments(&p, 1.0, 2).unwrap());
        let fine = area(&buffer_with_segments(&p, 1.0, 16).unwrap());
        let exact = std::f64::consts::PI;
        assert!((fine - exact).abs() < (coarse - exact).abs());
    }
}
