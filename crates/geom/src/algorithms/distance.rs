//! Minimum Euclidean distance between any two geometries.

use super::locate::{locate_in_polygon, Location};
use super::segment::{segment_intersection, SegmentIntersection};
use crate::{Coord, Geometry, LineString, Polygon};

/// Minimum distance between two geometries, `f64::INFINITY` when either is
/// empty (matching SQL NULL-ish semantics at the engine layer).
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let mut best = f64::INFINITY;
    for_each_part(a, &mut |pa| {
        for_each_part(b, &mut |pb| {
            let d = part_distance(pa, pb);
            if d < best {
                best = d;
            }
        });
    });
    best
}

/// Distance from a coordinate to the closed segment `a b`.
pub fn point_segment_distance(p: Coord, a: Coord, b: Coord) -> f64 {
    point_segment_distance_sq(p, a, b).sqrt()
}

/// Squared distance from a coordinate to the closed segment `a b`.
pub fn point_segment_distance_sq(p: Coord, a: Coord, b: Coord) -> f64 {
    let ab = b - a;
    let denom = ab.norm_sq();
    if denom == 0.0 {
        return p.distance_sq(a);
    }
    let t = ((p - a).dot(ab) / denom).clamp(0.0, 1.0);
    p.distance_sq(a.lerp(b, t))
}

/// Distance between two closed segments.
pub fn segment_segment_distance(a: Coord, b: Coord, c: Coord, d: Coord) -> f64 {
    if segment_intersection(a, b, c, d) != SegmentIntersection::None {
        return 0.0;
    }
    point_segment_distance_sq(a, c, d)
        .min(point_segment_distance_sq(b, c, d))
        .min(point_segment_distance_sq(c, a, b))
        .min(point_segment_distance_sq(d, a, b))
        .sqrt()
}

/// A single-part view used to decompose Multi*/collections.
enum Part<'a> {
    Pt(Coord),
    Line(&'a LineString),
    Poly(&'a Polygon),
}

fn for_each_part<'a>(g: &'a Geometry, f: &mut dyn FnMut(&Part<'a>)) {
    match g {
        Geometry::Point(p) => {
            if let Some(c) = p.coord() {
                f(&Part::Pt(c));
            }
        }
        Geometry::LineString(l) => {
            if !l.is_empty() {
                f(&Part::Line(l));
            }
        }
        Geometry::Polygon(p) => f(&Part::Poly(p)),
        Geometry::MultiPoint(m) => {
            for p in &m.0 {
                if let Some(c) = p.coord() {
                    f(&Part::Pt(c));
                }
            }
        }
        Geometry::MultiLineString(m) => {
            for l in &m.0 {
                if !l.is_empty() {
                    f(&Part::Line(l));
                }
            }
        }
        Geometry::MultiPolygon(m) => {
            for p in &m.0 {
                f(&Part::Poly(p));
            }
        }
        Geometry::GeometryCollection(c) => {
            for g in &c.0 {
                for_each_part(g, f);
            }
        }
    }
}

fn part_distance(a: &Part<'_>, b: &Part<'_>) -> f64 {
    match (a, b) {
        (Part::Pt(p), Part::Pt(q)) => p.distance(*q),
        (Part::Pt(p), Part::Line(l)) | (Part::Line(l), Part::Pt(p)) => point_line_distance(*p, l),
        (Part::Pt(p), Part::Poly(poly)) | (Part::Poly(poly), Part::Pt(p)) => {
            point_polygon_distance(*p, poly)
        }
        (Part::Line(l), Part::Line(m)) => line_line_distance(l, m),
        (Part::Line(l), Part::Poly(p)) | (Part::Poly(p), Part::Line(l)) => {
            line_polygon_distance(l, p)
        }
        (Part::Poly(p), Part::Poly(q)) => polygon_polygon_distance(p, q),
    }
}

fn point_line_distance(p: Coord, l: &LineString) -> f64 {
    l.segments()
        .map(|(a, b)| point_segment_distance_sq(p, a, b))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

fn point_polygon_distance(p: Coord, poly: &Polygon) -> f64 {
    if locate_in_polygon(p, poly) != Location::Exterior {
        return 0.0;
    }
    poly.rings()
        .flat_map(|r| r.segments())
        .map(|(a, b)| point_segment_distance_sq(p, a, b))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

fn line_line_distance(l: &LineString, m: &LineString) -> f64 {
    let mut best = f64::INFINITY;
    for (a, b) in l.segments() {
        for (c, d) in m.segments() {
            let dd = segment_segment_distance(a, b, c, d);
            if dd == 0.0 {
                return 0.0;
            }
            best = best.min(dd);
        }
    }
    best
}

fn line_polygon_distance(l: &LineString, p: &Polygon) -> f64 {
    // If any vertex is inside, or any segment crosses the boundary, the
    // distance is zero.
    if let Some(first) = l.start() {
        if locate_in_polygon(first, p) != Location::Exterior {
            return 0.0;
        }
    }
    let mut best = f64::INFINITY;
    for (a, b) in l.segments() {
        for (c, d) in p.rings().flat_map(|r| r.segments()) {
            let dd = segment_segment_distance(a, b, c, d);
            if dd == 0.0 {
                return 0.0;
            }
            best = best.min(dd);
        }
    }
    best
}

fn polygon_polygon_distance(p: &Polygon, q: &Polygon) -> f64 {
    // Containment / overlap check via a representative vertex each way.
    let pv = p.exterior().coords()[0];
    let qv = q.exterior().coords()[0];
    if locate_in_polygon(pv, q) != Location::Exterior
        || locate_in_polygon(qv, p) != Location::Exterior
    {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for (a, b) in p.rings().flat_map(|r| r.segments()) {
        for (c, d) in q.rings().flat_map(|r| r.segments()) {
            let dd = segment_segment_distance(a, b, c, d);
            if dd == 0.0 {
                return 0.0;
            }
            best = best.min(dd);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn pt(x: f64, y: f64) -> Geometry {
        Point::new(x, y).unwrap().into()
    }

    fn sq(x0: f64, y0: f64, s: f64) -> Geometry {
        Polygon::from_xy(&[(x0, y0), (x0 + s, y0), (x0 + s, y0 + s), (x0, y0 + s)]).unwrap().into()
    }

    #[test]
    fn point_point() {
        assert_eq!(distance(&pt(0.0, 0.0), &pt(3.0, 4.0)), 5.0);
    }

    #[test]
    fn point_segment_endpoints_and_projection() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(10.0, 0.0);
        assert_eq!(point_segment_distance(Coord::new(5.0, 3.0), a, b), 3.0);
        assert_eq!(point_segment_distance(Coord::new(-3.0, 4.0), a, b), 5.0);
        assert_eq!(point_segment_distance(Coord::new(13.0, 4.0), a, b), 5.0);
        // degenerate segment
        assert_eq!(point_segment_distance(Coord::new(3.0, 4.0), a, a), 5.0);
    }

    #[test]
    fn point_line_and_polygon() {
        let l: Geometry = LineString::from_xy(&[(0.0, 0.0), (10.0, 0.0)]).unwrap().into();
        assert_eq!(distance(&pt(5.0, 2.0), &l), 2.0);
        assert_eq!(distance(&pt(2.0, 2.0), &sq(0.0, 0.0, 4.0)), 0.0); // inside
        assert_eq!(distance(&pt(4.0, 2.0), &sq(0.0, 0.0, 4.0)), 0.0); // boundary
        assert_eq!(distance(&pt(7.0, 2.0), &sq(0.0, 0.0, 4.0)), 3.0);
    }

    #[test]
    fn crossing_lines_have_zero_distance() {
        let a: Geometry = LineString::from_xy(&[(0.0, 0.0), (2.0, 2.0)]).unwrap().into();
        let b: Geometry = LineString::from_xy(&[(0.0, 2.0), (2.0, 0.0)]).unwrap().into();
        assert_eq!(distance(&a, &b), 0.0);
    }

    #[test]
    fn parallel_lines() {
        let a: Geometry = LineString::from_xy(&[(0.0, 0.0), (10.0, 0.0)]).unwrap().into();
        let b: Geometry = LineString::from_xy(&[(0.0, 3.0), (10.0, 3.0)]).unwrap().into();
        assert_eq!(distance(&a, &b), 3.0);
    }

    #[test]
    fn polygon_polygon_cases() {
        assert_eq!(distance(&sq(0.0, 0.0, 2.0), &sq(5.0, 0.0, 2.0)), 3.0);
        assert_eq!(distance(&sq(0.0, 0.0, 4.0), &sq(1.0, 1.0, 1.0)), 0.0); // nested
        assert_eq!(distance(&sq(0.0, 0.0, 2.0), &sq(1.0, 1.0, 2.0)), 0.0); // overlapping
                                                                           // diagonal separation
        let d = distance(&sq(0.0, 0.0, 1.0), &sq(2.0, 2.0, 1.0));
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn line_inside_polygon() {
        let l: Geometry = LineString::from_xy(&[(1.0, 1.0), (2.0, 2.0)]).unwrap().into();
        assert_eq!(distance(&l, &sq(0.0, 0.0, 4.0)), 0.0);
    }

    #[test]
    fn empty_inputs_give_infinity() {
        let e: Geometry = Point::empty().into();
        assert_eq!(distance(&e, &pt(0.0, 0.0)), f64::INFINITY);
    }

    #[test]
    fn symmetry() {
        let a = sq(0.0, 0.0, 2.0);
        let l: Geometry = LineString::from_xy(&[(5.0, 0.0), (5.0, 10.0)]).unwrap().into();
        assert_eq!(distance(&a, &l), distance(&l, &a));
        assert_eq!(distance(&a, &l), 3.0);
    }
}
