//! Convex hull via Andrew's monotone chain, with robust turn decisions.

use super::orientation::{orient2d, Orientation};
use crate::{Coord, Geometry, GeometryCollection, LineString, MultiPoint, Point, Polygon, Result};

/// Computes the convex hull of any geometry.
///
/// Result type follows the usual spatial-SQL convention:
/// * empty input → empty `GEOMETRYCOLLECTION`,
/// * a single distinct coordinate → `POINT`,
/// * all coordinates collinear → `LINESTRING` (the extreme pair),
/// * otherwise → convex `POLYGON` with counter-clockwise shell.
pub fn convex_hull(g: &Geometry) -> Result<Geometry> {
    let mut pts = Vec::with_capacity(g.num_coords());
    collect_coords(g, &mut pts);
    hull_of_coords(&mut pts)
}

/// Hull of a raw coordinate set (consumed: sorted and deduplicated in place).
pub(crate) fn hull_of_coords(pts: &mut Vec<Coord>) -> Result<Geometry> {
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup();

    match pts.len() {
        0 => return Ok(Geometry::GeometryCollection(GeometryCollection(Vec::new()))),
        1 => return Ok(Geometry::Point(Point::from_coord(pts[0])?)),
        2 => {
            return Ok(Geometry::LineString(LineString::new(vec![pts[0], pts[1]])?));
        }
        _ => {}
    }

    // Monotone chain: lower hull then upper hull.
    let mut hull: Vec<Coord> = Vec::with_capacity(pts.len() + 1);
    for &p in pts.iter() {
        while hull.len() >= 2
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // The last point repeats the first: that is exactly the ring closure.
    if hull.len() < 4 {
        // All points collinear: extremes are the first and last of the
        // sorted order.
        return Ok(Geometry::LineString(LineString::new(vec![pts[0], pts[pts.len() - 1]])?));
    }
    let ring = crate::polygon::Ring::new(hull)?;
    Ok(Geometry::Polygon(Polygon::new(ring, Vec::new())))
}

/// Appends every coordinate of `g` to `out`.
pub fn collect_coords(g: &Geometry, out: &mut Vec<Coord>) {
    match g {
        Geometry::Point(p) => out.extend(p.coord()),
        Geometry::LineString(l) => out.extend_from_slice(l.coords()),
        Geometry::Polygon(p) => {
            for r in p.rings() {
                out.extend_from_slice(r.coords());
            }
        }
        Geometry::MultiPoint(MultiPoint(ps)) => {
            for p in ps {
                out.extend(p.coord());
            }
        }
        Geometry::MultiLineString(m) => {
            for l in &m.0 {
                out.extend_from_slice(l.coords());
            }
        }
        Geometry::MultiPolygon(m) => {
            for p in &m.0 {
                for r in p.rings() {
                    out.extend_from_slice(r.coords());
                }
            }
        }
        Geometry::GeometryCollection(c) => {
            for g in &c.0 {
                collect_coords(g, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::measures::area;

    fn mp(pts: &[(f64, f64)]) -> Geometry {
        Geometry::MultiPoint(MultiPoint(
            pts.iter().map(|&(x, y)| Point::new(x, y).unwrap()).collect(),
        ))
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let g = mp(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.0), // interior
            (1.0, 2.0), // interior
            (2.0, 0.0), // on edge
        ]);
        let h = convex_hull(&g).unwrap();
        match &h {
            Geometry::Polygon(p) => {
                assert_eq!(p.area(), 16.0);
                // Edge-collinear point must be dropped.
                assert_eq!(p.exterior().num_coords(), 5);
                assert!(p.exterior().is_ccw());
            }
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn hull_degenerate_cases() {
        assert!(matches!(convex_hull(&mp(&[])).unwrap(), Geometry::GeometryCollection(_)));
        assert!(matches!(convex_hull(&mp(&[(1.0, 1.0)])).unwrap(), Geometry::Point(_)));
        assert!(matches!(convex_hull(&mp(&[(1.0, 1.0), (1.0, 1.0)])).unwrap(), Geometry::Point(_)));
        match convex_hull(&mp(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])).unwrap() {
            Geometry::LineString(l) => {
                assert_eq!(l.coords(), &[Coord::new(0.0, 0.0), Coord::new(3.0, 3.0)]);
            }
            other => panic!("expected linestring, got {other:?}"),
        }
    }

    #[test]
    fn hull_is_idempotent() {
        let g = mp(&[(0.0, 0.0), (5.0, 1.0), (3.0, 4.0), (1.0, 3.0), (2.0, 1.0)]);
        let h1 = convex_hull(&g).unwrap();
        let h2 = convex_hull(&h1).unwrap();
        assert_eq!(area(&h1), area(&h2));
        match (&h1, &h2) {
            (Geometry::Polygon(a), Geometry::Polygon(b)) => {
                assert_eq!(a.exterior().num_coords(), b.exterior().num_coords());
            }
            _ => panic!("expected polygons"),
        }
    }

    #[test]
    fn hull_of_linestring() {
        let l: Geometry =
            LineString::from_xy(&[(0.0, 0.0), (2.0, 3.0), (4.0, 0.0), (2.0, 1.0)]).unwrap().into();
        match convex_hull(&l).unwrap() {
            Geometry::Polygon(p) => assert_eq!(p.area(), 6.0),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn hull_contains_all_inputs() {
        use crate::algorithms::locate::{locate_in_polygon, Location};
        let pts =
            [(0.3, 0.9), (2.7, 0.1), (3.9, 2.2), (1.4, 3.8), (0.1, 2.0), (2.0, 2.0), (1.0, 1.0)];
        let g = mp(&pts);
        match convex_hull(&g).unwrap() {
            Geometry::Polygon(p) => {
                for &(x, y) in &pts {
                    let loc = locate_in_polygon(Coord::new(x, y), &p);
                    assert_ne!(loc, Location::Exterior, "({x},{y}) escaped the hull");
                }
            }
            other => panic!("expected polygon, got {other:?}"),
        }
    }
}
