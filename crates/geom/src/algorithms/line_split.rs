//! Splitting a polyline by a polygon's boundary and classifying the pieces.
//!
//! This is the workhorse behind line/polygon DE-9IM computation and the
//! flood-risk / toxic-spill macro scenarios ("which road portions lie in
//! the hazard zone?").

use super::locate::{locate_in_polygon, Location};
use super::segment::{segment_intersection, SegmentIntersection};
use super::tolerance::{param_on_segment, OVERLAP_TOL, PARAM_EPS};
use crate::{Coord, Envelope, LineString, Polygon};

/// Classification of a line portion relative to a polygon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortionClass {
    /// The portion runs through the polygon's interior.
    Inside,
    /// The portion runs along the polygon's boundary (collinear overlap).
    OnBoundary,
    /// The portion lies outside the polygon.
    Outside,
}

/// A maximal run of the input line with a uniform classification.
#[derive(Clone, Debug, PartialEq)]
pub struct LinePortion {
    /// Which side of the polygon the portion is on.
    pub class: PortionClass,
    /// The portion's coordinates (at least two, consecutive distinct).
    pub coords: Vec<Coord>,
}

impl LinePortion {
    /// Length of the portion.
    pub fn length(&self) -> f64 {
        self.coords.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// Splits `line` at every crossing with `poly`'s boundary and returns the
/// classified maximal portions, in order along the line.
///
/// Empty lines produce no portions. Consecutive portions of equal class are
/// merged, so the output alternates classes except around isolated tangent
/// touches (where an `Outside` portion can follow another `Outside` portion
/// is impossible — they merge — but a zero-length touch does not create a
/// portion at all; use the portion endpoints to detect such touch points).
pub fn split_line_by_polygon(line: &LineString, poly: &Polygon) -> Vec<LinePortion> {
    split_line_core(
        line,
        &poly.envelope(),
        |_seg_env, f| {
            for (c, d) in poly.rings().flat_map(|r| r.segments()) {
                f(c, d);
            }
        },
        |p| locate_in_polygon(p, poly),
    )
}

/// The shared splitting engine behind both the naive path (above) and the
/// prepared-geometry path ([`crate::prepared`]).
///
/// `boundary_edges` must yield, for a query segment envelope, a superset
/// of the polygon-boundary edges whose envelope intersects it (extra
/// edges are harmless: envelope-disjoint pairs classify as
/// [`SegmentIntersection::None`] under the exact predicates and
/// contribute no cut). `locate` must implement the exact semantics of
/// [`locate_in_polygon`]. Under those contracts the output is
/// bit-identical regardless of the edge source — which is the guarantee
/// the prepared fast path is built on.
pub(crate) fn split_line_core(
    line: &LineString,
    poly_env: &Envelope,
    mut boundary_edges: impl FnMut(&Envelope, &mut dyn FnMut(Coord, Coord)),
    mut locate: impl FnMut(Coord) -> Location,
) -> Vec<LinePortion> {
    let mut portions: Vec<LinePortion> = Vec::new();
    let mut cut_params: Vec<f64> = Vec::new();
    let mut overlaps: Vec<(f64, f64)> = Vec::new();

    for (a, b) in line.segments() {
        // Gather parametric cut positions on this segment, remembering the
        // collinear-overlap intervals separately: a piece inside such an
        // interval runs along the polygon boundary, and must be classified
        // from the interval rather than by locating its midpoint (the
        // rounded midpoint of a diagonal segment is generally not exactly
        // on the chord, so the exact point-location would miss Boundary).
        cut_params.clear();
        overlaps.clear();
        cut_params.push(0.0);
        cut_params.push(1.0);
        let seg_env = Envelope::from_coords([a, b].iter());
        if seg_env.intersects(poly_env) {
            boundary_edges(&seg_env, &mut |c, d| match segment_intersection(a, b, c, d) {
                SegmentIntersection::None => {}
                SegmentIntersection::Point(p) => cut_params.push(param_on_segment(a, b, p)),
                SegmentIntersection::Overlap(p, q) => {
                    let (tp, tq) = (param_on_segment(a, b, p), param_on_segment(a, b, q));
                    cut_params.push(tp);
                    cut_params.push(tq);
                    overlaps.push((tp.min(tq), tp.max(tq)));
                }
            });
        }
        cut_params.sort_by(f64::total_cmp);
        cut_params.dedup_by(|x, y| (*x - *y).abs() < PARAM_EPS);

        // Classify each sub-piece.
        for w in cut_params.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 < PARAM_EPS {
                continue;
            }
            let p0 = a.lerp(b, t0);
            let p1 = a.lerp(b, t1);
            if p0 == p1 {
                continue;
            }
            let on_boundary =
                overlaps.iter().any(|&(lo, hi)| lo <= t0 + OVERLAP_TOL && t1 <= hi + OVERLAP_TOL);
            let class = if on_boundary {
                PortionClass::OnBoundary
            } else {
                let mid = a.lerp(b, (t0 + t1) * 0.5);
                match locate(mid) {
                    Location::Interior => PortionClass::Inside,
                    Location::Boundary => PortionClass::OnBoundary,
                    Location::Exterior => PortionClass::Outside,
                }
            };
            push_piece(&mut portions, class, p0, p1);
        }
    }
    portions
}

/// Appends a piece, merging with the previous portion when the class
/// matches and the coordinates chain.
fn push_piece(portions: &mut Vec<LinePortion>, class: PortionClass, p0: Coord, p1: Coord) {
    if let Some(last) = portions.last_mut() {
        if last.class == class && last.coords.last() == Some(&p0) {
            last.coords.push(p1);
            return;
        }
    }
    portions.push(LinePortion { class, coords: vec![p0, p1] });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(x0: f64, y0: f64, s: f64) -> Polygon {
        Polygon::from_xy(&[(x0, y0), (x0 + s, y0), (x0 + s, y0 + s), (x0, y0 + s)]).unwrap()
    }

    fn line(pts: &[(f64, f64)]) -> LineString {
        LineString::from_xy(pts).unwrap()
    }

    #[test]
    fn transversal_crossing() {
        let p = sq(0.0, 0.0, 4.0);
        let l = line(&[(-2.0, 2.0), (6.0, 2.0)]);
        let portions = split_line_by_polygon(&l, &p);
        let classes: Vec<_> = portions.iter().map(|p| p.class).collect();
        assert_eq!(
            classes,
            vec![PortionClass::Outside, PortionClass::Inside, PortionClass::Outside]
        );
        assert!((portions[1].length() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fully_inside() {
        let p = sq(0.0, 0.0, 4.0);
        let l = line(&[(1.0, 1.0), (3.0, 3.0)]);
        let portions = split_line_by_polygon(&l, &p);
        assert_eq!(portions.len(), 1);
        assert_eq!(portions[0].class, PortionClass::Inside);
    }

    #[test]
    fn fully_outside() {
        let p = sq(0.0, 0.0, 4.0);
        let l = line(&[(5.0, 5.0), (9.0, 5.0)]);
        let portions = split_line_by_polygon(&l, &p);
        assert_eq!(portions.len(), 1);
        assert_eq!(portions[0].class, PortionClass::Outside);
    }

    #[test]
    fn collinear_run_along_edge() {
        let p = sq(0.0, 0.0, 4.0);
        // Runs along the bottom edge from outside to past the middle.
        let l = line(&[(-1.0, 0.0), (2.0, 0.0)]);
        let portions = split_line_by_polygon(&l, &p);
        let classes: Vec<_> = portions.iter().map(|p| p.class).collect();
        assert_eq!(classes, vec![PortionClass::Outside, PortionClass::OnBoundary]);
        assert!((portions[1].length() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tangent_touch_creates_no_inside_portion() {
        let p = sq(0.0, 0.0, 4.0);
        // Touches the corner (0,0) only.
        let l = line(&[(-1.0, -1.0), (1.0, 1.0)]);
        // passes through the corner into the interior actually — use a true
        // tangent instead: grazes the bottom-left corner travelling along
        // the diagonal x + y = 0.
        let t = line(&[(-2.0, 2.0), (2.0, -2.0)]);
        let portions = split_line_by_polygon(&t, &p);
        assert!(portions.iter().all(|pp| pp.class == PortionClass::Outside));
        // And the diagonal through the corner does enter.
        let portions = split_line_by_polygon(&l, &p);
        assert!(portions.iter().any(|pp| pp.class == PortionClass::Inside));
    }

    #[test]
    fn multi_segment_zigzag() {
        let p = sq(0.0, 0.0, 4.0);
        let l = line(&[(-1.0, 1.0), (2.0, 1.0), (2.0, 5.0), (3.0, 5.0), (3.0, 2.0)]);
        let portions = split_line_by_polygon(&l, &p);
        let classes: Vec<_> = portions.iter().map(|p| p.class).collect();
        assert_eq!(
            classes,
            vec![
                PortionClass::Outside,
                PortionClass::Inside,
                PortionClass::Outside,
                PortionClass::Inside,
            ]
        );
    }

    #[test]
    fn hole_interaction() {
        use crate::polygon::Ring;
        let outer = Ring::from_xy(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]).unwrap();
        let hole = Ring::from_xy(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]).unwrap();
        let p = Polygon::new(outer, vec![hole]);
        let l = line(&[(1.0, 5.0), (9.0, 5.0)]);
        let portions = split_line_by_polygon(&l, &p);
        let classes: Vec<_> = portions.iter().map(|p| p.class).collect();
        assert_eq!(
            classes,
            vec![PortionClass::Inside, PortionClass::Outside, PortionClass::Inside]
        );
        assert!((portions[1].length() - 2.0).abs() < 1e-9);
    }
}
