//! Robust 2-D orientation predicate.
//!
//! [`orient2d`] decides whether three points make a left turn, a right turn
//! or are collinear. Getting this *exactly* right is what separates a
//! geometry kernel that survives real cadastral data from one that
//! misclassifies near-degenerate inputs. The implementation follows
//! Shewchuk's classic scheme: a fast floating-point evaluation with a
//! forward error bound, falling back to exact expansion arithmetic only
//! when the fast result is uncertain.

use crate::Coord;

/// The three possible turn directions of an ordered point triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a → b` (counter-clockwise).
    CounterClockwise,
    /// `c` lies to the right of the directed line `a → b` (clockwise).
    Clockwise,
    /// The three points are exactly collinear.
    Collinear,
}

impl Orientation {
    /// Maps a determinant sign to an orientation.
    #[inline]
    fn from_det(det: f64) -> Orientation {
        if det > 0.0 {
            Orientation::CounterClockwise
        } else if det < 0.0 {
            Orientation::Clockwise
        } else {
            Orientation::Collinear
        }
    }

    /// The opposite turn (collinear stays collinear).
    pub fn reversed(self) -> Orientation {
        match self {
            Orientation::CounterClockwise => Orientation::Clockwise,
            Orientation::Clockwise => Orientation::CounterClockwise,
            Orientation::Collinear => Orientation::Collinear,
        }
    }
}

/// Error-bound coefficient for the fast path, from Shewchuk's analysis:
/// `(3 + 16ε)ε` where ε is the machine epsilon for rounding (2⁻⁵³).
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * f64::EPSILON * 0.5) * (f64::EPSILON * 0.5);

/// Exact orientation of the triple `(a, b, c)`.
///
/// Returns [`Orientation::CounterClockwise`] when the signed area of the
/// triangle `a b c` is positive. The result is exact for all finite inputs:
/// the fast floating-point evaluation is accepted only when it provably has
/// the correct sign, otherwise the determinant is recomputed with exact
/// expansion arithmetic.
pub fn orient2d(a: Coord, b: Coord, c: Coord) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return Orientation::from_det(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Orientation::from_det(det);
        }
        -detleft - detright
    } else {
        return Orientation::from_det(det);
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return Orientation::from_det(det);
    }
    orient2d_exact(a, b, c)
}

/// Convenience: the raw (non-robust) determinant, useful where only a
/// rough magnitude is needed (never for sign decisions).
#[inline]
pub fn orient2d_fast_det(a: Coord, b: Coord, c: Coord) -> f64 {
    (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x)
}

// ---------------------------------------------------------------------------
// Exact expansion arithmetic (Shewchuk). An "expansion" is a sum of
// non-overlapping f64 components ordered by increasing magnitude; its sign
// is the sign of its largest (last nonzero) component.
// ---------------------------------------------------------------------------

/// Knuth's TwoSum: `a + b = x + y` exactly, with `x = fl(a+b)`.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    let avirt = x - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (x, around + bround)
}

/// TwoDiff: `a - b = x + y` exactly.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (x, around + bround)
}

/// Veltkamp's splitter constant: 2^27 + 1.
const SPLITTER: f64 = 134_217_729.0;

/// Splits `a` into high and low halves whose product terms are exact.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let ahi = c - abig;
    let alo = a - ahi;
    (ahi, alo)
}

/// Dekker's TwoProduct: `a * b = x + y` exactly.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - (ahi * bhi);
    let err2 = err1 - (alo * bhi);
    let err3 = err2 - (ahi * blo);
    (x, alo * blo - err3)
}

/// Adds the scalar `b` into the expansion `e`, producing a new expansion.
/// Shewchuk's GROW-EXPANSION; output components are non-overlapping and in
/// increasing magnitude order if `e` was.
fn grow_expansion(e: &[f64], b: f64, out: &mut Vec<f64>) {
    out.clear();
    let mut q = b;
    for &ei in e {
        let (qnew, h) = two_sum(q, ei);
        if h != 0.0 {
            out.push(h);
        }
        q = qnew;
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
}

/// Sign of the exact determinant
/// `(a.x-c.x)(b.y-c.y) - (a.y-c.y)(b.x-c.x)` computed with expansions.
fn orient2d_exact(a: Coord, b: Coord, c: Coord) -> Orientation {
    // Exact differences: each is a two-component expansion.
    let (axcy_hi, axcy_lo) = two_diff(a.x, c.x);
    let (bycy_hi, bycy_lo) = two_diff(b.y, c.y);
    let (aycy_hi, aycy_lo) = two_diff(a.y, c.y);
    let (bxcx_hi, bxcx_lo) = two_diff(b.x, c.x);

    // det = (axcy_hi+axcy_lo)(bycy_hi+bycy_lo) - (aycy_hi+aycy_lo)(bxcx_hi+bxcx_lo)
    // Expand both products into exact component lists.
    let mut components: Vec<f64> = Vec::with_capacity(16);
    for &(p, q) in &[(axcy_hi, bycy_hi), (axcy_hi, bycy_lo), (axcy_lo, bycy_hi), (axcy_lo, bycy_lo)]
    {
        let (x, y) = two_product(p, q);
        components.push(x);
        components.push(y);
    }
    for &(p, q) in &[(aycy_hi, bxcx_hi), (aycy_hi, bxcx_lo), (aycy_lo, bxcx_hi), (aycy_lo, bxcx_lo)]
    {
        let (x, y) = two_product(p, q);
        components.push(-x);
        components.push(-y);
    }

    // Distill the component list into a single non-overlapping expansion by
    // growing it one scalar at a time.
    let mut e: Vec<f64> = vec![0.0];
    let mut scratch: Vec<f64> = Vec::with_capacity(components.len() + 1);
    for comp in components {
        if comp == 0.0 {
            continue;
        }
        grow_expansion(&e, comp, &mut scratch);
        std::mem::swap(&mut e, &mut scratch);
    }

    // Sign of the expansion = sign of its largest-magnitude (last) nonzero
    // component.
    for &v in e.iter().rev() {
        if v != 0.0 {
            return Orientation::from_det(v);
        }
    }
    Orientation::Collinear
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_turns() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 0.0);
        assert_eq!(orient2d(a, b, Coord::new(0.0, 1.0)), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, b, Coord::new(0.0, -1.0)), Orientation::Clockwise);
        assert_eq!(orient2d(a, b, Coord::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn reversal() {
        assert_eq!(Orientation::CounterClockwise.reversed(), Orientation::Clockwise);
        assert_eq!(Orientation::Collinear.reversed(), Orientation::Collinear);
    }

    #[test]
    fn antisymmetry_under_swap() {
        let a = Coord::new(0.3, 0.7);
        let b = Coord::new(1.9, -0.2);
        let c = Coord::new(-0.5, 2.4);
        assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    }

    /// The classic robustness torture test: points nearly on the line
    /// `y = x`, offset by one ulp. The naive determinant gets many of these
    /// wrong; the exact fallback must not.
    #[test]
    fn near_collinear_exactness() {
        let a = Coord::new(0.5, 0.5);
        let b = Coord::new(12.0, 12.0);
        // Exactly on the line.
        assert_eq!(orient2d(a, b, Coord::new(24.0, 24.0)), Orientation::Collinear);
        // One ulp above / below in y.
        let above = Coord::new(24.0, f64::from_bits(24.0_f64.to_bits() + 1));
        let below = Coord::new(24.0, f64::from_bits(24.0_f64.to_bits() - 1));
        assert_eq!(orient2d(a, b, above), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, b, below), Orientation::Clockwise);
    }

    #[test]
    fn tiny_coordinates_remain_exact() {
        let a = Coord::new(1e-300, 1e-300);
        let b = Coord::new(2e-300, 2e-300);
        let c = Coord::new(3e-300, 3e-300);
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn exact_path_agrees_with_fast_path_on_clear_cases() {
        // Force the exact routine directly and compare.
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(10.0, 0.0);
        let c = Coord::new(5.0, 3.0);
        assert_eq!(orient2d_exact(a, b, c), Orientation::CounterClockwise);
        assert_eq!(orient2d_exact(a, c, b), Orientation::Clockwise);
        assert_eq!(orient2d_exact(a, b, Coord::new(20.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn two_sum_and_two_product_are_exact() {
        let (x, y) = two_sum(1e16, 1.0);
        assert_eq!(x + y, 1e16 + 1.0);
        assert_eq!(x, 1e16); // 1.0 lost in rounding, recovered in y
        assert_eq!(y, 1.0);
        let (p, q) = two_product(1e8 + 1.0, 1e8 + 1.0);
        // (1e8+1)² = 1e16 + 2e8 + 1. The rounded product loses the final
        // +1 (ulp at that magnitude is 2); TwoProduct recovers it exactly.
        assert_eq!(p, (1e8 + 1.0) * (1e8 + 1.0));
        assert_eq!(p, 1.0e16 + 2.0e8);
        assert_eq!(q, 1.0);
    }

    #[test]
    fn translation_consistency_near_degenerate() {
        // A thin triangle translated far from the origin: sign must be stable.
        let dx = 1e7;
        let a = Coord::new(dx, dx);
        let b = Coord::new(dx + 1.0, dx + 1.0);
        let c = Coord::new(dx + 2.0, dx + 2.0 + 1e-9);
        assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
        let c2 = Coord::new(dx + 2.0, dx + 2.0 - 1e-9);
        assert_eq!(orient2d(a, b, c2), Orientation::Clockwise);
    }
}
