//! Scalar measures: area, length and centroid for every geometry type.

use crate::polygon::Ring;
use crate::{Coord, Geometry, LineString, Polygon};

/// Total enclosed area of a geometry. Zero for points and lines; for
/// collections, the sum over members.
pub fn area(g: &Geometry) -> f64 {
    match g {
        Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
        Geometry::LineString(_) | Geometry::MultiLineString(_) => 0.0,
        Geometry::Polygon(p) => p.area(),
        Geometry::MultiPolygon(m) => m.area(),
        Geometry::GeometryCollection(c) => c.0.iter().map(area).sum(),
    }
}

/// Total curve length of a geometry. For polygons this is the perimeter
/// (matching `ST_Length` semantics of several systems for 2-D data, and the
/// quantity Jackpine's analysis micro benchmark measures); zero for points.
pub fn length(g: &Geometry) -> f64 {
    match g {
        Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
        Geometry::LineString(l) => l.length(),
        Geometry::MultiLineString(m) => m.length(),
        Geometry::Polygon(p) => p.perimeter(),
        Geometry::MultiPolygon(m) => m.0.iter().map(Polygon::perimeter).sum(),
        Geometry::GeometryCollection(c) => c.0.iter().map(length).sum(),
    }
}

/// Centroid of a geometry, or `None` for empty input.
///
/// Follows the OGC convention of using only the highest-dimension
/// components: polygons use the area-weighted centroid (holes subtract),
/// lines the length-weighted centroid, point sets the arithmetic mean.
pub fn centroid(g: &Geometry) -> Option<Coord> {
    let mut acc = CentroidAccumulator::default();
    acc.add_geometry(g);
    acc.finish()
}

/// Streaming centroid accumulation at all three dimensions; the highest
/// dimension with mass wins.
#[derive(Default)]
struct CentroidAccumulator {
    area_sum: f64,
    area_cx: f64,
    area_cy: f64,
    len_sum: f64,
    len_cx: f64,
    len_cy: f64,
    pt_count: f64,
    pt_cx: f64,
    pt_cy: f64,
}

impl CentroidAccumulator {
    fn add_geometry(&mut self, g: &Geometry) {
        match g {
            Geometry::Point(p) => {
                if let Some(c) = p.coord() {
                    self.add_point(c);
                }
            }
            Geometry::MultiPoint(m) => {
                for p in &m.0 {
                    if let Some(c) = p.coord() {
                        self.add_point(c);
                    }
                }
            }
            Geometry::LineString(l) => self.add_line(l),
            Geometry::MultiLineString(m) => {
                for l in &m.0 {
                    self.add_line(l);
                }
            }
            Geometry::Polygon(p) => self.add_polygon(p),
            Geometry::MultiPolygon(m) => {
                for p in &m.0 {
                    self.add_polygon(p);
                }
            }
            Geometry::GeometryCollection(c) => {
                for g in &c.0 {
                    self.add_geometry(g);
                }
            }
        }
    }

    fn add_point(&mut self, c: Coord) {
        self.pt_count += 1.0;
        self.pt_cx += c.x;
        self.pt_cy += c.y;
    }

    fn add_line(&mut self, l: &LineString) {
        for (a, b) in l.segments() {
            let len = a.distance(b);
            let mid = a.lerp(b, 0.5);
            self.len_sum += len;
            self.len_cx += mid.x * len;
            self.len_cy += mid.y * len;
        }
    }

    fn add_polygon(&mut self, p: &Polygon) {
        // Signed contribution: CCW exterior adds, CW holes subtract.
        self.add_ring_signed(p.exterior());
        for h in p.holes() {
            self.add_ring_signed(h);
        }
    }

    fn add_ring_signed(&mut self, r: &Ring) {
        // Triangulation against the origin: each edge (a,b) contributes a
        // signed triangle (0,a,b) with centroid (a+b)/3 and signed area
        // cross(a,b)/2.
        for (a, b) in r.segments() {
            let signed = a.cross(b) * 0.5;
            self.area_sum += signed;
            self.area_cx += (a.x + b.x) / 3.0 * signed;
            self.area_cy += (a.y + b.y) / 3.0 * signed;
        }
    }

    fn finish(self) -> Option<Coord> {
        if self.area_sum.abs() > 0.0 {
            return Some(Coord::new(self.area_cx / self.area_sum, self.area_cy / self.area_sum));
        }
        if self.len_sum > 0.0 {
            return Some(Coord::new(self.len_cx / self.len_sum, self.len_cy / self.len_sum));
        }
        if self.pt_count > 0.0 {
            return Some(Coord::new(self.pt_cx / self.pt_count, self.pt_cy / self.pt_count));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;
    use crate::{GeometryCollection, MultiPoint, Point};

    fn square(x0: f64, y0: f64, s: f64) -> Polygon {
        Polygon::from_xy(&[(x0, y0), (x0 + s, y0), (x0 + s, y0 + s), (x0, y0 + s)]).unwrap()
    }

    #[test]
    fn areas() {
        assert_eq!(area(&square(0.0, 0.0, 2.0).into()), 4.0);
        assert_eq!(area(&Point::new(1.0, 1.0).unwrap().into()), 0.0);
        let l: Geometry = LineString::from_xy(&[(0.0, 0.0), (5.0, 0.0)]).unwrap().into();
        assert_eq!(area(&l), 0.0);
    }

    #[test]
    fn lengths() {
        let l: Geometry = LineString::from_xy(&[(0.0, 0.0), (3.0, 4.0)]).unwrap().into();
        assert_eq!(length(&l), 5.0);
        assert_eq!(length(&square(0.0, 0.0, 2.0).into()), 8.0);
        assert_eq!(length(&Point::new(0.0, 0.0).unwrap().into()), 0.0);
    }

    #[test]
    fn centroid_of_square() {
        let c = centroid(&square(0.0, 0.0, 2.0).into()).unwrap();
        assert!(c.close_to(Coord::new(1.0, 1.0), 1e-12));
    }

    #[test]
    fn centroid_with_hole_shifts_away() {
        // 4×4 square with a hole in its right half: centroid moves left.
        let outer = Ring::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap();
        let hole = Ring::from_xy(&[(2.5, 1.5), (3.5, 1.5), (3.5, 2.5), (2.5, 2.5)]).unwrap();
        let p = Polygon::new(outer, vec![hole]);
        let c = centroid(&p.into()).unwrap();
        assert!(c.x < 2.0);
        assert!((c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_line_is_length_weighted() {
        // Two segments: long one dominates.
        let l = LineString::from_xy(&[(0.0, 0.0), (10.0, 0.0), (10.0, 1.0)]).unwrap();
        let c = centroid(&l.into()).unwrap();
        assert!(c.x > 5.0);
    }

    #[test]
    fn centroid_of_points_is_mean() {
        let mp = MultiPoint(vec![
            Point::new(0.0, 0.0).unwrap(),
            Point::new(2.0, 0.0).unwrap(),
            Point::new(1.0, 3.0).unwrap(),
        ]);
        let c = centroid(&mp.into()).unwrap();
        assert!(c.close_to(Coord::new(1.0, 1.0), 1e-12));
    }

    #[test]
    fn highest_dimension_wins_in_collections() {
        let gc = GeometryCollection(vec![
            Point::new(100.0, 100.0).unwrap().into(),
            square(0.0, 0.0, 2.0).into(),
        ]);
        let c = centroid(&Geometry::GeometryCollection(gc)).unwrap();
        // The faraway point must not influence the areal centroid.
        assert!(c.close_to(Coord::new(1.0, 1.0), 1e-12));
    }

    #[test]
    fn empty_centroid_is_none() {
        assert_eq!(centroid(&Point::empty().into()), None);
        assert_eq!(centroid(&Geometry::GeometryCollection(GeometryCollection(vec![]))), None);
    }

    #[test]
    fn translated_centroid_translates() {
        let c1 = centroid(&square(0.0, 0.0, 2.0).into()).unwrap();
        let c2 = centroid(&square(100.0, 50.0, 2.0).into()).unwrap();
        assert!(Coord::new(c2.x - 100.0, c2.y - 50.0).close_to(c1, 1e-9));
    }
}
