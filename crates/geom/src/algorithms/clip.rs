//! Polygon overlay: intersection, union and difference.
//!
//! The implementation follows the *edge classification* scheme rather than
//! classic Greiner–Hormann pointer surgery, because it degrades gracefully
//! on the degeneracies real cadastral data is full of (shared edges,
//! T-junctions, vertices on edges):
//!
//! 1. split every boundary edge of each operand at all intersections with
//!    the other operand's boundary (robust classification via
//!    [`segment_intersection`]),
//! 2. classify each sub-edge by the location of its midpoint in the other
//!    operand (interior / boundary / exterior),
//! 3. select sub-edges according to the boolean operation, reversing where
//!    the operation requires it (holes from `difference`),
//! 4. stitch the selected directed edges into rings by angular walking and
//!    assemble shells and holes into polygons.
//!
//! Directed edges always keep the operand's interior on their **left**
//! (counter-clockwise shells, clockwise holes), which makes the selection
//! rules purely local.

use super::locate::{locate_in_polygon, locate_in_ring, Location};
use super::segment::{segment_intersection, SegmentIntersection};
use crate::polygon::Ring;
use crate::{
    Coord, Envelope, GeomError, Geometry, GeometryCollection, LineString, MultiLineString,
    MultiPoint, MultiPolygon, Point, Polygon, Result,
};
use std::collections::HashMap;

/// The three supported boolean operations on areal geometries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoolOp {
    /// Points in both operands.
    Intersection,
    /// Points in either operand.
    Union,
    /// Points in the first operand but not the second.
    Difference,
}

/// Geometric intersection of two geometries.
///
/// Supported operand combinations (symmetric unless noted):
/// point × anything, line × line, line × polygon, polygon × polygon, and
/// the corresponding Multi*/collection decompositions. The result is the
/// lowest-dimension faithful representation (possibly an empty collection).
pub fn intersection(a: &Geometry, b: &Geometry) -> Result<Geometry> {
    match (a, b) {
        // Point against anything: membership test.
        (Geometry::Point(_) | Geometry::MultiPoint(_), _) => point_intersection(a, b),
        (_, Geometry::Point(_) | Geometry::MultiPoint(_)) => point_intersection(b, a),
        // Line against line.
        (
            Geometry::LineString(_) | Geometry::MultiLineString(_),
            Geometry::LineString(_) | Geometry::MultiLineString(_),
        ) => line_line_intersection(a, b),
        // Line against areal.
        (
            Geometry::LineString(_) | Geometry::MultiLineString(_),
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
        ) => line_areal_intersection(a, b),
        (
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
            Geometry::LineString(_) | Geometry::MultiLineString(_),
        ) => line_areal_intersection(b, a),
        // Areal against areal.
        (
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
        ) => areal_overlay(a, b, BoolOp::Intersection),
        _ => Err(GeomError::InvalidArgument(format!(
            "intersection not supported between {:?} and {:?}",
            a.geometry_type(),
            b.geometry_type()
        ))),
    }
}

/// Geometric union. Supported for areal × areal (and Multi* thereof);
/// other combinations return [`GeomError::InvalidArgument`].
pub fn union(a: &Geometry, b: &Geometry) -> Result<Geometry> {
    match (a, b) {
        (
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
        ) => areal_overlay(a, b, BoolOp::Union),
        _ => Err(GeomError::InvalidArgument(format!(
            "union not supported between {:?} and {:?}",
            a.geometry_type(),
            b.geometry_type()
        ))),
    }
}

/// Geometric difference `a − b`. Supported for areal × areal.
pub fn difference(a: &Geometry, b: &Geometry) -> Result<Geometry> {
    match (a, b) {
        (
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
            Geometry::Polygon(_) | Geometry::MultiPolygon(_),
        ) => areal_overlay(a, b, BoolOp::Difference),
        _ => Err(GeomError::InvalidArgument(format!(
            "difference not supported between {:?} and {:?}",
            a.geometry_type(),
            b.geometry_type()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Point and line cases
// ---------------------------------------------------------------------------

fn point_coords(g: &Geometry, out: &mut Vec<Coord>) {
    match g {
        Geometry::Point(p) => out.extend(p.coord()),
        Geometry::MultiPoint(m) => out.extend(m.0.iter().filter_map(Point::coord)),
        Geometry::GeometryCollection(c) => {
            for g in &c.0 {
                point_coords(g, out);
            }
        }
        _ => {}
    }
}

fn point_intersection(pts: &Geometry, other: &Geometry) -> Result<Geometry> {
    let mut cs = Vec::new();
    point_coords(pts, &mut cs);
    let kept: Vec<Point> = cs
        .into_iter()
        .filter(|&c| coord_intersects_geometry(c, other))
        .map(|c| Point(Some(c)))
        .collect();
    Ok(collapse_points(kept))
}

fn collapse_points(mut pts: Vec<Point>) -> Geometry {
    pts.sort_by(|a, b| {
        let (ca, cb) = (a.coord().unwrap_or_default(), b.coord().unwrap_or_default());
        ca.x.total_cmp(&cb.x).then(ca.y.total_cmp(&cb.y))
    });
    pts.dedup();
    match pts.len() {
        0 => Geometry::GeometryCollection(GeometryCollection(Vec::new())),
        1 => Geometry::Point(pts.pop().expect("len checked")),
        _ => Geometry::MultiPoint(MultiPoint(pts)),
    }
}

/// `true` when coordinate `c` is a point of `g` (interior or boundary).
pub(crate) fn coord_intersects_geometry(c: Coord, g: &Geometry) -> bool {
    use super::segment::point_on_segment;
    match g {
        Geometry::Point(p) => p.coord() == Some(c),
        Geometry::MultiPoint(m) => m.0.iter().any(|p| p.coord() == Some(c)),
        Geometry::LineString(l) => l.segments().any(|(a, b)| point_on_segment(c, a, b)),
        Geometry::MultiLineString(m) => {
            m.0.iter().any(|l| l.segments().any(|(a, b)| point_on_segment(c, a, b)))
        }
        Geometry::Polygon(p) => locate_in_polygon(c, p) != Location::Exterior,
        Geometry::MultiPolygon(m) => {
            m.0.iter().any(|p| locate_in_polygon(c, p) != Location::Exterior)
        }
        Geometry::GeometryCollection(gc) => gc.0.iter().any(|g| coord_intersects_geometry(c, g)),
    }
}

fn lines_of<'a>(g: &'a Geometry, out: &mut Vec<&'a LineString>) {
    match g {
        Geometry::LineString(l) if !l.is_empty() => {
            out.push(l);
        }
        Geometry::MultiLineString(m) => out.extend(m.0.iter().filter(|l| !l.is_empty())),
        Geometry::GeometryCollection(c) => {
            for g in &c.0 {
                lines_of(g, out);
            }
        }
        _ => {}
    }
}

fn polygons_of<'a>(g: &'a Geometry, out: &mut Vec<&'a Polygon>) {
    match g {
        Geometry::Polygon(p) => out.push(p),
        Geometry::MultiPolygon(m) => out.extend(m.0.iter()),
        Geometry::GeometryCollection(c) => {
            for g in &c.0 {
                polygons_of(g, out);
            }
        }
        _ => {}
    }
}

fn line_line_intersection(a: &Geometry, b: &Geometry) -> Result<Geometry> {
    let (mut la, mut lb) = (Vec::new(), Vec::new());
    lines_of(a, &mut la);
    lines_of(b, &mut lb);
    let mut points: Vec<Point> = Vec::new();
    let mut overlaps: Vec<LineString> = Vec::new();
    for l in &la {
        for m in &lb {
            for (p, q) in l.segments() {
                for (r, s) in m.segments() {
                    match segment_intersection(p, q, r, s) {
                        SegmentIntersection::None => {}
                        SegmentIntersection::Point(x) => points.push(Point(Some(x))),
                        SegmentIntersection::Overlap(x, y) => {
                            overlaps.push(LineString::new(vec![x, y])?);
                        }
                    }
                }
            }
        }
    }
    if overlaps.is_empty() {
        Ok(collapse_points(points))
    } else if points.is_empty() && overlaps.len() == 1 {
        Ok(Geometry::LineString(overlaps.pop().expect("len checked")))
    } else if points.is_empty() {
        Ok(Geometry::MultiLineString(MultiLineString(overlaps)))
    } else {
        let mut members: Vec<Geometry> = overlaps.into_iter().map(Geometry::LineString).collect();
        members.push(collapse_points(points));
        Ok(Geometry::GeometryCollection(GeometryCollection(members)))
    }
}

fn line_areal_intersection(lines: &Geometry, areal: &Geometry) -> Result<Geometry> {
    let mut ls = Vec::new();
    lines_of(lines, &mut ls);
    let mut polys = Vec::new();
    polygons_of(areal, &mut polys);
    let mut pieces: Vec<LineString> = Vec::new();
    for l in &ls {
        for p in &polys {
            for portion in super::line_split::split_line_by_polygon(l, p) {
                if portion.class != super::line_split::PortionClass::Outside {
                    pieces.push(LineString::new(portion.coords)?);
                }
            }
        }
    }
    Ok(match pieces.len() {
        0 => Geometry::GeometryCollection(GeometryCollection(Vec::new())),
        1 => Geometry::LineString(pieces.pop().expect("len checked")),
        _ => Geometry::MultiLineString(MultiLineString(pieces)),
    })
}

// ---------------------------------------------------------------------------
// Areal overlay
// ---------------------------------------------------------------------------

fn areal_overlay(a: &Geometry, b: &Geometry, op: BoolOp) -> Result<Geometry> {
    let (mut pa, mut pb) = (Vec::new(), Vec::new());
    polygons_of(a, &mut pa);
    polygons_of(b, &mut pb);

    match op {
        BoolOp::Intersection => {
            // Distribute over members, then union the pieces.
            let mut acc: Vec<Polygon> = Vec::new();
            for p in &pa {
                for q in &pb {
                    let pieces = overlay_pair(p, q, BoolOp::Intersection)?;
                    acc = union_accumulate(acc, pieces)?;
                }
            }
            Ok(polygons_to_geometry(acc))
        }
        BoolOp::Union => {
            let mut acc: Vec<Polygon> = pa.iter().map(|p| (*p).clone()).collect();
            for q in &pb {
                acc = union_accumulate(acc, vec![(*q).clone()])?;
            }
            Ok(polygons_to_geometry(acc))
        }
        BoolOp::Difference => {
            // (⋃ pa) − (⋃ pb): subtract each q from every accumulated piece.
            let mut acc: Vec<Polygon> = pa.iter().map(|p| (*p).clone()).collect();
            for q in &pb {
                let mut next: Vec<Polygon> = Vec::new();
                for p in &acc {
                    next.extend(overlay_pair(p, q, BoolOp::Difference)?);
                }
                acc = next;
            }
            Ok(polygons_to_geometry(acc))
        }
    }
}

/// Folds `pieces` into `acc` maintaining a disjoint-polygon invariant by
/// unioning overlapping members pairwise.
fn union_accumulate(acc: Vec<Polygon>, pieces: Vec<Polygon>) -> Result<Vec<Polygon>> {
    let mut result = acc;
    for piece in pieces {
        let mut current = piece;
        loop {
            let mut merged = false;
            let mut i = 0;
            while i < result.len() {
                if current.envelope().intersects(&result[i].envelope()) {
                    let candidate = overlay_pair(&result[i], &current, BoolOp::Union)?;
                    // A genuine merge yields exactly one polygon.
                    if candidate.len() == 1 {
                        result.swap_remove(i);
                        current = candidate.into_iter().next().expect("len checked");
                        merged = true;
                        continue;
                    }
                }
                i += 1;
            }
            if !merged {
                break;
            }
        }
        result.push(current);
    }
    Ok(result)
}

fn polygons_to_geometry(mut ps: Vec<Polygon>) -> Geometry {
    match ps.len() {
        0 => Geometry::GeometryCollection(GeometryCollection(Vec::new())),
        1 => Geometry::Polygon(ps.pop().expect("len checked")),
        _ => Geometry::MultiPolygon(MultiPolygon(ps)),
    }
}

/// A directed edge selected for the output, interior of the result on its
/// left.
#[derive(Clone, Copy, Debug)]
struct DirEdge {
    from: Coord,
    to: Coord,
}

/// Overlay of exactly two polygons; returns the result as disjoint
/// polygons (shells with their holes).
fn overlay_pair(a: &Polygon, b: &Polygon, op: BoolOp) -> Result<Vec<Polygon>> {
    // Fast paths on envelopes.
    if !a.envelope().intersects(&b.envelope()) {
        return Ok(match op {
            BoolOp::Intersection => Vec::new(),
            BoolOp::Union => vec![a.clone(), b.clone()],
            BoolOp::Difference => vec![a.clone()],
        });
    }

    let snap = snap_epsilon(&a.envelope().union(&b.envelope()));
    let mut edges: Vec<DirEdge> = Vec::new();
    collect_selected_edges(a, b, op, /*reverse=*/ false, snap, &mut edges);
    let reverse_b = op == BoolOp::Difference;
    collect_selected_edges(b, a, flip_for_b(op), reverse_b, snap, &mut edges);

    let rings = stitch_rings(edges, snap)?;
    assemble_polygons(rings)
}

/// The classification op to apply to B's edges: identical except that for
/// difference we keep B-edges *inside* A (they become hole boundaries).
fn flip_for_b(op: BoolOp) -> BoolOp {
    op
}

fn snap_epsilon(env: &Envelope) -> f64 {
    let diag = (env.width().hypot(env.height())).max(1.0);
    diag * 1e-10
}

/// Splits `subject`'s directed boundary at intersections with `other` and
/// appends the sub-edges selected by `op` to `out`.
///
/// Selection rules (midpoint location in `other`):
/// * `Intersection`: keep interior midpoints; shared-boundary edges kept
///   from the first operand only, when both interiors are on the same side.
/// * `Union`: keep exterior midpoints; shared-boundary edges kept from the
///   first operand only, same-side rule.
/// * `Difference`, subject = A: keep exterior midpoints; shared edges kept
///   when interiors are on *opposite* sides.
/// * `Difference`, subject = B (`reverse = true`): keep interior midpoints,
///   reversed.
fn collect_selected_edges(
    subject: &Polygon,
    other: &Polygon,
    op: BoolOp,
    reverse: bool,
    snap: f64,
    out: &mut Vec<DirEdge>,
) {
    let is_first_operand = !reverse || op != BoolOp::Difference;
    let mut cuts: Vec<f64> = Vec::new();
    let mut overlaps: Vec<(f64, f64)> = Vec::new();
    for ring in subject.rings() {
        for (p, q) in ring.segments() {
            cuts.clear();
            overlaps.clear();
            cuts.push(0.0);
            cuts.push(1.0);
            for (r, s) in other.rings().flat_map(|rr| rr.segments()) {
                match segment_intersection(p, q, r, s) {
                    SegmentIntersection::None => {}
                    SegmentIntersection::Point(x) => cuts.push(param(p, q, x)),
                    SegmentIntersection::Overlap(x, y) => {
                        let (tx, ty) = (param(p, q, x), param(p, q, y));
                        cuts.push(tx);
                        cuts.push(ty);
                        overlaps.push((tx.min(ty), tx.max(ty)));
                    }
                }
            }
            cuts.sort_by(f64::total_cmp);
            cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
            for w in cuts.windows(2) {
                let (t0, t1) = (w[0], w[1]);
                let from = p.lerp(q, t0);
                let to = p.lerp(q, t1);
                if from.close_to(to, snap) {
                    continue;
                }
                let mid = p.lerp(q, (t0 + t1) * 0.5);
                // A sub-edge inside a collinear-overlap interval runs along
                // the other operand's boundary. This must be decided from
                // the recorded intervals, not by locating the rounded
                // midpoint: the midpoint of a diagonal edge is generally
                // *not* exactly on the line through its endpoints, so the
                // exact point-location would misclassify shared edges.
                let tol = 1e-9;
                let on_other_boundary =
                    overlaps.iter().any(|&(a, b)| a <= t0 + tol && t1 <= b + tol);
                let keep = if on_other_boundary {
                    shared_edge_keep(mid, from, to, other, op, is_first_operand, snap)
                } else {
                    match locate_in_polygon(mid, other) {
                        Location::Interior => matches!(
                            (op, reverse),
                            (BoolOp::Intersection, _) | (BoolOp::Difference, true)
                        ),
                        Location::Exterior => matches!(
                            (op, reverse),
                            (BoolOp::Union, _) | (BoolOp::Difference, false)
                        ),
                        Location::Boundary => {
                            shared_edge_keep(mid, from, to, other, op, is_first_operand, snap)
                        }
                    }
                };
                if keep {
                    if reverse {
                        out.push(DirEdge { from: to, to: from });
                    } else {
                        out.push(DirEdge { from, to });
                    }
                }
            }
        }
    }
}

/// Decides whether a sub-edge lying *on* the other operand's boundary
/// belongs to the result. The subject's interior is on the edge's left;
/// probe which side the other operand's interior is on.
fn shared_edge_keep(
    mid: Coord,
    from: Coord,
    to: Coord,
    other: &Polygon,
    op: BoolOp,
    is_first_operand: bool,
    snap: f64,
) -> bool {
    // Probe a point slightly to the left of the directed edge.
    let d = to - from;
    let n = Coord::new(-d.y, d.x); // left normal
    let len = n.norm();
    if len == 0.0 {
        return false;
    }
    let probe_dist = (snap * 1e3).min(d.norm() * 1e-3).max(snap * 10.0);
    let left_probe = Coord::new(mid.x + n.x / len * probe_dist, mid.y + n.y / len * probe_dist);
    let other_left = locate_in_polygon(left_probe, other) == Location::Interior;
    match op {
        // Same side ⇒ the edge bounds both regions identically.
        BoolOp::Intersection | BoolOp::Union => {
            other_left && is_first_operand || {
                // For union, edges whose left side is *outside* both operands
                // also bound the result when interiors are on the same side;
                // with interior-left convention, subject interior is left, so
                // "same side" simply means other_left.
                false
            }
        }
        // Difference keeps A-boundary edges where B is on the right.
        BoolOp::Difference => is_first_operand && !other_left,
    }
}

fn param(a: Coord, b: Coord, p: Coord) -> f64 {
    let dx = (b.x - a.x).abs();
    let dy = (b.y - a.y).abs();
    let t = if dx >= dy {
        if b.x == a.x {
            0.0
        } else {
            (p.x - a.x) / (b.x - a.x)
        }
    } else {
        (p.y - a.y) / (b.y - a.y)
    };
    t.clamp(0.0, 1.0)
}

/// Integer grid key used to merge nearly identical coordinates.
fn snap_key(c: Coord, snap: f64) -> (i64, i64) {
    ((c.x / snap).round() as i64, (c.y / snap).round() as i64)
}

/// Chains directed edges into closed rings. At junction vertices the walk
/// takes the most counter-clockwise outgoing edge relative to the reversed
/// incoming direction, which traces faces keeping the interior on the left.
fn stitch_rings(edges: Vec<DirEdge>, snap: f64) -> Result<Vec<Vec<Coord>>> {
    // Snap coordinates so edges computed from different operand pairs meet.
    let mut nodes: HashMap<(i64, i64), Coord> = HashMap::new();
    let mut canon = |c: Coord| -> Coord {
        let k = snap_key(c, snap);
        // Check the cell and neighbours for an existing representative.
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(&rep) = nodes.get(&(k.0 + dx, k.1 + dy)) {
                    if rep.close_to(c, snap * 2.0) {
                        return rep;
                    }
                }
            }
        }
        nodes.insert(k, c);
        c
    };

    let mut canon_edges: Vec<(Coord, Coord)> = Vec::with_capacity(edges.len());
    for e in edges {
        let f = canon(e.from);
        let t = canon(e.to);
        if f != t {
            canon_edges.push((f, t));
        }
    }
    // Deduplicate identical directed edges (shared boundaries contribute
    // one copy from each operand in some configurations).
    canon_edges.sort_by(|a, b| {
        a.0.x
            .total_cmp(&b.0.x)
            .then(a.0.y.total_cmp(&b.0.y))
            .then(a.1.x.total_cmp(&b.1.x))
            .then(a.1.y.total_cmp(&b.1.y))
    });
    canon_edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    // Outgoing adjacency.
    let mut out_edges: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, (f, _)) in canon_edges.iter().enumerate() {
        out_edges.entry(snap_key(*f, snap)).or_default().push(i);
    }

    let mut used = vec![false; canon_edges.len()];
    let mut rings: Vec<Vec<Coord>> = Vec::new();

    for start in 0..canon_edges.len() {
        if used[start] {
            continue;
        }
        let mut ring: Vec<Coord> = Vec::new();
        let mut current = start;
        let origin = canon_edges[start].0;
        ring.push(origin);
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > canon_edges.len() + 1 {
                // Unclosable chain: drop it rather than loop forever.
                ring.clear();
                break;
            }
            used[current] = true;
            let (from, to) = canon_edges[current];
            ring.push(to);
            if to == origin {
                break;
            }
            let Some(candidates) = out_edges.get(&snap_key(to, snap)) else {
                ring.clear();
                break;
            };
            let incoming = to - from;
            let mut best: Option<(usize, f64)> = None;
            for &cand in candidates {
                if used[cand] {
                    continue;
                }
                let dir = canon_edges[cand].1 - canon_edges[cand].0;
                // CCW angle from the reversed incoming direction.
                let back = -incoming;
                let ang = ccw_angle(back, dir);
                match best {
                    None => best = Some((cand, ang)),
                    Some((_, ba)) if ang < ba => best = Some((cand, ang)),
                    _ => {}
                }
            }
            match best {
                Some((next, _)) => current = next,
                None => {
                    ring.clear();
                    break;
                }
            }
        }
        if ring.len() >= 4 {
            rings.push(ring);
        }
    }
    Ok(rings)
}

/// Counter-clockwise angle in `(0, 2π]` from direction `a` to direction `b`.
fn ccw_angle(a: Coord, b: Coord) -> f64 {
    let ang = b.y.atan2(b.x) - a.y.atan2(a.x);
    let two_pi = std::f64::consts::TAU;
    let mut r = ang % two_pi;
    if r <= 0.0 {
        r += two_pi;
    }
    r
}

/// Groups stitched rings into polygons: CCW rings are shells, CW rings are
/// holes assigned to the smallest enclosing shell.
fn assemble_polygons(raw_rings: Vec<Vec<Coord>>) -> Result<Vec<Polygon>> {
    let mut shells: Vec<Ring> = Vec::new();
    let mut holes: Vec<Ring> = Vec::new();
    for mut coords in raw_rings {
        coords.dedup();
        if coords.len() < 4 || coords.first() != coords.last() {
            continue;
        }
        let Ok(ring) = Ring::new(coords) else {
            continue; // degenerate sliver: drop
        };
        if ring.area() < 1e-20 {
            continue;
        }
        if ring.is_ccw() {
            shells.push(ring);
        } else {
            holes.push(ring);
        }
    }

    let mut assigned: Vec<Vec<Ring>> = vec![Vec::new(); shells.len()];
    'hole: for hole in holes {
        let probe = hole.coords()[0];
        let mut best: Option<(usize, f64)> = None;
        for (i, shell) in shells.iter().enumerate() {
            if locate_in_ring(probe, shell.coords()) != Location::Exterior {
                let a = shell.area();
                if best.is_none_or(|(_, ba)| a < ba) {
                    best = Some((i, a));
                }
            }
        }
        if let Some((i, _)) = best {
            assigned[i].push(hole);
            continue 'hole;
        }
        // Orphan hole: numerical artefact; drop it.
    }

    Ok(shells.into_iter().zip(assigned).map(|(shell, hs)| Polygon::new(shell, hs)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::measures::area;

    fn sq(x0: f64, y0: f64, s: f64) -> Geometry {
        Polygon::from_xy(&[(x0, y0), (x0 + s, y0), (x0 + s, y0 + s), (x0, y0 + s)]).unwrap().into()
    }

    #[test]
    fn overlapping_squares_intersection() {
        let g = intersection(&sq(0.0, 0.0, 2.0), &sq(1.0, 1.0, 2.0)).unwrap();
        assert!((area(&g) - 1.0).abs() < 1e-9, "area = {}", area(&g));
    }

    #[test]
    fn overlapping_squares_union() {
        let g = union(&sq(0.0, 0.0, 2.0), &sq(1.0, 1.0, 2.0)).unwrap();
        assert!((area(&g) - 7.0).abs() < 1e-9, "area = {}", area(&g));
    }

    #[test]
    fn overlapping_squares_difference() {
        let g = difference(&sq(0.0, 0.0, 2.0), &sq(1.0, 1.0, 2.0)).unwrap();
        assert!((area(&g) - 3.0).abs() < 1e-9, "area = {}", area(&g));
    }

    #[test]
    fn disjoint_squares() {
        let a = sq(0.0, 0.0, 1.0);
        let b = sq(5.0, 5.0, 1.0);
        assert_eq!(area(&intersection(&a, &b).unwrap()), 0.0);
        assert!((area(&union(&a, &b).unwrap()) - 2.0).abs() < 1e-9);
        assert!((area(&difference(&a, &b).unwrap()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nested_squares() {
        let outer = sq(0.0, 0.0, 4.0);
        let inner = sq(1.0, 1.0, 2.0);
        assert!((area(&intersection(&outer, &inner).unwrap()) - 4.0).abs() < 1e-9);
        assert!((area(&union(&outer, &inner).unwrap()) - 16.0).abs() < 1e-9);
        // Difference punches a hole.
        let d = difference(&outer, &inner).unwrap();
        assert!((area(&d) - 12.0).abs() < 1e-9);
        match &d {
            Geometry::Polygon(p) => assert_eq!(p.holes().len(), 1),
            other => panic!("expected polygon with hole, got {other:?}"),
        }
    }

    #[test]
    fn shared_edge_squares_union() {
        // Two squares sharing a full edge: union is a 2×1 rectangle.
        let g = union(&sq(0.0, 0.0, 1.0), &sq(1.0, 0.0, 1.0)).unwrap();
        assert!((area(&g) - 2.0).abs() < 1e-9, "area = {}", area(&g));
        match &g {
            Geometry::Polygon(_) => {}
            other => panic!("expected single polygon, got {other:?}"),
        }
    }

    #[test]
    fn shared_edge_squares_intersection_is_empty_area() {
        let g = intersection(&sq(0.0, 0.0, 1.0), &sq(1.0, 0.0, 1.0)).unwrap();
        assert_eq!(area(&g), 0.0);
    }

    #[test]
    fn identical_squares() {
        let a = sq(0.0, 0.0, 2.0);
        assert!((area(&intersection(&a, &a).unwrap()) - 4.0).abs() < 1e-9);
        assert!((area(&union(&a, &a).unwrap()) - 4.0).abs() < 1e-9);
        assert_eq!(area(&difference(&a, &a).unwrap()), 0.0);
    }

    #[test]
    fn concave_intersection() {
        // L-shape ∩ square covering the notch.
        let l = Geometry::Polygon(
            Polygon::from_xy(&[
                (0.0, 0.0),
                (3.0, 0.0),
                (3.0, 1.0),
                (1.0, 1.0),
                (1.0, 3.0),
                (0.0, 3.0),
            ])
            .unwrap(),
        );
        let s = sq(0.5, 0.5, 2.0);
        let g = intersection(&l, &s).unwrap();
        // Overlap: the part of the square inside the L.
        // Square spans (0.5,0.5)-(2.5,2.5). Inside L: x in [0.5,2.5],y in [0.5,1]
        // → 2.0*0.5 = 1.0 ; plus x in [0.5,1], y in [1,2.5] → 0.5*1.5 = 0.75.
        assert!((area(&g) - 1.75).abs() < 1e-9, "area = {}", area(&g));
    }

    #[test]
    fn point_in_polygon_intersection() {
        let p: Geometry = Point::new(1.0, 1.0).unwrap().into();
        let s = sq(0.0, 0.0, 2.0);
        match intersection(&p, &s).unwrap() {
            Geometry::Point(pt) => assert_eq!(pt.coord(), Some(Coord::new(1.0, 1.0))),
            other => panic!("expected point, got {other:?}"),
        }
        let outside: Geometry = Point::new(9.0, 9.0).unwrap().into();
        assert!(intersection(&outside, &s).unwrap().is_empty());
    }

    #[test]
    fn line_line_intersections() {
        let a: Geometry = LineString::from_xy(&[(0.0, 0.0), (2.0, 2.0)]).unwrap().into();
        let b: Geometry = LineString::from_xy(&[(0.0, 2.0), (2.0, 0.0)]).unwrap().into();
        match intersection(&a, &b).unwrap() {
            Geometry::Point(p) => {
                assert!(p.coord().unwrap().close_to(Coord::new(1.0, 1.0), 1e-9))
            }
            other => panic!("expected point, got {other:?}"),
        }
        // Collinear overlap.
        let c: Geometry = LineString::from_xy(&[(1.0, 1.0), (5.0, 5.0)]).unwrap().into();
        match intersection(&a, &c).unwrap() {
            Geometry::LineString(l) => assert!((l.length() - 2.0_f64.sqrt()).abs() < 1e-9),
            other => panic!("expected linestring, got {other:?}"),
        }
    }

    #[test]
    fn line_polygon_intersection() {
        let l: Geometry = LineString::from_xy(&[(-1.0, 1.0), (3.0, 1.0)]).unwrap().into();
        let s = sq(0.0, 0.0, 2.0);
        match intersection(&l, &s).unwrap() {
            Geometry::LineString(ls) => assert!((ls.length() - 2.0).abs() < 1e-9),
            other => panic!("expected linestring, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_combination_errors() {
        let l: Geometry = LineString::from_xy(&[(0.0, 0.0), (1.0, 0.0)]).unwrap().into();
        assert!(union(&l, &sq(0.0, 0.0, 1.0)).is_err());
    }

    #[test]
    fn union_area_inclusion_exclusion() {
        // |A ∪ B| = |A| + |B| − |A ∩ B| must hold.
        let a = sq(0.0, 0.0, 3.0);
        let b = sq(1.5, 1.0, 3.0);
        let u = area(&union(&a, &b).unwrap());
        let i = area(&intersection(&a, &b).unwrap());
        assert!((u - (9.0 + 9.0 - i)).abs() < 1e-9);
    }

    #[test]
    fn multipolygon_operands() {
        let mp = Geometry::MultiPolygon(MultiPolygon(vec![
            Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap(),
            Polygon::from_xy(&[(3.0, 0.0), (4.0, 0.0), (4.0, 1.0), (3.0, 1.0)]).unwrap(),
        ]));
        let band = sq(0.0, 0.0, 5.0);
        assert!((area(&intersection(&mp, &band).unwrap()) - 2.0).abs() < 1e-9);
        assert!((area(&difference(&band, &mp).unwrap()) - 23.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod capsule_regression {
    use super::*;
    use crate::algorithms::buffer::buffer;
    use crate::algorithms::measures::area;
    use crate::LineString;

    /// Regression: adjacent-segment capsules share bitwise-identical arc
    /// runs; the overlay must merge them into one polygon (it used to drop
    /// the shared edges and fail to stitch).
    #[test]
    fn adjacent_capsules_union_into_one_polygon() {
        let s1: Geometry = LineString::from_xy(&[(0.0, 0.0), (5.0, 0.0)]).unwrap().into();
        let s2: Geometry = LineString::from_xy(&[(5.0, 0.0), (5.0, 5.0)]).unwrap().into();
        let c1 = buffer(&s1, 0.5).unwrap();
        let c2 = buffer(&s2, 0.5).unwrap();
        let u = union(&c1, &c2).unwrap();
        assert!(
            matches!(u, Geometry::Polygon(_)),
            "expected single polygon, got {:?}",
            u.geometry_type()
        );
        let a = area(&u);
        // Two capsules (each ≈ 5.78) minus the elbow overlap (≈ disc quarter
        // + square ≈ 0.94): ≈ 10.6.
        assert!(a > 10.3 && a < 10.9, "area = {a}");
    }
}
