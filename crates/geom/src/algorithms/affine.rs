//! Affine transformations: translate, scale, rotate, and the general
//! 2×3 matrix form (`ST_Translate` / `ST_Scale` / `ST_Rotate`).

use crate::polygon::Ring;
use crate::{
    Coord, Geometry, GeometryCollection, LineString, MultiLineString, MultiPoint, MultiPolygon,
    Point, Polygon, Result,
};

/// A 2-D affine transform: `x' = a·x + b·y + c`, `y' = d·x + e·y + f`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AffineTransform {
    /// Coefficient on x for x'.
    pub a: f64,
    /// Coefficient on y for x'.
    pub b: f64,
    /// Constant for x'.
    pub c: f64,
    /// Coefficient on x for y'.
    pub d: f64,
    /// Coefficient on y for y'.
    pub e: f64,
    /// Constant for y'.
    pub f: f64,
}

impl AffineTransform {
    /// The identity transform.
    pub const IDENTITY: AffineTransform =
        AffineTransform { a: 1.0, b: 0.0, c: 0.0, d: 0.0, e: 1.0, f: 0.0 };

    /// Translation by `(dx, dy)`.
    pub fn translation(dx: f64, dy: f64) -> AffineTransform {
        AffineTransform { a: 1.0, b: 0.0, c: dx, d: 0.0, e: 1.0, f: dy }
    }

    /// Scaling by `(sx, sy)` about `origin`.
    pub fn scaling(sx: f64, sy: f64, origin: Coord) -> AffineTransform {
        AffineTransform {
            a: sx,
            b: 0.0,
            c: origin.x * (1.0 - sx),
            d: 0.0,
            e: sy,
            f: origin.y * (1.0 - sy),
        }
    }

    /// Counter-clockwise rotation by `radians` about `origin`.
    pub fn rotation(radians: f64, origin: Coord) -> AffineTransform {
        let (s, c) = radians.sin_cos();
        AffineTransform {
            a: c,
            b: -s,
            c: origin.x - c * origin.x + s * origin.y,
            d: s,
            e: c,
            f: origin.y - s * origin.x - c * origin.y,
        }
    }

    /// Applies the transform to one coordinate.
    #[inline]
    pub fn apply(&self, p: Coord) -> Coord {
        Coord::new(self.a * p.x + self.b * p.y + self.c, self.d * p.x + self.e * p.y + self.f)
    }

    /// Composition: `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &AffineTransform) -> AffineTransform {
        AffineTransform {
            a: self.a * other.a + self.b * other.d,
            b: self.a * other.b + self.b * other.e,
            c: self.a * other.c + self.b * other.f + self.c,
            d: self.d * other.a + self.e * other.d,
            e: self.d * other.b + self.e * other.e,
            f: self.d * other.c + self.e * other.f + self.f,
        }
    }

    /// `true` when the transform flips orientation (negative determinant),
    /// which matters because `Polygon` re-normalizes ring winding.
    pub fn flips_orientation(&self) -> bool {
        self.a * self.e - self.b * self.d < 0.0
    }
}

/// Applies `t` to every coordinate of `g`, rebuilding the geometry.
///
/// Degenerate results (e.g. scaling by zero collapsing a ring) surface as
/// [`crate::GeomError::InvalidGeometry`].
pub fn affine(g: &Geometry, t: &AffineTransform) -> Result<Geometry> {
    Ok(match g {
        Geometry::Point(p) => Geometry::Point(match p.coord() {
            Some(c) => Point::from_coord(t.apply(c))?,
            None => Point::empty(),
        }),
        Geometry::LineString(l) => Geometry::LineString(map_line(l, t)?),
        Geometry::Polygon(p) => Geometry::Polygon(map_polygon(p, t)?),
        Geometry::MultiPoint(m) => Geometry::MultiPoint(MultiPoint(
            m.0.iter()
                .map(|p| match p.coord() {
                    Some(c) => Point::from_coord(t.apply(c)),
                    None => Ok(Point::empty()),
                })
                .collect::<Result<_>>()?,
        )),
        Geometry::MultiLineString(m) => Geometry::MultiLineString(MultiLineString(
            m.0.iter().map(|l| map_line(l, t)).collect::<Result<_>>()?,
        )),
        Geometry::MultiPolygon(m) => Geometry::MultiPolygon(MultiPolygon(
            m.0.iter().map(|p| map_polygon(p, t)).collect::<Result<_>>()?,
        )),
        Geometry::GeometryCollection(c) => Geometry::GeometryCollection(GeometryCollection(
            c.0.iter().map(|g| affine(g, t)).collect::<Result<_>>()?,
        )),
    })
}

/// Translates `g` by `(dx, dy)`.
pub fn translate(g: &Geometry, dx: f64, dy: f64) -> Result<Geometry> {
    affine(g, &AffineTransform::translation(dx, dy))
}

/// Scales `g` by `(sx, sy)` about the origin.
pub fn scale(g: &Geometry, sx: f64, sy: f64) -> Result<Geometry> {
    affine(g, &AffineTransform::scaling(sx, sy, Coord::new(0.0, 0.0)))
}

/// Rotates `g` counter-clockwise by `radians` about `origin`.
pub fn rotate(g: &Geometry, radians: f64, origin: Coord) -> Result<Geometry> {
    affine(g, &AffineTransform::rotation(radians, origin))
}

fn map_line(l: &LineString, t: &AffineTransform) -> Result<LineString> {
    if l.is_empty() {
        return Ok(LineString::empty());
    }
    LineString::new(l.coords().iter().map(|&c| t.apply(c)).collect())
}

fn map_polygon(p: &Polygon, t: &AffineTransform) -> Result<Polygon> {
    let map_ring =
        |r: &Ring| -> Result<Ring> { Ring::new(r.coords().iter().map(|&c| t.apply(c)).collect()) };
    Ok(Polygon::new(
        map_ring(p.exterior())?,
        p.holes().iter().map(map_ring).collect::<Result<_>>()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::measures::area;
    use crate::wkt;

    fn sq() -> Geometry {
        wkt::parse("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap()
    }

    #[test]
    fn translation_moves_envelope() {
        let g = translate(&sq(), 10.0, -5.0).unwrap();
        let e = g.envelope();
        assert_eq!((e.min_x, e.min_y, e.max_x, e.max_y), (10.0, -5.0, 12.0, -3.0));
        assert_eq!(area(&g), 4.0);
    }

    #[test]
    fn scaling_scales_area_quadratically() {
        let g = scale(&sq(), 3.0, 2.0).unwrap();
        assert_eq!(area(&g), 24.0);
        // Orientation preserved: still a valid CCW polygon.
        match g {
            Geometry::Polygon(p) => assert!(p.exterior().is_ccw()),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn negative_scale_flips_but_stays_valid() {
        let t = AffineTransform::scaling(-1.0, 1.0, Coord::new(0.0, 0.0));
        assert!(t.flips_orientation());
        let g = affine(&sq(), &t).unwrap();
        assert_eq!(area(&g), 4.0); // Polygon::new renormalizes winding
    }

    #[test]
    fn rotation_preserves_area_and_distance_from_origin() {
        let g = rotate(&sq(), std::f64::consts::FRAC_PI_2, Coord::new(0.0, 0.0)).unwrap();
        assert!((area(&g) - 4.0).abs() < 1e-9);
        // (2, 0) rotates to (0, 2).
        let p = wkt::parse("POINT (2 0)").unwrap();
        let r = rotate(&p, std::f64::consts::FRAC_PI_2, Coord::new(0.0, 0.0)).unwrap();
        match r {
            Geometry::Point(pt) => {
                let c = pt.coord().unwrap();
                assert!(c.close_to(Coord::new(0.0, 2.0), 1e-12), "got {c}");
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn rotation_about_nonzero_origin() {
        let p = wkt::parse("POINT (3 2)").unwrap();
        let r = rotate(&p, std::f64::consts::PI, Coord::new(2.0, 2.0)).unwrap();
        match r {
            Geometry::Point(pt) => {
                assert!(pt.coord().unwrap().close_to(Coord::new(1.0, 2.0), 1e-12));
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let t1 = AffineTransform::translation(1.0, 2.0);
        let t2 = AffineTransform::rotation(0.7, Coord::new(3.0, -1.0));
        let composed = t2.compose(&t1);
        let p = Coord::new(5.0, 6.0);
        let seq = t2.apply(t1.apply(p));
        let one = composed.apply(p);
        assert!(seq.close_to(one, 1e-9));
    }

    #[test]
    fn zero_scale_rejected() {
        assert!(scale(&sq(), 0.0, 1.0).is_err());
    }

    #[test]
    fn identity_is_noop() {
        let g = sq();
        assert_eq!(affine(&g, &AffineTransform::IDENTITY).unwrap(), g);
    }
}
