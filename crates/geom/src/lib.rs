//! # jackpine-geom
//!
//! Computational-geometry kernel for the Jackpine spatial database benchmark.
//!
//! This crate implements, from scratch, everything a spatial SQL engine needs
//! from a geometry library:
//!
//! * the OGC Simple Features geometry model ([`Point`], [`LineString`],
//!   [`Polygon`], the `Multi*` variants and [`Geometry`] as the closed sum),
//! * text and binary serialization ([`wkt`], [`wkb`]),
//! * measures and constructive algorithms ([`algorithms`]): area, length,
//!   centroid, convex hull, distance, simplification, buffering and polygon
//!   overlay (intersection / union / difference),
//! * the low-level robust predicates those algorithms are built on
//!   ([`algorithms::orientation`], [`algorithms::segment`]).
//!
//! The crate is `#![forbid(unsafe_code)]` and never panics on untrusted
//! input: all parsing and construction entry points return [`GeomError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod codec;
mod coord;
mod envelope;
mod error;
mod geometry;
mod linestring;
mod multi;
mod point;
/// Polygon and ring types.
pub mod polygon;
pub mod prepared;
pub mod wkb;
pub mod wkt;

pub use coord::Coord;
pub use envelope::Envelope;
pub use error::GeomError;
pub use geometry::{Dimension, Geometry, GeometryType};
pub use linestring::LineString;
pub use multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
pub use point::Point;
pub use polygon::{Polygon, Ring};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, GeomError>;
