//! Well-Known Binary encoding and decoding.
//!
//! Supports both byte orders on read (the leading byte-order mark decides)
//! and emits little-endian on write, matching the behaviour of the systems
//! Jackpine originally benchmarked. `POINT EMPTY` is encoded as a point
//! with NaN coordinates, the de-facto convention.

use crate::codec::{PutBytes, TakeBytes};
use crate::polygon::Ring;
use crate::{
    Coord, GeomError, Geometry, GeometryCollection, LineString, MultiLineString, MultiPoint,
    MultiPolygon, Point, Polygon, Result,
};

/// Encodes a geometry as little-endian WKB.
pub fn encode(g: &Geometry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(estimate_size(g));
    encode_into(g, &mut buf);
    buf
}

/// Decodes a WKB byte string (either endianness).
pub fn decode(mut data: &[u8]) -> Result<Geometry> {
    let g = decode_geometry(&mut data)?;
    if !data.is_empty() {
        return Err(GeomError::WkbDecode(format!("{} trailing bytes", data.len())));
    }
    Ok(g)
}

fn estimate_size(g: &Geometry) -> usize {
    16 * g.num_coords() + 64
}

// ---------------------------------------------------------------------------
// Encoding (always little-endian)
// ---------------------------------------------------------------------------

fn encode_into(g: &Geometry, buf: &mut Vec<u8>) {
    buf.put_u8(1); // little-endian
    buf.put_u32_le(g.geometry_type().wkb_code());
    match g {
        Geometry::Point(p) => match p.coord() {
            Some(c) => put_coord(c, buf),
            None => {
                buf.put_f64_le(f64::NAN);
                buf.put_f64_le(f64::NAN);
            }
        },
        Geometry::LineString(l) => put_coord_seq(l.coords(), buf),
        Geometry::Polygon(p) => put_polygon_body(p, buf),
        Geometry::MultiPoint(m) => {
            buf.put_u32_le(m.0.len() as u32);
            for p in &m.0 {
                encode_into(&Geometry::Point(*p), buf);
            }
        }
        Geometry::MultiLineString(m) => {
            buf.put_u32_le(m.0.len() as u32);
            for l in &m.0 {
                encode_into(&Geometry::LineString(l.clone()), buf);
            }
        }
        Geometry::MultiPolygon(m) => {
            buf.put_u32_le(m.0.len() as u32);
            for p in &m.0 {
                encode_into(&Geometry::Polygon(p.clone()), buf);
            }
        }
        Geometry::GeometryCollection(c) => {
            buf.put_u32_le(c.0.len() as u32);
            for g in &c.0 {
                encode_into(g, buf);
            }
        }
    }
}

fn put_coord(c: Coord, buf: &mut Vec<u8>) {
    buf.put_f64_le(c.x);
    buf.put_f64_le(c.y);
}

fn put_coord_seq(coords: &[Coord], buf: &mut Vec<u8>) {
    buf.put_u32_le(coords.len() as u32);
    for &c in coords {
        put_coord(c, buf);
    }
}

fn put_polygon_body(p: &Polygon, buf: &mut Vec<u8>) {
    buf.put_u32_le(1 + p.holes().len() as u32);
    put_coord_seq(p.exterior().coords(), buf);
    for h in p.holes() {
        put_coord_seq(h.coords(), buf);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Sanity cap on declared element counts, to reject hostile inputs before
/// attempting huge allocations.
const MAX_ELEMENTS: u32 = 64 * 1024 * 1024;

fn decode_geometry(data: &mut &[u8]) -> Result<Geometry> {
    if data.remaining() < 5 {
        return Err(GeomError::WkbDecode("truncated header".into()));
    }
    let little = match data.get_u8() {
        0 => false,
        1 => true,
        other => return Err(GeomError::WkbDecode(format!("bad byte-order mark {other}"))),
    };
    let code = get_u32(data, little)?;
    match code {
        1 => {
            let c = get_coord(data, little)?;
            if c.x.is_nan() && c.y.is_nan() {
                Ok(Geometry::Point(Point::empty()))
            } else {
                Ok(Geometry::Point(Point::from_coord(c)?))
            }
        }
        2 => Ok(Geometry::LineString(LineString::new(get_coord_seq(data, little)?)?)),
        3 => Ok(Geometry::Polygon(get_polygon_body(data, little)?)),
        4 => {
            let n = get_count(data, little)?;
            let mut pts = Vec::with_capacity(n as usize);
            for _ in 0..n {
                match decode_geometry(data)? {
                    Geometry::Point(p) => pts.push(p),
                    other => {
                        return Err(GeomError::WkbDecode(format!(
                            "multipoint member is {:?}",
                            other.geometry_type()
                        )))
                    }
                }
            }
            Ok(Geometry::MultiPoint(MultiPoint(pts)))
        }
        5 => {
            let n = get_count(data, little)?;
            let mut ls = Vec::with_capacity(n as usize);
            for _ in 0..n {
                match decode_geometry(data)? {
                    Geometry::LineString(l) => ls.push(l),
                    other => {
                        return Err(GeomError::WkbDecode(format!(
                            "multilinestring member is {:?}",
                            other.geometry_type()
                        )))
                    }
                }
            }
            Ok(Geometry::MultiLineString(MultiLineString(ls)))
        }
        6 => {
            let n = get_count(data, little)?;
            let mut ps = Vec::with_capacity(n as usize);
            for _ in 0..n {
                match decode_geometry(data)? {
                    Geometry::Polygon(p) => ps.push(p),
                    other => {
                        return Err(GeomError::WkbDecode(format!(
                            "multipolygon member is {:?}",
                            other.geometry_type()
                        )))
                    }
                }
            }
            Ok(Geometry::MultiPolygon(MultiPolygon(ps)))
        }
        7 => {
            let n = get_count(data, little)?;
            let mut gs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                gs.push(decode_geometry(data)?);
            }
            Ok(Geometry::GeometryCollection(GeometryCollection(gs)))
        }
        other => Err(GeomError::WkbDecode(format!("unknown geometry code {other}"))),
    }
}

fn get_u32(data: &mut &[u8], little: bool) -> Result<u32> {
    if data.remaining() < 4 {
        return Err(GeomError::WkbDecode("truncated u32".into()));
    }
    Ok(if little { data.get_u32_le() } else { data.get_u32() })
}

fn get_count(data: &mut &[u8], little: bool) -> Result<u32> {
    let n = get_u32(data, little)?;
    if n > MAX_ELEMENTS {
        return Err(GeomError::WkbDecode(format!("element count {n} exceeds sanity cap")));
    }
    Ok(n)
}

fn get_f64(data: &mut &[u8], little: bool) -> Result<f64> {
    if data.remaining() < 8 {
        return Err(GeomError::WkbDecode("truncated f64".into()));
    }
    Ok(if little { data.get_f64_le() } else { data.get_f64() })
}

fn get_coord(data: &mut &[u8], little: bool) -> Result<Coord> {
    let x = get_f64(data, little)?;
    let y = get_f64(data, little)?;
    Ok(Coord::new(x, y))
}

fn get_coord_seq(data: &mut &[u8], little: bool) -> Result<Vec<Coord>> {
    let n = get_count(data, little)?;
    if (data.remaining() as u64) < n as u64 * 16 {
        return Err(GeomError::WkbDecode("coordinate sequence longer than buffer".into()));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let c = get_coord(data, little)?;
        if !c.is_finite() {
            return Err(GeomError::WkbDecode("non-finite coordinate".into()));
        }
        out.push(c);
    }
    Ok(out)
}

fn get_polygon_body(data: &mut &[u8], little: bool) -> Result<Polygon> {
    let nrings = get_count(data, little)?;
    if nrings == 0 {
        return Err(GeomError::WkbDecode("polygon with zero rings".into()));
    }
    let exterior = Ring::new(get_coord_seq(data, little)?)?;
    let mut holes = Vec::with_capacity(nrings as usize - 1);
    for _ in 1..nrings {
        holes.push(Ring::new(get_coord_seq(data, little)?)?);
    }
    Ok(Polygon::new(exterior, holes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    fn roundtrip(wkt_str: &str) {
        let g = wkt::parse(wkt_str).unwrap();
        let bytes = encode(&g);
        let g2 = decode(&bytes).unwrap();
        assert_eq!(g, g2, "WKB roundtrip failed for {wkt_str}");
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip("POINT (1 2)");
        roundtrip("POINT EMPTY");
        roundtrip("LINESTRING (0 0, 1 1, 2 0)");
        roundtrip("LINESTRING EMPTY");
        roundtrip("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        roundtrip("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
        roundtrip("MULTIPOINT ((0 0), (1 1))");
        roundtrip("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))");
        roundtrip("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))");
        roundtrip("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))");
        roundtrip("GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn big_endian_decoding() {
        // Hand-build a big-endian POINT (1 2).
        let mut buf = Vec::new();
        buf.put_u8(0);
        buf.put_u32(1);
        buf.put_f64(1.0);
        buf.put_f64(2.0);
        match decode(&buf).unwrap() {
            Geometry::Point(p) => {
                assert_eq!(p.x(), Some(1.0));
                assert_eq!(p.y(), Some(2.0));
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[2, 0, 0, 0, 1]).is_err()); // bad byte-order mark
        assert!(decode(&[1, 9, 0, 0, 0]).is_err()); // unknown type code
                                                    // Truncated coordinate payload.
        let mut buf = Vec::new();
        buf.put_u8(1);
        buf.put_u32_le(1);
        buf.put_f64_le(1.0);
        assert!(decode(&buf).is_err());
        // Hostile element count.
        let mut buf = Vec::new();
        buf.put_u8(1);
        buf.put_u32_le(2); // linestring
        buf.put_u32_le(u32::MAX);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let g = wkt::parse("POINT (1 2)").unwrap();
        let mut bytes = encode(&g);
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = wkt::parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        assert_eq!(encode(&g), encode(&g));
    }
}
