use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A 2-D coordinate with `f64` components.
///
/// `Coord` is a plain value type: it implements the arithmetic operators as
/// vector operations and provides the handful of scalar helpers (dot product,
/// cross product, norms) that the algorithm modules build on.
///
/// Coordinates compare bitwise-exactly via `PartialEq`; algorithms that need
/// tolerance use [`Coord::close_to`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Coord {
    /// Easting / longitude component.
    pub x: f64,
    /// Northing / latitude component.
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate from its two components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Returns `true` when both components are finite (not NaN/±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Coord) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product with `other`.
    #[inline]
    pub fn cross(self, other: Coord) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Coord::distance`] in comparisons — it avoids the
    /// square root in hot paths.
    #[inline]
    pub fn distance_sq(self, other: Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Coord) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Returns `true` when `other` lies within `eps` (Euclidean) of `self`.
    #[inline]
    pub fn close_to(self, other: Coord, eps: f64) -> bool {
        self.distance_sq(other) <= eps * eps
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Coord, t: f64) -> Coord {
        Coord::new(self.x + t * (other.x - self.x), self.y + t * (other.y - self.y))
    }
}

impl Add for Coord {
    type Output = Coord;
    #[inline]
    fn add(self, rhs: Coord) -> Coord {
        Coord::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Coord {
    type Output = Coord;
    #[inline]
    fn sub(self, rhs: Coord) -> Coord {
        Coord::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Coord {
    type Output = Coord;
    #[inline]
    fn mul(self, rhs: f64) -> Coord {
        Coord::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Coord {
    type Output = Coord;
    #[inline]
    fn neg(self) -> Coord {
        Coord::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Coord {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Coord::new(x, y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_vectors() {
        let a = Coord::new(1.0, 2.0);
        let b = Coord::new(3.0, -1.0);
        assert_eq!(a + b, Coord::new(4.0, 1.0));
        assert_eq!(a - b, Coord::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Coord::new(2.0, 4.0));
        assert_eq!(-a, Coord::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Coord::new(1.0, 0.0);
        let b = Coord::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn distances() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
        assert!(a.close_to(Coord::new(1e-9, 0.0), 1e-8));
        assert!(!a.close_to(Coord::new(1e-7, 0.0), 1e-8));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Coord::new(1.0, 2.0));
    }

    #[test]
    fn finiteness() {
        assert!(Coord::new(1.0, 2.0).is_finite());
        assert!(!Coord::new(f64::NAN, 0.0).is_finite());
        assert!(!Coord::new(0.0, f64::INFINITY).is_finite());
    }
}
