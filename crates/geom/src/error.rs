use std::fmt;

/// Errors produced by geometry construction, parsing and algorithms.
///
/// The crate never panics on untrusted input; every fallible entry point
/// returns one of these variants instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeomError {
    /// A geometry violated a structural invariant (e.g. a ring with fewer
    /// than four coordinates, or a linestring with a single coordinate).
    InvalidGeometry(String),
    /// Well-Known Text could not be parsed; carries position and message.
    WktParse {
        /// Byte offset in the input where the problem was detected.
        position: usize,
        /// Human-readable description of what was expected.
        message: String,
    },
    /// Well-Known Binary could not be decoded.
    WkbDecode(String),
    /// A coordinate was NaN or infinite where a finite value is required.
    NonFiniteCoordinate,
    /// An algorithm received arguments outside its domain
    /// (e.g. a negative buffer distance larger than the shape supports).
    InvalidArgument(String),
    /// An overlay (intersection/union/difference) could not be completed
    /// on the given input, typically because of unresolvable degeneracy.
    OverlayFailure(String),
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            GeomError::WktParse { position, message } => {
                write!(f, "WKT parse error at byte {position}: {message}")
            }
            GeomError::WkbDecode(msg) => write!(f, "WKB decode error: {msg}"),
            GeomError::NonFiniteCoordinate => {
                write!(f, "coordinate must be finite (no NaN/Inf)")
            }
            GeomError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            GeomError::OverlayFailure(msg) => write!(f, "overlay failure: {msg}"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeomError::WktParse { position: 7, message: "expected '('".into() };
        assert!(e.to_string().contains("byte 7"));
        assert!(e.to_string().contains("expected '('"));
        assert!(GeomError::NonFiniteCoordinate.to_string().contains("finite"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GeomError::InvalidGeometry("x".into()));
        assert!(e.to_string().contains("invalid geometry"));
    }
}
