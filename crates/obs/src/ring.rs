//! The always-on flight recorder: a fixed-capacity ring of completed
//! query traces, plus the threshold-gated slow-query log built on it.
//!
//! Production databases cannot re-run a query "with tracing on" after it
//! was slow, so the engine keeps the last N completed [`QueryTrace`]s at
//! all times. The ring is lock-light: recording is one short mutex hold
//! around a `VecDeque` push of an `Arc` (the trace itself is built by the
//! caller, outside the lock), so contention is bounded by pointer-sized
//! critical sections. Traces are never torn — a reader either sees a
//! whole `Arc<QueryTrace>` or nothing.

use crate::trace::QueryTrace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Poison-ignoring lock (matches the workspace's `storage::sync`
/// convention; `obs` sits below `storage`, so it wraps std directly).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-capacity ring buffer of completed query traces, oldest
/// evicted first. Capacity 0 disables recording entirely (every push is
/// a no-op), which is the ablation/off switch.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    buf: Mutex<VecDeque<Arc<QueryTrace>>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` traces.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Maximum number of traces retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        lock(&self.buf).len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one completed trace, evicting the oldest beyond capacity.
    pub fn push(&self, trace: Arc<QueryTrace>) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = lock(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(trace);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained traces, oldest first. The ring keeps its contents.
    pub fn recent(&self) -> Vec<Arc<QueryTrace>> {
        lock(&self.buf).iter().cloned().collect()
    }

    /// Removes and returns every retained trace, oldest first.
    pub fn drain(&self) -> Vec<Arc<QueryTrace>> {
        lock(&self.buf).drain(..).collect()
    }

    /// Total traces ever pushed (including later-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces evicted to make room (drained traces are not evictions).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// The slow-query log: a second ring that only admits traces whose total
/// latency reaches a configurable threshold. When queries are fast the
/// cost is one relaxed atomic load (the threshold check) per statement.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    ring: FlightRecorder,
}

impl SlowQueryLog {
    /// A log retaining at most `capacity` slow traces at `threshold`.
    pub fn new(capacity: usize, threshold: Duration) -> SlowQueryLog {
        SlowQueryLog {
            threshold_ns: AtomicU64::new(duration_ns(threshold)),
            ring: FlightRecorder::new(capacity),
        }
    }

    /// The current slow threshold.
    pub fn threshold(&self) -> Duration {
        Duration::from_nanos(self.threshold_ns.load(Ordering::Relaxed))
    }

    /// Sets the slow threshold. `Duration::ZERO` admits every query;
    /// `Duration::MAX` effectively disables the log.
    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_ns.store(duration_ns(threshold), Ordering::Relaxed);
    }

    /// Admits `trace` iff its total latency reaches the threshold.
    /// Returns whether it was admitted.
    pub fn offer(&self, trace: &Arc<QueryTrace>) -> bool {
        let ns = duration_ns(trace.total);
        if ns < self.threshold_ns.load(Ordering::Relaxed) {
            return false;
        }
        self.ring.push(trace.clone());
        true
    }

    /// The retained slow traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<QueryTrace>> {
        self.ring.recent()
    }

    /// Removes and returns every retained slow trace, oldest first.
    pub fn drain(&self) -> Vec<Arc<QueryTrace>> {
        self.ring.drain()
    }

    /// Slow traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the log holds no traces.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EngineMetrics;

    fn trace(sql: &str, total: Duration) -> Arc<QueryTrace> {
        let m = EngineMetrics::new();
        Arc::new(QueryTrace::new(sql, total, 0, m.snapshot().delta_since(&m.snapshot())))
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.push(trace(&format!("q{i}"), Duration::ZERO));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.evicted(), 2);
        let recent = r.recent();
        let sqls: Vec<&str> = recent.iter().map(|t| t.sql.as_str()).collect();
        assert_eq!(sqls, vec!["q2", "q3", "q4"], "oldest evicted, order preserved");
    }

    #[test]
    fn drain_empties_without_counting_evictions() {
        let r = FlightRecorder::new(4);
        r.push(trace("a", Duration::ZERO));
        r.push(trace("b", Duration::ZERO));
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let r = FlightRecorder::new(0);
        r.push(trace("a", Duration::ZERO));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn slow_log_admits_only_above_threshold() {
        let log = SlowQueryLog::new(8, Duration::from_millis(10));
        assert!(!log.offer(&trace("fast", Duration::from_millis(1))));
        assert!(log.offer(&trace("slow", Duration::from_millis(50))));
        assert!(log.offer(&trace("edge", Duration::from_millis(10))), "threshold is inclusive");
        assert_eq!(log.len(), 2);

        log.set_threshold(Duration::ZERO);
        assert!(log.offer(&trace("any", Duration::ZERO)));
        assert_eq!(log.threshold(), Duration::ZERO);
    }
}
