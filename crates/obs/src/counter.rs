//! Lock-cheap event counters.
//!
//! A [`Counter`] is a monotonically increasing `u64` that many threads
//! bump concurrently. A single shared `AtomicU64` would serialise every
//! increment on one cache line, so the counter is *sharded*: each thread
//! hashes to one of a small fixed number of cache-line-padded shards and
//! only ever touches that shard. Reads sum the shards, which makes
//! `get()` slightly stale under concurrent writers — fine for metrics,
//! where snapshots are taken at quiescent points or treated as
//! best-effort mid-flight.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter. Must be a power of two. 16 covers the
/// worker counts the morsel dispatcher uses in practice without making
/// `get()` walks expensive.
const SHARDS: usize = 16;

/// One shard, padded to a cache line so neighbouring shards never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Process-wide source of thread shard assignments: each thread takes
/// the next slot round-robin the first time it touches any counter.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// A sharded, monotonically increasing event counter.
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter { shards: std::array::from_fn(|_| Shard::default()) }
    }

    /// Adds `n` events on the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = THREAD_SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The total across all shards. Wrapping addition so a mid-flight
    /// read can never panic, only be momentarily stale.
    pub fn get(&self) -> u64 {
        self.shards.iter().fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn add_batches() {
        let c = Counter::new();
        c.add(5);
        c.add(0);
        c.add(37);
        assert_eq!(c.get(), 42);
    }
}
