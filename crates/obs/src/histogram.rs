//! Fixed-bucket log-scaled histograms.
//!
//! A [`Histogram`] records `u64` samples (typically nanoseconds) into 64
//! power-of-two buckets: bucket `b > 0` holds values `v` with
//! `2^(b-1) <= v < 2^b`, bucket 0 holds exactly zero. Recording is one
//! relaxed `fetch_add` plus a `fetch_max`, so it is safe on the query
//! hot path; reading produces a [`HistogramSnapshot`] whose quantiles
//! are bucket upper bounds (at most 2x the true value — plenty for
//! attribution, never used for pass/fail timing assertions).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible `leading_zeros` outcome.
pub const BUCKETS: usize = 64;

/// A concurrent log2-bucket histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

/// The bucket a value lands in: 0 for 0, otherwise its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy. Mid-flight the fields may be mutually
    /// inconsistent by a few in-progress samples; they are never torn
    /// within one field.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample into this (non-atomic) snapshot. Used where a
    /// histogram accumulates under an outer lock — e.g. the per-
    /// fingerprint stats table — and paying 67 atomics per value would
    /// be waste.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Mean sample value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile, reported as the upper bound of the bucket
    /// the rank falls in (`q` in `[0, 1]`). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        self.max
    }

    /// Element-wise sum with another snapshot (used by tests to check
    /// merge monotonicity and by multi-engine aggregation).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    /// Per-bucket difference against an earlier snapshot of the same
    /// histogram, saturating so a racy pair can never panic.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// Largest value that lands in bucket `b` (`u64::MAX` for the last
/// bucket). Public so exporters can render bucket boundaries — e.g. the
/// Prometheus `le` labels — without re-deriving the log2 layout.
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_ordered() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 11_111);
        assert_eq!(s.max, 10_000);
        assert!(s.quantile(0.5) <= s.quantile(0.95));
        assert!(s.quantile(0.95) <= s.quantile(1.0));
        // Upper bound is within 2x of the true max.
        assert!(s.quantile(1.0) >= 10_000 && s.quantile(1.0) < 20_000);
    }

    #[test]
    fn delta_and_merge() {
        let h = Histogram::new();
        h.record(7);
        let before = h.snapshot();
        h.record(9);
        h.record(0);
        let after = h.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 9);
        let merged = before.merge(&delta);
        assert_eq!(merged.count, after.count);
        assert_eq!(merged.sum, after.sum);
    }
}
