//! Point-in-time gauges.
//!
//! A [`Gauge`] is a `u64` that reports a current level rather than an
//! event count: pinned snapshots, vacuum backlog rows, oldest-snapshot
//! age. Unlike [`Counter`](crate::Counter) it is written rarely (at
//! refresh points, not on the query hot path), so a single atomic is
//! enough — no sharding.

use std::sync::atomic::{AtomicU64, Ordering};

/// A settable point-in-time level.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(7); // gauges go down as well as up
        assert_eq!(g.get(), 7);
    }
}
