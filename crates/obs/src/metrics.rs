//! The engine metrics registry: every counter and histogram the engine
//! exposes, under canonical names, with snapshot/delta support.
//!
//! Counters fall into two classes, and the split is load-bearing for
//! tests:
//!
//! * **deterministic** — a function of the statement sequence alone,
//!   identical at any intra-query worker count (index probes, candidate
//!   and hit counts, heap rows fetched, WAL appends). The parallel
//!   equivalence suite asserts exact equality of these across worker
//!   counts.
//! * **scheduling-dependent** — morsel dispatch counts, queue waits and
//!   stage timings, which legitimately vary run to run.

use crate::counter::Counter;
use crate::histogram::{Histogram, HistogramSnapshot};
use std::time::Duration;

/// The stages a query passes through, in pipeline order. The order here
/// is the canonical render/snapshot order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// SQL text → AST.
    Parse,
    /// AST → plan tree (or plan-cache lookup).
    Plan,
    /// Spatial/ordered index window or nearest probe.
    IndexProbe,
    /// Vectorized envelope prefilter over packed MBR columns (the
    /// batch executor's branch-free reject pass before refinement).
    Prefilter,
    /// Exact predicate refinement (DE-9IM and friends) over candidates.
    Refine,
    /// Row materialization of the final result set.
    Materialize,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Plan,
        Stage::IndexProbe,
        Stage::Prefilter,
        Stage::Refine,
        Stage::Materialize,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::IndexProbe => "index_probe",
            Stage::Prefilter => "prefilter",
            Stage::Refine => "refine",
            Stage::Materialize => "materialize",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Canonical counter names, in snapshot order: deterministic counters
/// first, scheduling-dependent ones after.
pub const DETERMINISTIC_COUNTERS: [&str; 12] = [
    "queries",
    "index_probes",
    "index_candidates",
    "index_nodes_visited",
    "refine_candidates",
    "refine_hits",
    "refine_short_circuits",
    "prefilter_rejects",
    "selvec_survivors",
    "heap_rows_fetched",
    "wal_appends",
    "wal_fsyncs",
];

/// Counters whose value depends on scheduling (worker count, cache
/// state), snapshot-ordered after the deterministic set.
pub const SCHEDULING_COUNTERS: [&str; 9] = [
    "plan_cache_hits",
    "plan_cache_misses",
    "prepared_cache_hits",
    "prepared_cache_misses",
    "prepared_cache_evictions",
    "morsels_dispatched",
    "batches_dispatched",
    "group_commit_batches",
    "group_commit_size",
];

/// All counters and histograms the engine maintains. One instance per
/// `SpatialDb`, shared by reference with every subsystem that records.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Statements executed (of any kind).
    pub queries: Counter,
    /// Index probe calls (window, ordered range, nearest).
    pub index_probes: Counter,
    /// Candidate rows returned by index probes.
    pub index_candidates: Counter,
    /// Index tree nodes / grid cells inspected while probing.
    pub index_nodes_visited: Counter,
    /// Rows entering exact-predicate refinement.
    pub refine_candidates: Counter,
    /// Rows surviving refinement.
    pub refine_hits: Counter,
    /// Refine decisions made by a prepared-geometry short-circuit
    /// (envelope reject / shared-point accept) without a full DE-9IM
    /// matrix.
    pub refine_short_circuits: Counter,
    /// Rows decided by the vectorized envelope prefilter (no refine
    /// needed). Zero on the row-at-a-time path.
    pub prefilter_rejects: Counter,
    /// Selection-vector entries that survived the prefilter and entered
    /// batch refinement. `prefilter_rejects + selvec_survivors ==
    /// refine_candidates` on vectorized filters.
    pub selvec_survivors: Counter,
    /// Heap rows fetched during scans and candidate lookups.
    pub heap_rows_fetched: Counter,
    /// WAL records appended.
    pub wal_appends: Counter,
    /// WAL fsync (`sync_data`) calls.
    pub wal_fsyncs: Counter,
    /// Plan-cache hits.
    pub plan_cache_hits: Counter,
    /// Plan-cache misses (fresh plans).
    pub plan_cache_misses: Counter,
    /// Prepared-geometry cache hits (inner geometry reused across pairs).
    pub prepared_cache_hits: Counter,
    /// Prepared-geometry cache misses (fresh preparation built).
    pub prepared_cache_misses: Counter,
    /// Entries evicted from the prepared-geometry cache when full
    /// (least-recently-hit fraction).
    pub prepared_cache_evictions: Counter,
    /// Morsels claimed by parallel workers (serial execution claims none).
    pub morsels_dispatched: Counter,
    /// Batches processed by the vectorized filter path.
    pub batches_dispatched: Counter,
    /// Fsync batches flushed by the group-commit pipeline (one leader
    /// `sync_data` per batch).
    pub group_commit_batches: Counter,
    /// Commits covered by those batches; `group_commit_size /
    /// group_commit_batches` is the mean batch size, and the pipeline
    /// guarantees at most one fsync per batch.
    pub group_commit_size: Counter,
    /// Nanoseconds from query start to each morsel claim.
    pub morsel_wait_ns: Histogram,
    /// Microseconds each committing session waited for its group-commit
    /// batch to reach disk (queue wait + shared fsync).
    pub commit_wait_us: Histogram,
    /// Self-time per stage, nanoseconds (indexed by `Stage`).
    stage_ns: [Histogram; 6],
}

impl EngineMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one self-time sample for a stage.
    #[inline]
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage_ns[stage.index()].record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    fn counter(&self, name: &str) -> &Counter {
        match name {
            "queries" => &self.queries,
            "index_probes" => &self.index_probes,
            "index_candidates" => &self.index_candidates,
            "index_nodes_visited" => &self.index_nodes_visited,
            "refine_candidates" => &self.refine_candidates,
            "refine_hits" => &self.refine_hits,
            "refine_short_circuits" => &self.refine_short_circuits,
            "prefilter_rejects" => &self.prefilter_rejects,
            "selvec_survivors" => &self.selvec_survivors,
            "heap_rows_fetched" => &self.heap_rows_fetched,
            "wal_appends" => &self.wal_appends,
            "wal_fsyncs" => &self.wal_fsyncs,
            "plan_cache_hits" => &self.plan_cache_hits,
            "plan_cache_misses" => &self.plan_cache_misses,
            "prepared_cache_hits" => &self.prepared_cache_hits,
            "prepared_cache_misses" => &self.prepared_cache_misses,
            "prepared_cache_evictions" => &self.prepared_cache_evictions,
            "morsels_dispatched" => &self.morsels_dispatched,
            "batches_dispatched" => &self.batches_dispatched,
            "group_commit_batches" => &self.group_commit_batches,
            "group_commit_size" => &self.group_commit_size,
            other => panic!("unknown counter {other:?}"),
        }
    }

    /// A point-in-time copy of every counter and histogram, in canonical
    /// order. Safe to call from any thread at any time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters =
            Vec::with_capacity(DETERMINISTIC_COUNTERS.len() + SCHEDULING_COUNTERS.len());
        for name in DETERMINISTIC_COUNTERS.iter().chain(SCHEDULING_COUNTERS.iter()) {
            counters.push((*name, self.counter(name).get()));
        }
        MetricsSnapshot {
            counters,
            stages: Stage::ALL.map(|s| (s, self.stage_ns[s.index()].snapshot())),
            morsel_wait_ns: self.morsel_wait_ns.snapshot(),
            commit_wait_us: self.commit_wait_us.snapshot(),
        }
    }
}

/// A point-in-time copy of an [`EngineMetrics`], used both as the
/// machine-readable API surface and as the subtrahend for per-query
/// deltas.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// `(name, value)` in canonical order: [`DETERMINISTIC_COUNTERS`]
    /// then [`SCHEDULING_COUNTERS`].
    pub counters: Vec<(&'static str, u64)>,
    /// Per-stage self-time histograms in [`Stage::ALL`] order.
    pub stages: [(Stage, HistogramSnapshot); 6],
    /// Morsel queue-wait histogram.
    pub morsel_wait_ns: HistogramSnapshot,
    /// Group-commit wait histogram (microseconds per committed session).
    pub commit_wait_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Value of a counter by canonical name; panics on unknown names so
    /// golden tests catch renames.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"))
    }

    /// The worker-count-invariant subset, in canonical order. Two runs
    /// of the same statement sequence must produce equal vectors here
    /// regardless of `workers`.
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().filter(|(n, _)| DETERMINISTIC_COUNTERS.contains(n)).copied().collect()
    }

    /// Difference against an earlier snapshot, saturating per entry.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| (*name, v.saturating_sub(earlier.counter(name))))
                .collect(),
            stages: Stage::ALL.map(|s| {
                let now = &self.stages[s.index()].1;
                let then = &earlier.stages[s.index()].1;
                (s, now.delta_since(then))
            }),
            morsel_wait_ns: self.morsel_wait_ns.delta_since(&earlier.morsel_wait_ns),
            commit_wait_us: self.commit_wait_us.delta_since(&earlier.commit_wait_us),
        }
    }

    /// Serialises the snapshot as a single JSON object (hand-rolled:
    /// the workspace is zero-dependency). Counter names are emitted in
    /// canonical order; stage histograms report count/sum/max.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"stages\":{");
        for (i, (stage, h)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{}}}",
                stage.name(),
                h.count,
                h.sum,
                h.max
            ));
        }
        out.push_str(&format!(
            "}},\"morsel_wait_ns\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{}}}",
            self.morsel_wait_ns.count, self.morsel_wait_ns.sum, self.morsel_wait_ns.max
        ));
        out.push_str(&format!(
            ",\"commit_wait_us\":{{\"count\":{},\"sum_us\":{},\"max_us\":{}}}}}",
            self.commit_wait_us.count, self.commit_wait_us.sum, self.commit_wait_us.max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_order_is_canonical() {
        let m = EngineMetrics::new();
        let names: Vec<&str> = m.snapshot().counters.iter().map(|(n, _)| *n).collect();
        let expected: Vec<&str> =
            DETERMINISTIC_COUNTERS.iter().chain(SCHEDULING_COUNTERS.iter()).copied().collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn delta_counts_only_new_events() {
        let m = EngineMetrics::new();
        m.queries.incr();
        m.index_probes.add(3);
        let before = m.snapshot();
        m.index_probes.add(2);
        m.refine_hits.add(7);
        let delta = m.snapshot().delta_since(&before);
        assert_eq!(delta.counter("queries"), 0);
        assert_eq!(delta.counter("index_probes"), 2);
        assert_eq!(delta.counter("refine_hits"), 7);
    }

    #[test]
    fn stage_record_round_trips() {
        let m = EngineMetrics::new();
        m.record_stage(Stage::Refine, Duration::from_nanos(1500));
        let snap = m.snapshot();
        let refine = &snap.stages[Stage::Refine as usize].1;
        assert_eq!(refine.count, 1);
        assert_eq!(refine.sum, 1500);
    }

    #[test]
    fn json_shape() {
        let m = EngineMetrics::new();
        m.queries.incr();
        let json = m.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{\"queries\":1,"));
        assert!(json.contains("\"stages\":{\"parse\":"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn deterministic_subset_excludes_scheduling() {
        let m = EngineMetrics::new();
        let det = m.snapshot().deterministic_counters();
        assert_eq!(det.len(), DETERMINISTIC_COUNTERS.len());
        assert!(det.iter().all(|(n, _)| !SCHEDULING_COUNTERS.contains(n)));
    }
}
