//! The engine metrics registry: every counter and histogram the engine
//! exposes, under canonical names, with snapshot/delta support.
//!
//! Counters fall into two classes, and the split is load-bearing for
//! tests:
//!
//! * **deterministic** — a function of the statement sequence alone,
//!   identical at any intra-query worker count (index probes, candidate
//!   and hit counts, heap rows fetched, WAL appends). The parallel
//!   equivalence suite asserts exact equality of these across worker
//!   counts.
//! * **scheduling-dependent** — morsel dispatch counts, queue waits and
//!   stage timings, which legitimately vary run to run.

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::histogram::{Histogram, HistogramSnapshot};
use std::time::Duration;

/// The stages a query passes through, in pipeline order. The order here
/// is the canonical render/snapshot order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// SQL text → AST.
    Parse,
    /// AST → plan tree (or plan-cache lookup).
    Plan,
    /// Spatial/ordered index window or nearest probe.
    IndexProbe,
    /// Vectorized envelope prefilter over packed MBR columns (the
    /// batch executor's branch-free reject pass before refinement).
    Prefilter,
    /// Exact predicate refinement (DE-9IM and friends) over candidates.
    Refine,
    /// Row materialization of the final result set.
    Materialize,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Plan,
        Stage::IndexProbe,
        Stage::Prefilter,
        Stage::Refine,
        Stage::Materialize,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::IndexProbe => "index_probe",
            Stage::Prefilter => "prefilter",
            Stage::Refine => "refine",
            Stage::Materialize => "materialize",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The sites at which a statement can wait on the exclusive writer txn
/// lock. Per-site histograms attribute contention to the statement kind
/// that suffered it, the way `pg_stat_activity` wait events do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnSite {
    /// `INSERT` row batches.
    Insert,
    /// `DELETE ... WHERE`.
    Delete,
    /// `UPDATE ... WHERE`.
    Update,
    /// DDL: create/drop table or index.
    Ddl,
    /// Explicit checkpoints.
    Checkpoint,
}

impl TxnSite {
    /// All sites, in the canonical snapshot order.
    pub const ALL: [TxnSite; 5] =
        [TxnSite::Insert, TxnSite::Delete, TxnSite::Update, TxnSite::Ddl, TxnSite::Checkpoint];

    /// Stable wait-histogram name used in snapshots and JSON.
    pub fn wait_name(self) -> &'static str {
        match self {
            TxnSite::Insert => "txn_wait_insert_ns",
            TxnSite::Delete => "txn_wait_delete_ns",
            TxnSite::Update => "txn_wait_update_ns",
            TxnSite::Ddl => "txn_wait_ddl_ns",
            TxnSite::Checkpoint => "txn_wait_checkpoint_ns",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Canonical counter names, in snapshot order: deterministic counters
/// first, scheduling-dependent ones after.
pub const DETERMINISTIC_COUNTERS: [&str; 12] = [
    "queries",
    "index_probes",
    "index_candidates",
    "index_nodes_visited",
    "refine_candidates",
    "refine_hits",
    "refine_short_circuits",
    "prefilter_rejects",
    "selvec_survivors",
    "heap_rows_fetched",
    "wal_appends",
    "wal_fsyncs",
];

/// Counters whose value depends on scheduling (worker count, cache
/// state), snapshot-ordered after the deterministic set.
pub const SCHEDULING_COUNTERS: [&str; 9] = [
    "plan_cache_hits",
    "plan_cache_misses",
    "prepared_cache_hits",
    "prepared_cache_misses",
    "prepared_cache_evictions",
    "morsels_dispatched",
    "batches_dispatched",
    "group_commit_batches",
    "group_commit_size",
];

/// Canonical gauge names, in snapshot order. Gauges report current
/// levels (not cumulative events) and are refreshed by the engine at
/// snapshot points, so delta arithmetic never applies to them. The
/// `pool_*` entries mirror the buffer pool's state and lifetime
/// counters (mirrored as gauges because the pool owns the live values
/// and the engine copies them at snapshot points).
pub const GAUGES: [&str; 10] = [
    "active_snapshots",
    "pending_reclaim_rows",
    "oldest_snapshot_age_us",
    "pool_capacity_frames",
    "pool_resident_frames",
    "pool_pinned_frames",
    "pool_pin_hits",
    "pool_cold_pins",
    "pool_evictions",
    "pool_dirty_writebacks",
];

/// Canonical wait-histogram names, in snapshot order: the per-site
/// writer-lock waits, then the commit-pipeline follower wait, then the
/// snapshot-pin lifetime.
pub const WAIT_HISTOGRAMS: [&str; 7] = [
    "txn_wait_insert_ns",
    "txn_wait_delete_ns",
    "txn_wait_update_ns",
    "txn_wait_ddl_ns",
    "txn_wait_checkpoint_ns",
    "commit_follower_wait_us",
    "snapshot_pin_ns",
];

/// All counters and histograms the engine maintains. One instance per
/// `SpatialDb`, shared by reference with every subsystem that records.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Statements executed (of any kind).
    pub queries: Counter,
    /// Index probe calls (window, ordered range, nearest).
    pub index_probes: Counter,
    /// Candidate rows returned by index probes.
    pub index_candidates: Counter,
    /// Index tree nodes / grid cells inspected while probing.
    pub index_nodes_visited: Counter,
    /// Rows entering exact-predicate refinement.
    pub refine_candidates: Counter,
    /// Rows surviving refinement.
    pub refine_hits: Counter,
    /// Refine decisions made by a prepared-geometry short-circuit
    /// (envelope reject / shared-point accept) without a full DE-9IM
    /// matrix.
    pub refine_short_circuits: Counter,
    /// Rows decided by the vectorized envelope prefilter (no refine
    /// needed). Zero on the row-at-a-time path.
    pub prefilter_rejects: Counter,
    /// Selection-vector entries that survived the prefilter and entered
    /// batch refinement. `prefilter_rejects + selvec_survivors ==
    /// refine_candidates` on vectorized filters.
    pub selvec_survivors: Counter,
    /// Heap rows fetched during scans and candidate lookups.
    pub heap_rows_fetched: Counter,
    /// WAL records appended.
    pub wal_appends: Counter,
    /// WAL fsync (`sync_data`) calls.
    pub wal_fsyncs: Counter,
    /// Plan-cache hits.
    pub plan_cache_hits: Counter,
    /// Plan-cache misses (fresh plans).
    pub plan_cache_misses: Counter,
    /// Prepared-geometry cache hits (inner geometry reused across pairs).
    pub prepared_cache_hits: Counter,
    /// Prepared-geometry cache misses (fresh preparation built).
    pub prepared_cache_misses: Counter,
    /// Entries evicted from the prepared-geometry cache when full
    /// (least-recently-hit fraction).
    pub prepared_cache_evictions: Counter,
    /// Morsels claimed by parallel workers (serial execution claims none).
    pub morsels_dispatched: Counter,
    /// Batches processed by the vectorized filter path.
    pub batches_dispatched: Counter,
    /// Fsync batches flushed by the group-commit pipeline (one leader
    /// `sync_data` per batch).
    pub group_commit_batches: Counter,
    /// Commits covered by those batches; `group_commit_size /
    /// group_commit_batches` is the mean batch size, and the pipeline
    /// guarantees at most one fsync per batch.
    pub group_commit_size: Counter,
    /// Nanoseconds from query start to each morsel claim.
    pub morsel_wait_ns: Histogram,
    /// Microseconds each committing session waited for its group-commit
    /// batch to reach disk (queue wait + shared fsync).
    pub commit_wait_us: Histogram,
    /// Microseconds a committing session spent blocked as a group-commit
    /// *follower* (waiting for a leader's fsync to cover its ticket) —
    /// a subset of `commit_wait_us` isolating pure pipeline queueing.
    pub commit_follower_wait_us: Histogram,
    /// Nanoseconds each snapshot pin lived, recorded when the last
    /// reader of a generation releases it. Long pins are what hold back
    /// the vacuum horizon.
    pub snapshot_pin_ns: Histogram,
    /// Currently pinned snapshot generations (distinct generations, not
    /// reader counts).
    pub active_snapshots: Gauge,
    /// Rows awaiting reclamation by the next vacuum pass.
    pub pending_reclaim_rows: Gauge,
    /// Age in microseconds of the oldest still-pinned snapshot; zero
    /// when nothing is pinned.
    pub oldest_snapshot_age_us: Gauge,
    /// Buffer-pool frame budget (0 = unbounded).
    pub pool_capacity_frames: Gauge,
    /// Frames currently resident in the buffer pool.
    pub pool_resident_frames: Gauge,
    /// Frames currently pinned (refcount > 0).
    pub pool_pinned_frames: Gauge,
    /// Lifetime pins satisfied by a resident frame.
    pub pool_pin_hits: Gauge,
    /// Lifetime pins that had to materialize a frame (page-store read
    /// or fresh page).
    pub pool_cold_pins: Gauge,
    /// Lifetime frames evicted to make room.
    pub pool_evictions: Gauge,
    /// Lifetime dirty frames written back to their page store.
    pub pool_dirty_writebacks: Gauge,
    /// Self-time per stage, nanoseconds (indexed by `Stage`).
    stage_ns: [Histogram; 6],
    /// Writer txn-lock wait per site, nanoseconds (indexed by `TxnSite`).
    txn_wait_ns: [Histogram; 5],
}

impl EngineMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one self-time sample for a stage.
    #[inline]
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage_ns[stage.index()].record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one writer txn-lock wait at `site`.
    #[inline]
    pub fn record_txn_wait(&self, site: TxnSite, waited: Duration) {
        self.txn_wait_ns[site.index()].record(waited.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records the lifetime of one released snapshot pin.
    #[inline]
    pub fn record_snapshot_pin(&self, lived: Duration) {
        self.snapshot_pin_ns.record(lived.as_nanos().min(u64::MAX as u128) as u64);
    }

    fn gauge(&self, name: &str) -> &Gauge {
        match name {
            "active_snapshots" => &self.active_snapshots,
            "pending_reclaim_rows" => &self.pending_reclaim_rows,
            "oldest_snapshot_age_us" => &self.oldest_snapshot_age_us,
            "pool_capacity_frames" => &self.pool_capacity_frames,
            "pool_resident_frames" => &self.pool_resident_frames,
            "pool_pinned_frames" => &self.pool_pinned_frames,
            "pool_pin_hits" => &self.pool_pin_hits,
            "pool_cold_pins" => &self.pool_cold_pins,
            "pool_evictions" => &self.pool_evictions,
            "pool_dirty_writebacks" => &self.pool_dirty_writebacks,
            other => panic!("unknown gauge {other:?}"),
        }
    }

    fn counter(&self, name: &str) -> &Counter {
        match name {
            "queries" => &self.queries,
            "index_probes" => &self.index_probes,
            "index_candidates" => &self.index_candidates,
            "index_nodes_visited" => &self.index_nodes_visited,
            "refine_candidates" => &self.refine_candidates,
            "refine_hits" => &self.refine_hits,
            "refine_short_circuits" => &self.refine_short_circuits,
            "prefilter_rejects" => &self.prefilter_rejects,
            "selvec_survivors" => &self.selvec_survivors,
            "heap_rows_fetched" => &self.heap_rows_fetched,
            "wal_appends" => &self.wal_appends,
            "wal_fsyncs" => &self.wal_fsyncs,
            "plan_cache_hits" => &self.plan_cache_hits,
            "plan_cache_misses" => &self.plan_cache_misses,
            "prepared_cache_hits" => &self.prepared_cache_hits,
            "prepared_cache_misses" => &self.prepared_cache_misses,
            "prepared_cache_evictions" => &self.prepared_cache_evictions,
            "morsels_dispatched" => &self.morsels_dispatched,
            "batches_dispatched" => &self.batches_dispatched,
            "group_commit_batches" => &self.group_commit_batches,
            "group_commit_size" => &self.group_commit_size,
            other => panic!("unknown counter {other:?}"),
        }
    }

    /// A point-in-time copy of every counter and histogram, in canonical
    /// order. Safe to call from any thread at any time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut waits = Vec::with_capacity(WAIT_HISTOGRAMS.len());
        for site in TxnSite::ALL {
            waits.push((site.wait_name(), self.txn_wait_ns[site.index()].snapshot()));
        }
        waits.push(("commit_follower_wait_us", self.commit_follower_wait_us.snapshot()));
        waits.push(("snapshot_pin_ns", self.snapshot_pin_ns.snapshot()));
        let mut snap = self.query_snapshot();
        snap.waits = waits;
        snap
    }

    /// The per-query subset of [`Self::snapshot`]: counters, gauges and
    /// the stage/scheduling histograms, *without* the engine-wide
    /// wait-state histograms. This is what the recorded-statement path
    /// snapshots twice per query — skipping the seven wait histograms
    /// (each a 64-bucket copy) keeps the always-on recording cost inside
    /// the 2% overhead budget; wait states are engine-level series
    /// (`jp_metrics`, Prometheus), not per-query deltas.
    pub fn query_snapshot(&self) -> MetricsSnapshot {
        let mut counters =
            Vec::with_capacity(DETERMINISTIC_COUNTERS.len() + SCHEDULING_COUNTERS.len());
        for name in DETERMINISTIC_COUNTERS.iter().chain(SCHEDULING_COUNTERS.iter()) {
            counters.push((*name, self.counter(name).get()));
        }
        MetricsSnapshot {
            counters,
            gauges: GAUGES.iter().map(|name| (*name, self.gauge(name).get())).collect(),
            stages: Stage::ALL.map(|s| (s, self.stage_ns[s.index()].snapshot())),
            waits: Vec::new(),
            morsel_wait_ns: self.morsel_wait_ns.snapshot(),
            commit_wait_us: self.commit_wait_us.snapshot(),
        }
    }
}

/// A point-in-time copy of an [`EngineMetrics`], used both as the
/// machine-readable API surface and as the subtrahend for per-query
/// deltas.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// `(name, value)` in canonical order: [`DETERMINISTIC_COUNTERS`]
    /// then [`SCHEDULING_COUNTERS`].
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, level)` point-in-time gauges in [`GAUGES`] order. Gauges
    /// are levels, not event counts: `delta_since` carries the *later*
    /// snapshot's values through unchanged.
    pub gauges: Vec<(&'static str, u64)>,
    /// Per-stage self-time histograms in [`Stage::ALL`] order.
    pub stages: [(Stage, HistogramSnapshot); 6],
    /// `(name, histogram)` wait-state histograms in [`WAIT_HISTOGRAMS`]
    /// order: per-site txn-lock waits, commit follower waits, snapshot
    /// pin lifetimes.
    pub waits: Vec<(&'static str, HistogramSnapshot)>,
    /// Morsel queue-wait histogram.
    pub morsel_wait_ns: HistogramSnapshot,
    /// Group-commit wait histogram (microseconds per committed session).
    pub commit_wait_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Value of a counter by canonical name; panics on unknown names so
    /// golden tests catch renames.
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_opt(name).unwrap_or_else(|| panic!("unknown counter {name:?}"))
    }

    /// Value of a counter by name, `None` when this snapshot does not
    /// carry it — the lenient lookup `delta_since` uses so snapshots
    /// taken across a counter-vocabulary change never panic.
    pub fn counter_opt(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Level of a gauge by canonical name; panics on unknown names.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown gauge {name:?}"))
    }

    /// A wait-state histogram by canonical name; panics on unknown names.
    pub fn wait(&self, name: &str) -> &HistogramSnapshot {
        self.wait_opt(name).unwrap_or_else(|| panic!("unknown wait histogram {name:?}"))
    }

    fn wait_opt(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.waits.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// The worker-count-invariant subset, in canonical order. Two runs
    /// of the same statement sequence must produce equal vectors here
    /// regardless of `workers`.
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().filter(|(n, _)| DETERMINISTIC_COUNTERS.contains(n)).copied().collect()
    }

    /// Difference against an earlier snapshot, saturating per entry.
    ///
    /// The two snapshots' name sets may differ (a counter or wait
    /// histogram introduced after `earlier` was taken): names missing
    /// from `earlier` are treated as zero there, so they appear in the
    /// delta with their full later value — never a panic or underflow.
    /// Gauges are levels, not events, so the delta carries the later
    /// snapshot's gauge values through unchanged.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| (*name, v.saturating_sub(earlier.counter_opt(name).unwrap_or(0))))
                .collect(),
            gauges: self.gauges.clone(),
            stages: Stage::ALL.map(|s| {
                let now = &self.stages[s.index()].1;
                let then = &earlier.stages[s.index()].1;
                (s, now.delta_since(then))
            }),
            waits: self
                .waits
                .iter()
                .map(|(name, h)| match earlier.wait_opt(name) {
                    Some(then) => (*name, h.delta_since(then)),
                    None => (*name, h.clone()),
                })
                .collect(),
            morsel_wait_ns: self.morsel_wait_ns.delta_since(&earlier.morsel_wait_ns),
            commit_wait_us: self.commit_wait_us.delta_since(&earlier.commit_wait_us),
        }
    }

    /// Serialises the snapshot as a single JSON object (hand-rolled:
    /// the workspace is zero-dependency). Counter names are emitted in
    /// canonical order; stage histograms report count/sum/max.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"stages\":{");
        for (i, (stage, h)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{}}}",
                stage.name(),
                h.count,
                h.sum,
                h.max
            ));
        }
        out.push_str(&format!(
            "}},\"morsel_wait_ns\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{}}}",
            self.morsel_wait_ns.count, self.morsel_wait_ns.sum, self.morsel_wait_ns.max
        ));
        out.push_str(&format!(
            ",\"commit_wait_us\":{{\"count\":{},\"sum_us\":{},\"max_us\":{}}}",
            self.commit_wait_us.count, self.commit_wait_us.sum, self.commit_wait_us.max
        ));
        out.push_str(",\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"waits\":{");
        for (i, (name, h)) in self.waits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{}}}",
                h.count, h.sum, h.max
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_order_is_canonical() {
        let m = EngineMetrics::new();
        let names: Vec<&str> = m.snapshot().counters.iter().map(|(n, _)| *n).collect();
        let expected: Vec<&str> =
            DETERMINISTIC_COUNTERS.iter().chain(SCHEDULING_COUNTERS.iter()).copied().collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn delta_counts_only_new_events() {
        let m = EngineMetrics::new();
        m.queries.incr();
        m.index_probes.add(3);
        let before = m.snapshot();
        m.index_probes.add(2);
        m.refine_hits.add(7);
        let delta = m.snapshot().delta_since(&before);
        assert_eq!(delta.counter("queries"), 0);
        assert_eq!(delta.counter("index_probes"), 2);
        assert_eq!(delta.counter("refine_hits"), 7);
    }

    #[test]
    fn stage_record_round_trips() {
        let m = EngineMetrics::new();
        m.record_stage(Stage::Refine, Duration::from_nanos(1500));
        let snap = m.snapshot();
        let refine = &snap.stages[Stage::Refine as usize].1;
        assert_eq!(refine.count, 1);
        assert_eq!(refine.sum, 1500);
    }

    #[test]
    fn json_shape() {
        let m = EngineMetrics::new();
        m.queries.incr();
        let json = m.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{\"queries\":1,"));
        assert!(json.contains("\"stages\":{\"parse\":"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn deterministic_subset_excludes_scheduling() {
        let m = EngineMetrics::new();
        let det = m.snapshot().deterministic_counters();
        assert_eq!(det.len(), DETERMINISTIC_COUNTERS.len());
        assert!(det.iter().all(|(n, _)| !SCHEDULING_COUNTERS.contains(n)));
    }

    /// A counter introduced after the earlier snapshot was taken (e.g. a
    /// snapshot persisted by an older binary) must surface in the delta
    /// with its full later value — never a panic, never an underflow.
    #[test]
    fn delta_tolerates_counters_missing_from_earlier_snapshot() {
        let m = EngineMetrics::new();
        m.queries.add(3);
        m.group_commit_batches.add(2);
        let mut earlier = m.snapshot();
        // Simulate an older counter vocabulary: the earlier snapshot
        // never heard of group_commit_batches (or any wait histogram).
        earlier.counters.retain(|(n, _)| *n != "group_commit_batches");
        earlier.waits.clear();
        m.queries.incr();
        m.record_txn_wait(TxnSite::Insert, Duration::from_nanos(500));
        let delta = m.snapshot().delta_since(&earlier);
        assert_eq!(delta.counter("queries"), 1, "shared counters still subtract");
        assert_eq!(
            delta.counter("group_commit_batches"),
            2,
            "missing-from-earlier counters appear with full value"
        );
        assert_eq!(delta.wait("txn_wait_insert_ns").count, 1);
        assert_eq!(delta.wait("txn_wait_insert_ns").sum, 500);
    }

    /// And the reverse skew: the earlier snapshot carries a counter the
    /// later one dropped. The delta simply omits it (the later vocabulary
    /// wins), with no panic on the extra name.
    #[test]
    fn delta_ignores_counters_dropped_from_later_snapshot() {
        let m = EngineMetrics::new();
        m.queries.incr();
        let earlier = m.snapshot();
        let mut later = m.snapshot();
        later.counters.retain(|(n, _)| *n != "wal_fsyncs");
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.counter_opt("wal_fsyncs"), None);
        assert_eq!(delta.counter("queries"), 0);
    }

    #[test]
    fn gauges_are_levels_not_deltas() {
        let m = EngineMetrics::new();
        m.pending_reclaim_rows.set(10);
        let before = m.snapshot();
        m.pending_reclaim_rows.set(4);
        m.active_snapshots.set(2);
        let delta = m.snapshot().delta_since(&before);
        // A shrinking backlog must read 4, not a saturated 0.
        assert_eq!(delta.gauge("pending_reclaim_rows"), 4);
        assert_eq!(delta.gauge("active_snapshots"), 2);
        let names: Vec<&str> = delta.gauges.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, GAUGES.to_vec());
    }

    #[test]
    fn wait_histograms_record_per_site() {
        let m = EngineMetrics::new();
        m.record_txn_wait(TxnSite::Delete, Duration::from_nanos(300));
        m.record_txn_wait(TxnSite::Delete, Duration::from_nanos(700));
        m.record_snapshot_pin(Duration::from_nanos(900));
        let snap = m.snapshot();
        let names: Vec<&str> = snap.waits.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, WAIT_HISTOGRAMS.to_vec());
        assert_eq!(snap.wait("txn_wait_delete_ns").count, 2);
        assert_eq!(snap.wait("txn_wait_delete_ns").sum, 1000);
        assert_eq!(snap.wait("txn_wait_insert_ns").count, 0);
        assert_eq!(snap.wait("snapshot_pin_ns").max, 900);
    }

    #[test]
    fn json_carries_gauges_and_waits() {
        let m = EngineMetrics::new();
        m.oldest_snapshot_age_us.set(77);
        m.record_txn_wait(TxnSite::Update, Duration::from_nanos(5));
        let json = m.snapshot().to_json();
        assert!(json.contains("\"gauges\":{\"active_snapshots\":0,"));
        assert!(json.contains("\"oldest_snapshot_age_us\":77"));
        assert!(json.contains("\"waits\":{\"txn_wait_insert_ns\":"));
        assert!(json.contains("\"txn_wait_update_ns\":{\"count\":1,\"sum\":5,\"max\":5}"));
        assert!(json.ends_with("}}"));
    }
}
