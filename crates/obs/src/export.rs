//! Chrome trace-event export.
//!
//! Serialises a sequence of completed [`QueryTrace`]s into the Chrome
//! trace-event JSON format (the `{"traceEvents": [...]}` flavour), which
//! loads directly in `chrome://tracing` and Perfetto. Each query becomes
//! a complete ("X") span on the query lane, with its stage self-times
//! nested as child spans, and morsel-parallel queries additionally mark
//! a span on a worker lane so parallel sections are visible at a glance.
//!
//! Traces carry durations but not absolute start times (the recorder
//! stores deltas, not wall-clock anchors), so the exporter lays queries
//! end-to-end on a synthetic timeline: span *widths* are real measured
//! time, span *positions* are bookkeeping. That is the honest rendering
//! for retrospective data and keeps the output deterministic.

use crate::trace::{json_string, QueryTrace};

/// Process id used for all emitted events.
const PID: u64 = 1;
/// Thread lane for query + stage spans.
const TID_QUERY: u64 = 1;
/// Thread lane for morsel/worker activity.
const TID_WORKERS: u64 = 2;
/// Synthetic gap between consecutive queries, microseconds.
const GAP_US: u64 = 5;

/// Renders `(label, trace)` pairs as Chrome trace-event JSON. Labels
/// name the query spans (falling back to the SQL text when empty); the
/// full SQL always rides along in the span `args`.
pub fn chrome_trace_json(traces: &[(&str, &QueryTrace)]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(traces.len() * 8 + 3);
    events.push(metadata("process_name", PID, TID_QUERY, "jackpine"));
    events.push(metadata("thread_name", PID, TID_QUERY, "queries"));
    events.push(metadata("thread_name", PID, TID_WORKERS, "morsel workers"));

    let mut cursor_us: u64 = 0;
    for (label, trace) in traces {
        let total_us = ns_to_us(trace.total.as_nanos().min(u64::MAX as u128) as u64);
        let name = if label.is_empty() { trace.sql.as_str() } else { label };
        events.push(complete_event(
            name,
            "query",
            TID_QUERY,
            cursor_us,
            total_us,
            &format!(
                "{{\"sql\":{},\"rows\":{},\"index_probes\":{},\"refine_hits\":{}}}",
                json_string(&trace.sql),
                trace.rows,
                trace.counter("index_probes"),
                trace.counter("refine_hits")
            ),
        ));

        // Stage spans nest under the query span, laid out sequentially
        // in pipeline order (stages are self-times, so end-to-end is the
        // faithful layout; any remainder is unattributed engine time).
        let mut stage_us = cursor_us;
        for (stage, h) in &trace.delta.stages {
            if h.count == 0 {
                continue;
            }
            // Clamp so stages never spill past the query span. Sub-μs
            // stages are floored to 1 μs, so once the floors have used
            // up the whole span the clamp hits 0 — drop those rather
            // than emit zero-width (invalid) spans.
            let dur = ns_to_us(h.sum).min(cursor_us + total_us - stage_us);
            if dur == 0 {
                continue;
            }
            events.push(complete_event(
                stage.name(),
                "stage",
                TID_QUERY,
                stage_us,
                dur,
                &format!("{{\"samples\":{}}}", h.count),
            ));
            stage_us += dur;
        }

        // Morsel-parallel queries get a worker-lane span covering the
        // query interval, so parallel sections stand out visually.
        let morsels = trace.counter("morsels_dispatched");
        if morsels > 0 {
            events.push(complete_event(
                "morsels",
                "workers",
                TID_WORKERS,
                cursor_us,
                total_us,
                &format!(
                    "{{\"morsels\":{},\"wait_mean_ns\":{}}}",
                    morsels,
                    trace.delta.morsel_wait_ns.mean()
                ),
            ));
        }

        cursor_us += total_us + GAP_US;
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Nanoseconds to whole microseconds, floored at 1 so even sub-μs spans
/// stay visible (and valid) in trace viewers.
fn ns_to_us(ns: u64) -> u64 {
    (ns / 1_000).max(1)
}

fn metadata(kind: &str, pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
        json_string(kind),
        json_string(name)
    )
}

fn complete_event(name: &str, cat: &str, tid: u64, ts_us: u64, dur_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\
         \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{args}}}",
        json_string(name),
        json_string(cat)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EngineMetrics, Stage};
    use std::time::Duration;

    fn traced(sql: &str) -> QueryTrace {
        let m = EngineMetrics::new();
        let before = m.snapshot();
        m.queries.incr();
        m.index_probes.incr();
        m.morsels_dispatched.add(3);
        m.record_stage(Stage::Parse, Duration::from_micros(50));
        m.record_stage(Stage::Refine, Duration::from_micros(400));
        QueryTrace::new(sql, Duration::from_millis(1), 7, m.snapshot().delta_since(&before))
    }

    #[test]
    fn emits_query_stage_and_worker_spans() {
        let t = traced("SELECT 1");
        let json = chrome_trace_json(&[("T01", &t)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"T01\""));
        assert!(json.contains("\"cat\":\"query\""));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"name\":\"refine\""));
        assert!(json.contains("\"cat\":\"workers\""), "morsel lane missing: {json}");
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn timeline_is_sequential_and_durations_positive() {
        let a = traced("SELECT a");
        let b = traced("SELECT b");
        let json = chrome_trace_json(&[("qa", &a), ("qb", &b)]);
        // Both query spans present; the second starts after the first
        // (total 1000 μs + 5 μs gap → ts 1005).
        assert!(json.contains("\"name\":\"qa\""));
        assert!(json.contains("\"name\":\"qb\""));
        assert!(json.contains("\"ts\":0,\"dur\":1000"));
        assert!(json.contains("\"ts\":1005,\"dur\":1000"), "{json}");
        assert!(!json.contains("\"dur\":0"));
    }

    #[test]
    fn sub_us_stage_floors_never_emit_zero_width_spans() {
        // Three sub-μs stages each floor to 1 μs inside a 2 μs query
        // span: the third would clamp to zero width and must be
        // dropped, not emitted with dur 0.
        let m = EngineMetrics::new();
        let before = m.snapshot();
        m.record_stage(Stage::Parse, Duration::from_nanos(100));
        m.record_stage(Stage::Prefilter, Duration::from_nanos(100));
        m.record_stage(Stage::Refine, Duration::from_nanos(100));
        let t = QueryTrace::new(
            "SELECT tiny",
            Duration::from_micros(2),
            1,
            m.snapshot().delta_since(&before),
        );
        let json = chrome_trace_json(&[("tiny", &t)]);
        assert!(!json.contains("\"dur\":0"), "{json}");
        assert!(json.contains("\"name\":\"parse\""));
    }

    #[test]
    fn empty_label_falls_back_to_sql() {
        let t = traced("SELECT fallback");
        let json = chrome_trace_json(&[("", &t)]);
        assert!(json.contains("\"name\":\"SELECT fallback\""));
    }

    #[test]
    fn empty_input_is_valid_json_with_metadata_only() {
        let json = chrome_trace_json(&[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("process_name"));
        assert!(!json.contains("\"ph\":\"X\""));
    }
}
