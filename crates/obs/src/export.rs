//! Chrome trace-event export.
//!
//! Serialises a sequence of completed [`QueryTrace`]s into the Chrome
//! trace-event JSON format (the `{"traceEvents": [...]}` flavour), which
//! loads directly in `chrome://tracing` and Perfetto. Each query becomes
//! a complete ("X") span on the query lane, with its stage self-times
//! nested as child spans, and morsel-parallel queries additionally mark
//! a span on a worker lane so parallel sections are visible at a glance.
//!
//! Traces carry durations but not absolute start times (the recorder
//! stores deltas, not wall-clock anchors), so the exporter lays queries
//! end-to-end on a synthetic timeline: span *widths* are real measured
//! time, span *positions* are bookkeeping. That is the honest rendering
//! for retrospective data and keeps the output deterministic.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::metrics::MetricsSnapshot;
use crate::trace::{json_string, QueryTrace};
use std::collections::{HashMap, HashSet};

/// Process id used for all emitted events.
const PID: u64 = 1;
/// Thread lane for query + stage spans.
const TID_QUERY: u64 = 1;
/// Thread lane for morsel/worker activity.
const TID_WORKERS: u64 = 2;
/// Synthetic gap between consecutive queries, microseconds.
const GAP_US: u64 = 5;

/// Renders `(label, trace)` pairs as Chrome trace-event JSON. Labels
/// name the query spans (falling back to the SQL text when empty); the
/// full SQL always rides along in the span `args`.
pub fn chrome_trace_json(traces: &[(&str, &QueryTrace)]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(traces.len() * 8 + 3);
    events.push(metadata("process_name", PID, TID_QUERY, "jackpine"));
    events.push(metadata("thread_name", PID, TID_QUERY, "queries"));
    events.push(metadata("thread_name", PID, TID_WORKERS, "morsel workers"));

    let mut cursor_us: u64 = 0;
    for (label, trace) in traces {
        let total_us = ns_to_us(trace.total.as_nanos().min(u64::MAX as u128) as u64);
        let name = if label.is_empty() { trace.sql.as_str() } else { label };
        events.push(complete_event(
            name,
            "query",
            TID_QUERY,
            cursor_us,
            total_us,
            &format!(
                "{{\"sql\":{},\"rows\":{},\"index_probes\":{},\"refine_hits\":{}}}",
                json_string(&trace.sql),
                trace.rows,
                trace.counter("index_probes"),
                trace.counter("refine_hits")
            ),
        ));

        // Stage spans nest under the query span, laid out sequentially
        // in pipeline order (stages are self-times, so end-to-end is the
        // faithful layout; any remainder is unattributed engine time).
        let mut stage_us = cursor_us;
        for (stage, h) in &trace.delta.stages {
            if h.count == 0 {
                continue;
            }
            // Clamp so stages never spill past the query span. Sub-μs
            // stages are floored to 1 μs, so once the floors have used
            // up the whole span the clamp hits 0 — drop those rather
            // than emit zero-width (invalid) spans.
            let dur = ns_to_us(h.sum).min(cursor_us + total_us - stage_us);
            if dur == 0 {
                continue;
            }
            events.push(complete_event(
                stage.name(),
                "stage",
                TID_QUERY,
                stage_us,
                dur,
                &format!("{{\"samples\":{}}}", h.count),
            ));
            stage_us += dur;
        }

        // Morsel-parallel queries get a worker-lane span covering the
        // query interval, so parallel sections stand out visually.
        let morsels = trace.counter("morsels_dispatched");
        if morsels > 0 {
            events.push(complete_event(
                "morsels",
                "workers",
                TID_WORKERS,
                cursor_us,
                total_us,
                &format!(
                    "{{\"morsels\":{},\"wait_mean_ns\":{}}}",
                    morsels,
                    trace.delta.morsel_wait_ns.mean()
                ),
            ));
        }

        cursor_us += total_us + GAP_US;
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Nanoseconds to whole microseconds, floored at 1 so even sub-μs spans
/// stay visible (and valid) in trace viewers.
fn ns_to_us(ns: u64) -> u64 {
    (ns / 1_000).max(1)
}

fn metadata(kind: &str, pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
        json_string(kind),
        json_string(name)
    )
}

fn complete_event(name: &str, cat: &str, tid: u64, ts_us: u64, dur_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\
         \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{args}}}",
        json_string(name),
        json_string(cat)
    )
}

/// Namespace prefix for every exported Prometheus series.
const PROM_PREFIX: &str = "jackpine";

/// Renders `(engine_label, snapshot)` pairs in the Prometheus text
/// exposition format (version 0.0.4 — the `/metrics` flavour every
/// scraper accepts), zero-dependency like the rest of the crate.
///
/// Conventions (documented in DESIGN.md "System catalog"):
///
/// * counters export as `jackpine_<name>_total` (`TYPE counter`);
/// * gauges export as `jackpine_<name>` (`TYPE gauge`);
/// * every log2 [`Histogram`](crate::Histogram) exports as a native
///   Prometheus histogram — cumulative `_bucket{le="..."}` series up to
///   the highest occupied bucket plus `le="+Inf"`, with `_sum` and
///   `_count` — under `jackpine_<name>`; per-stage self-times share one
///   family `jackpine_stage_duration_ns` with a `stage` label.
///
/// Each snapshot's series carry an `engine="<label>"` label (omitted
/// for an empty label), and `# HELP` / `# TYPE` headers appear exactly
/// once per family no matter how many engines export, so concatenating
/// engines never produces duplicate metadata.
pub fn prometheus_text(snapshots: &[(&str, &MetricsSnapshot)]) -> String {
    let mut out = String::new();
    if snapshots.is_empty() {
        return out;
    }
    // Family vocabulary comes from the first snapshot; all engines in
    // one process share a metrics version so the sets agree.
    let first = snapshots[0].1;

    for (name, _) in &first.counters {
        let family = format!("{PROM_PREFIX}_{name}_total");
        header(&mut out, &family, "counter", &format!("Cumulative count of {name} events."));
        for (engine, snap) in snapshots {
            if let Some(v) = snap.counter_opt(name) {
                sample(&mut out, &family, &engine_labels(engine), v);
            }
        }
    }
    for (name, _) in &first.gauges {
        let family = format!("{PROM_PREFIX}_{name}");
        header(&mut out, &family, "gauge", &format!("Current level of {name}."));
        for (engine, snap) in snapshots {
            sample(&mut out, &family, &engine_labels(engine), snap.gauge(name));
        }
    }

    let stage_family = format!("{PROM_PREFIX}_stage_duration_ns");
    header(
        &mut out,
        &stage_family,
        "histogram",
        "Per-stage query self-time, nanoseconds, by pipeline stage.",
    );
    for (engine, snap) in snapshots {
        for (stage, h) in &snap.stages {
            let mut labels = engine_labels(engine);
            labels.push(("stage", stage.name().to_string()));
            histogram_series(&mut out, &stage_family, &labels, h);
        }
    }

    type HistGetter = fn(&MetricsSnapshot) -> &HistogramSnapshot;
    let plain: Vec<(&str, HistGetter)> =
        vec![("morsel_wait_ns", |s| &s.morsel_wait_ns), ("commit_wait_us", |s| &s.commit_wait_us)];
    for (name, get) in plain {
        let family = format!("{PROM_PREFIX}_{name}");
        header(&mut out, &family, "histogram", &format!("Distribution of {name} samples."));
        for (engine, snap) in snapshots {
            histogram_series(&mut out, &family, &engine_labels(engine), get(snap));
        }
    }
    for (name, _) in &first.waits {
        let family = format!("{PROM_PREFIX}_{name}");
        header(&mut out, &family, "histogram", &format!("Wait-state distribution of {name}."));
        for (engine, snap) in snapshots {
            histogram_series(&mut out, &family, &engine_labels(engine), snap.wait(name));
        }
    }
    out
}

fn engine_labels(engine: &str) -> Vec<(&'static str, String)> {
    if engine.is_empty() {
        Vec::new()
    } else {
        vec![("engine", engine.to_string())]
    }
}

fn header(out: &mut String, family: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {kind}\n"));
}

fn render_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn sample(out: &mut String, family: &str, labels: &[(&str, String)], value: u64) {
    out.push_str(&format!("{family}{} {value}\n", render_labels(labels)));
}

/// Emits one histogram's cumulative `_bucket`/`_sum`/`_count` series.
fn histogram_series(
    out: &mut String,
    family: &str,
    labels: &[(&str, String)],
    h: &HistogramSnapshot,
) {
    let top = (0..BUCKETS).rev().find(|&b| h.buckets[b] > 0);
    let mut cumulative = 0u64;
    if let Some(top) = top {
        for b in 0..=top {
            cumulative += h.buckets[b];
            let mut with_le = labels.to_vec();
            with_le.push(("le", bucket_upper_bound(b).to_string()));
            out.push_str(&format!("{family}_bucket{} {cumulative}\n", render_labels(&with_le)));
        }
    }
    let mut inf = labels.to_vec();
    inf.push(("le", "+Inf".to_string()));
    out.push_str(&format!("{family}_bucket{} {}\n", render_labels(&inf), h.count));
    out.push_str(&format!("{family}_sum{} {}\n", render_labels(labels), h.sum));
    out.push_str(&format!("{family}_count{} {}\n", render_labels(labels), h.count));
}

/// Lints Prometheus text-exposition output, returning every problem
/// found (empty = clean). Used by the tier-1 gate so a malformed
/// `/metrics` surface fails the build rather than a scrape.
///
/// Checks: every sample has `# HELP` and `# TYPE` metadata; no `TYPE`
/// appears twice; no two samples share a name + label set; counter
/// families end in `_total`; histogram bucket series have strictly
/// increasing `le` values, non-decreasing cumulative counts, end at
/// `le="+Inf"`, and agree with their `_count` series.
pub fn lint_prometheus_text(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // (family, non-le labels) → ordered (le, cumulative) pairs.
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        if let Some(rest) = line.strip_prefix("# HELP ") {
            match rest.split_once(' ') {
                Some((name, _)) => {
                    helped.insert(name.to_string());
                }
                None => errors.push(format!("line {n}: HELP without text: {line}")),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                errors.push(format!("line {n}: TYPE without kind: {line}"));
                continue;
            };
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                errors.push(format!("line {n}: unknown TYPE kind {kind:?} for {name}"));
            }
            if kind == "counter" && !name.ends_with("_total") {
                errors.push(format!("line {n}: counter {name} must end in _total"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                errors.push(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // Sample line: name[{labels}] value
        let Some((series, value)) = split_sample(line) else {
            errors.push(format!("line {n}: unparsable sample: {line}"));
            continue;
        };
        if value.parse::<f64>().is_err() {
            errors.push(format!("line {n}: non-numeric value {value:?}"));
            continue;
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => match rest.strip_suffix('}') {
                Some(body) => (name, body),
                None => {
                    errors.push(format!("line {n}: unterminated label set: {line}"));
                    continue;
                }
            },
            None => (series, ""),
        };
        if !seen_series.insert(format!("{name}{{{labels}}}")) {
            errors.push(format!("line {n}: duplicate series {name}{{{labels}}}"));
        }
        // Resolve the declaring family: histogram samples are suffixed.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name);
        match typed.get(family) {
            None => errors.push(format!("line {n}: sample {name} has no TYPE metadata")),
            Some(kind) if kind == "histogram" && family == name => {
                errors.push(format!(
                    "line {n}: histogram {name} sampled without _bucket/_sum/_count suffix"
                ));
            }
            Some(_) => {}
        }
        if !helped.contains(family) {
            errors.push(format!("line {n}: sample {name} has no HELP metadata"));
        }

        // Histogram bookkeeping, keyed by the label set minus `le`.
        if typed.get(family).map(String::as_str) == Some("histogram") {
            let mut le = None;
            let others: Vec<&str> = labels
                .split(',')
                .filter(|p| !p.is_empty())
                .filter(|p| match p.split_once('=') {
                    Some(("le", v)) => {
                        le = Some(v.trim_matches('"').to_string());
                        false
                    }
                    _ => true,
                })
                .collect();
            let key = (family.to_string(), others.join(","));
            let v = value.parse::<f64>().unwrap_or(f64::NAN);
            if name.ends_with("_bucket") {
                match le {
                    None => errors.push(format!("line {n}: bucket series without le label")),
                    Some(le) => {
                        let bound = if le == "+Inf" {
                            f64::INFINITY
                        } else {
                            le.parse::<f64>().unwrap_or(f64::NAN)
                        };
                        if bound.is_nan() {
                            errors.push(format!("line {n}: unparsable le {le:?}"));
                        }
                        buckets.entry(key).or_default().push((bound, v));
                    }
                }
            } else if name.ends_with("_count") {
                counts.insert(key, v);
            }
        }
    }

    for ((family, labels), series) in &buckets {
        let what = if labels.is_empty() { family.clone() } else { format!("{family}{{{labels}}}") };
        if series.windows(2).any(|w| w[0].0 >= w[1].0) {
            errors.push(format!("{what}: le values not strictly increasing"));
        }
        if series.windows(2).any(|w| w[0].1 > w[1].1) {
            errors.push(format!("{what}: bucket counts not cumulative (non-monotone)"));
        }
        match series.last() {
            Some((bound, total)) if bound.is_infinite() => {
                if let Some(count) = counts.get(&(family.clone(), labels.clone())) {
                    if count != total {
                        errors.push(format!(
                            "{what}: _count {count} disagrees with +Inf bucket {total}"
                        ));
                    }
                } else {
                    errors.push(format!("{what}: histogram missing _count series"));
                }
            }
            _ => errors.push(format!("{what}: last bucket is not le=\"+Inf\"")),
        }
    }
    errors
}

/// Splits a sample line into (series, value) at the last space outside
/// a label set — label values may themselves contain spaces.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let split = match line.rfind('}') {
        Some(end) => end + 1 + line[end + 1..].find(' ')?,
        None => line.find(' ')?,
    };
    let (series, value) = line.split_at(split);
    let value = value.trim();
    if series.is_empty() || value.is_empty() || value.contains(' ') {
        return None;
    }
    Some((series, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EngineMetrics, Stage};
    use std::time::Duration;

    fn traced(sql: &str) -> QueryTrace {
        let m = EngineMetrics::new();
        let before = m.snapshot();
        m.queries.incr();
        m.index_probes.incr();
        m.morsels_dispatched.add(3);
        m.record_stage(Stage::Parse, Duration::from_micros(50));
        m.record_stage(Stage::Refine, Duration::from_micros(400));
        QueryTrace::new(sql, Duration::from_millis(1), 7, m.snapshot().delta_since(&before))
    }

    #[test]
    fn emits_query_stage_and_worker_spans() {
        let t = traced("SELECT 1");
        let json = chrome_trace_json(&[("T01", &t)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"T01\""));
        assert!(json.contains("\"cat\":\"query\""));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"name\":\"refine\""));
        assert!(json.contains("\"cat\":\"workers\""), "morsel lane missing: {json}");
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn timeline_is_sequential_and_durations_positive() {
        let a = traced("SELECT a");
        let b = traced("SELECT b");
        let json = chrome_trace_json(&[("qa", &a), ("qb", &b)]);
        // Both query spans present; the second starts after the first
        // (total 1000 μs + 5 μs gap → ts 1005).
        assert!(json.contains("\"name\":\"qa\""));
        assert!(json.contains("\"name\":\"qb\""));
        assert!(json.contains("\"ts\":0,\"dur\":1000"));
        assert!(json.contains("\"ts\":1005,\"dur\":1000"), "{json}");
        assert!(!json.contains("\"dur\":0"));
    }

    #[test]
    fn sub_us_stage_floors_never_emit_zero_width_spans() {
        // Three sub-μs stages each floor to 1 μs inside a 2 μs query
        // span: the third would clamp to zero width and must be
        // dropped, not emitted with dur 0.
        let m = EngineMetrics::new();
        let before = m.snapshot();
        m.record_stage(Stage::Parse, Duration::from_nanos(100));
        m.record_stage(Stage::Prefilter, Duration::from_nanos(100));
        m.record_stage(Stage::Refine, Duration::from_nanos(100));
        let t = QueryTrace::new(
            "SELECT tiny",
            Duration::from_micros(2),
            1,
            m.snapshot().delta_since(&before),
        );
        let json = chrome_trace_json(&[("tiny", &t)]);
        assert!(!json.contains("\"dur\":0"), "{json}");
        assert!(json.contains("\"name\":\"parse\""));
    }

    #[test]
    fn empty_label_falls_back_to_sql() {
        let t = traced("SELECT fallback");
        let json = chrome_trace_json(&[("", &t)]);
        assert!(json.contains("\"name\":\"SELECT fallback\""));
    }

    #[test]
    fn empty_input_is_valid_json_with_metadata_only() {
        let json = chrome_trace_json(&[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("process_name"));
        assert!(!json.contains("\"ph\":\"X\""));
    }

    fn busy_metrics() -> EngineMetrics {
        let m = EngineMetrics::new();
        m.queries.add(5);
        m.index_probes.add(3);
        m.pending_reclaim_rows.set(12);
        m.record_stage(Stage::Refine, Duration::from_micros(90));
        m.record_txn_wait(crate::metrics::TxnSite::Insert, Duration::from_nanos(800));
        m.commit_wait_us.record(40);
        m.morsel_wait_ns.record(1_000);
        m
    }

    #[test]
    fn prometheus_text_is_lint_clean() {
        let m = busy_metrics();
        let snap = m.snapshot();
        let text = prometheus_text(&[("rtree", &snap)]);
        assert!(text.contains("# TYPE jackpine_queries_total counter"));
        assert!(text.contains("jackpine_queries_total{engine=\"rtree\"} 5"));
        assert!(text.contains("# TYPE jackpine_pending_reclaim_rows gauge"));
        assert!(text.contains("jackpine_pending_reclaim_rows{engine=\"rtree\"} 12"));
        assert!(text.contains("# TYPE jackpine_stage_duration_ns histogram"));
        assert!(text.contains("stage=\"refine\",le=\"+Inf\"} 1"));
        assert!(text.contains("jackpine_txn_wait_insert_ns_sum{engine=\"rtree\"} 800"));
        let errors = lint_prometheus_text(&text);
        assert!(errors.is_empty(), "exporter output must lint clean: {errors:?}");
    }

    #[test]
    fn prometheus_multi_engine_emits_metadata_once() {
        let a = busy_metrics();
        let b = EngineMetrics::new();
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let text = prometheus_text(&[("rtree", &sa), ("grid", &sb)]);
        assert_eq!(text.matches("# TYPE jackpine_queries_total counter").count(), 1);
        assert!(text.contains("jackpine_queries_total{engine=\"rtree\"} 5"));
        assert!(text.contains("jackpine_queries_total{engine=\"grid\"} 0"));
        let errors = lint_prometheus_text(&text);
        assert!(errors.is_empty(), "two-engine export must lint clean: {errors:?}");
    }

    #[test]
    fn prometheus_unlabeled_single_engine() {
        let m = busy_metrics();
        let snap = m.snapshot();
        let text = prometheus_text(&[("", &snap)]);
        assert!(text.contains("jackpine_queries_total 5\n"));
        assert!(lint_prometheus_text(&text).is_empty());
        assert!(prometheus_text(&[]).is_empty());
    }

    #[test]
    fn lint_catches_duplicate_series_and_missing_metadata() {
        let bad = "# HELP m_total help\n# TYPE m_total counter\nm_total 1\nm_total 2\n";
        let errors = lint_prometheus_text(bad);
        assert!(errors.iter().any(|e| e.contains("duplicate series")), "{errors:?}");

        let errors = lint_prometheus_text("orphan 3\n");
        assert!(errors.iter().any(|e| e.contains("no TYPE")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("no HELP")), "{errors:?}");

        let bad = "# HELP c help\n# TYPE c counter\nc 1\n";
        let errors = lint_prometheus_text(bad);
        assert!(errors.iter().any(|e| e.contains("must end in _total")), "{errors:?}");

        let dup = "# HELP m_total h\n# TYPE m_total counter\n# TYPE m_total counter\nm_total 1\n";
        let errors = lint_prometheus_text(dup);
        assert!(errors.iter().any(|e| e.contains("duplicate TYPE")), "{errors:?}");
    }

    #[test]
    fn lint_catches_histogram_shape_errors() {
        // Non-monotone cumulative counts.
        let bad = "# HELP h help\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                   h_sum 9\nh_count 5\n";
        let errors = lint_prometheus_text(bad);
        assert!(errors.iter().any(|e| e.contains("not cumulative")), "{errors:?}");

        // Missing +Inf terminal bucket.
        let bad = "# HELP h help\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        let errors = lint_prometheus_text(bad);
        assert!(errors.iter().any(|e| e.contains("+Inf")), "{errors:?}");

        // le values out of order.
        let bad = "# HELP h help\n# TYPE h histogram\n\
                   h_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\n\
                   h_sum 1\nh_count 1\n";
        let errors = lint_prometheus_text(bad);
        assert!(errors.iter().any(|e| e.contains("strictly increasing")), "{errors:?}");

        // _count disagreeing with the +Inf bucket.
        let bad = "# HELP h help\n# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 3\n";
        let errors = lint_prometheus_text(bad);
        assert!(errors.iter().any(|e| e.contains("disagrees")), "{errors:?}");
    }
}
