//! A retrospective ring of whole-engine metrics snapshots.
//!
//! "What happened right before the slow query?" needs more than the
//! current counter values: it needs the recent *trajectory*. The
//! [`MetricsHistory`] keeps the last N [`MetricsSnapshot`]s, sampled at
//! a configurable minimum interval from hooks the engine already passes
//! through (statement completion), so no background thread is needed.
//! Each retained point carries a monotone sequence number and its age is
//! reported relative to "now" at read time.

use crate::metrics::MetricsSnapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Poison-ignoring lock (same convention as the flight-recorder ring).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One retained sample: a whole-engine snapshot plus when it was taken.
#[derive(Clone, Debug)]
pub struct HistoryPoint {
    /// Monotone sample number (starts at 1, never reused).
    pub seq: u64,
    /// When the sample was taken.
    pub at: Instant,
    /// The engine-wide snapshot at that moment.
    pub snapshot: MetricsSnapshot,
}

/// A fixed-capacity ring of timestamped metrics snapshots, oldest
/// evicted first. Capacity 0 disables recording (the off switch).
#[derive(Debug)]
pub struct MetricsHistory {
    capacity: usize,
    interval_ns: AtomicU64,
    buf: Mutex<VecDeque<HistoryPoint>>,
    seq: AtomicU64,
}

impl MetricsHistory {
    /// A history retaining at most `capacity` points, sampling at most
    /// once per `interval` (`Duration::ZERO` records on every hook).
    pub fn new(capacity: usize, interval: Duration) -> MetricsHistory {
        MetricsHistory {
            capacity,
            interval_ns: AtomicU64::new(interval.as_nanos().min(u64::MAX as u128) as u64),
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            seq: AtomicU64::new(0),
        }
    }

    /// Maximum number of points retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current minimum sampling interval.
    pub fn interval(&self) -> Duration {
        Duration::from_nanos(self.interval_ns.load(Ordering::Relaxed))
    }

    /// Sets the minimum sampling interval.
    pub fn set_interval(&self, interval: Duration) {
        self.interval_ns.store(interval.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Sampling hook: records a point iff the ring is enabled and at
    /// least the configured interval has passed since the last point.
    /// The snapshot closure only runs when a point is actually taken, so
    /// the common (rate-limited) path costs one lock and one `Instant`
    /// read. Returns whether a point was recorded.
    pub fn maybe_record(&self, snapshot: impl FnOnce() -> MetricsSnapshot) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let interval = Duration::from_nanos(self.interval_ns.load(Ordering::Relaxed));
        let now = Instant::now();
        let mut buf = lock(&self.buf);
        if let Some(last) = buf.back() {
            if now.duration_since(last.at) < interval {
                return false;
            }
        }
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        buf.push_back(HistoryPoint { seq, at: now, snapshot: snapshot() });
        true
    }

    /// The retained points, oldest first.
    pub fn recent(&self) -> Vec<HistoryPoint> {
        lock(&self.buf).iter().cloned().collect()
    }

    /// Points currently retained.
    pub fn len(&self) -> usize {
        lock(&self.buf).len()
    }

    /// Whether the ring holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets every retained point (sequence numbers keep advancing).
    pub fn clear(&self) {
        lock(&self.buf).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EngineMetrics;

    #[test]
    fn records_and_evicts_oldest() {
        let m = EngineMetrics::new();
        let h = MetricsHistory::new(3, Duration::ZERO);
        for i in 0..5u64 {
            m.queries.incr();
            assert!(h.maybe_record(|| m.snapshot()), "point {i} should record");
        }
        let points = h.recent();
        assert_eq!(points.len(), 3);
        let seqs: Vec<u64> = points.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "oldest evicted, sequence preserved");
        assert_eq!(points[2].snapshot.counter("queries"), 5);
    }

    #[test]
    fn interval_rate_limits() {
        let m = EngineMetrics::new();
        let h = MetricsHistory::new(8, Duration::from_secs(3600));
        assert!(h.maybe_record(|| m.snapshot()), "first point always records");
        assert!(!h.maybe_record(|| m.snapshot()), "second arrives inside the interval");
        assert_eq!(h.len(), 1);
        h.set_interval(Duration::ZERO);
        assert_eq!(h.interval(), Duration::ZERO);
        assert!(h.maybe_record(|| m.snapshot()));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_and_skips_snapshot_closure() {
        let h = MetricsHistory::new(0, Duration::ZERO);
        let recorded = h.maybe_record(|| panic!("snapshot closure must not run when disabled"));
        assert!(!recorded);
        assert!(h.is_empty());
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let m = EngineMetrics::new();
        let h = MetricsHistory::new(4, Duration::ZERO);
        h.maybe_record(|| m.snapshot());
        h.maybe_record(|| m.snapshot());
        h.clear();
        assert!(h.is_empty());
        h.maybe_record(|| m.snapshot());
        assert_eq!(h.recent()[0].seq, 3, "sequence numbers never reused");
    }
}
