//! Span-style per-query traces.
//!
//! A [`QueryTrace`] is the per-query view of the metrics registry: the
//! engine snapshots [`EngineMetrics`](crate::EngineMetrics) before and
//! after a statement and hands the delta here, together with the SQL
//! text and wall-clock total. The trace renders as `EXPLAIN ANALYZE`-
//! style text and serialises to JSON for the harness.

use crate::metrics::MetricsSnapshot;
use std::time::Duration;

/// Everything observed while executing one statement.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// The statement, verbatim.
    pub sql: String,
    /// Wall-clock execution time, including parse and plan.
    pub total: Duration,
    /// Rows in the final result set.
    pub rows: usize,
    /// Metrics delta attributable to this statement. Stage entries with
    /// zero samples are stages the query never entered.
    pub delta: MetricsSnapshot,
}

impl QueryTrace {
    /// Builds a trace from a before/after metrics delta.
    pub fn new(sql: &str, total: Duration, rows: usize, delta: MetricsSnapshot) -> Self {
        QueryTrace { sql: sql.to_string(), total, rows, delta }
    }

    /// Names of the stages this query actually passed through, in
    /// pipeline order — the golden-trace suite asserts on this.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.delta.stages.iter().filter(|(_, h)| h.count > 0).map(|(s, _)| s.name()).collect()
    }

    /// Total self-time recorded for a stage, zero if never entered.
    pub fn stage_ns(&self, name: &str) -> u64 {
        self.delta.stages.iter().find(|(s, _)| s.name() == name).map(|(_, h)| h.sum).unwrap_or(0)
    }

    /// Shorthand for a counter in the delta.
    pub fn counter(&self, name: &str) -> u64 {
        self.delta.counter(name)
    }

    /// `EXPLAIN ANALYZE`-style rendering: one line per stage the query
    /// entered, then each non-zero counter.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query: {}\ntotal: {:.3} ms, rows: {}\n",
            self.sql,
            self.total.as_secs_f64() * 1e3,
            self.rows
        ));
        for (stage, h) in &self.delta.stages {
            if h.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  stage {:<12} {:>10.3} ms  ({} sample{})\n",
                stage.name(),
                h.sum as f64 / 1e6,
                h.count,
                if h.count == 1 { "" } else { "s" }
            ));
        }
        // Index probe stats get a dedicated summary line so the SQL
        // surface (EXPLAIN ANALYZE) exposes the same detail as the
        // ProbeStats API: how many probes ran, how much of the tree they
        // touched, and how many candidates survived the filter step.
        let probes = self.counter("index_probes");
        if probes > 0 {
            out.push_str(&format!(
                "  index probes: {probes} ({} nodes visited, {} candidates)\n",
                self.counter("index_nodes_visited"),
                self.counter("index_candidates")
            ));
        }
        // Vectorized-filter stats: how much of the refine input the
        // branch-free envelope prefilter decided outright, and how many
        // selection-vector entries went on to exact refinement.
        let rejects = self.counter("prefilter_rejects");
        let survivors = self.counter("selvec_survivors");
        if rejects + survivors > 0 {
            out.push_str(&format!(
                "  prefilter: {rejects} of {} decided by MBR ({:.1}% reject rate), {survivors} refined\n",
                rejects + survivors,
                100.0 * rejects as f64 / (rejects + survivors) as f64
            ));
        }
        // Prepared-geometry stats mirror the index-probe summary: cache
        // effectiveness plus how many refine decisions short-circuited
        // before a full DE-9IM matrix.
        let prep_hits = self.counter("prepared_cache_hits");
        let prep_misses = self.counter("prepared_cache_misses");
        if prep_hits + prep_misses > 0 {
            out.push_str(&format!(
                "  prepared cache: {prep_hits} hits / {prep_misses} misses ({:.1}% hit rate), {} short-circuits\n",
                100.0 * prep_hits as f64 / (prep_hits + prep_misses) as f64,
                self.counter("refine_short_circuits")
            ));
        }
        for (name, v) in &self.delta.counters {
            if *v > 0 {
                out.push_str(&format!("  counter {:<20} {v}\n", name));
            }
        }
        if self.delta.morsel_wait_ns.count > 0 {
            out.push_str(&format!(
                "  morsel wait: {} claims, mean {:.3} ms, max {:.3} ms\n",
                self.delta.morsel_wait_ns.count,
                self.delta.morsel_wait_ns.mean() as f64 / 1e6,
                self.delta.morsel_wait_ns.max as f64 / 1e6
            ));
        }
        // Group-commit stats for DML: how many fsync batches the
        // statement's commits rode, the mean batch size, and the
        // commit-wait distribution (quantiles are log2-bucket upper
        // bounds, like every histogram in this crate).
        let batches = self.counter("group_commit_batches");
        if batches > 0 {
            let size = self.counter("group_commit_size");
            let wait = &self.delta.commit_wait_us;
            out.push_str(&format!(
                "  group commit: {batches} batch{}, mean size {:.1}, commit wait p50 {} us / p99 {} us\n",
                if batches == 1 { "" } else { "es" },
                size as f64 / batches as f64,
                wait.quantile(0.5),
                wait.quantile(0.99)
            ));
        }
        out
    }

    /// JSON form: SQL, totals, and the full metrics delta.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sql\":{},\"total_ns\":{},\"rows\":{},\"delta\":{}}}",
            json_string(&self.sql),
            self.total.as_nanos(),
            self.rows,
            self.delta.to_json()
        )
    }
}

/// Minimal JSON string escaping (the workspace is zero-dependency).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EngineMetrics, Stage};

    fn sample_trace() -> QueryTrace {
        let m = EngineMetrics::new();
        let before = m.snapshot();
        m.queries.incr();
        m.index_probes.incr();
        m.index_candidates.add(10);
        m.refine_candidates.add(10);
        m.refine_hits.add(4);
        m.record_stage(Stage::Parse, Duration::from_nanos(10_000));
        m.record_stage(Stage::Refine, Duration::from_nanos(250_000));
        QueryTrace::new("SELECT 1", Duration::from_millis(1), 4, m.snapshot().delta_since(&before))
    }

    #[test]
    fn stage_names_in_pipeline_order() {
        let t = sample_trace();
        assert_eq!(t.stage_names(), vec!["parse", "refine"]);
        assert_eq!(t.stage_ns("refine"), 250_000);
        assert_eq!(t.stage_ns("materialize"), 0);
    }

    #[test]
    fn render_mentions_stages_and_counters() {
        let t = sample_trace();
        let text = t.render();
        assert!(text.contains("stage parse"));
        assert!(text.contains("stage refine"));
        assert!(text.contains("counter index_probes"));
        assert!(text.contains("index probes: 1 (0 nodes visited, 10 candidates)"), "{text}");
        assert!(text.contains("rows: 4"));
    }

    #[test]
    fn render_includes_group_commit_stats_for_dml() {
        let m = EngineMetrics::new();
        let before = m.snapshot();
        m.queries.incr();
        m.group_commit_batches.incr();
        m.group_commit_size.add(3);
        m.commit_wait_us.record(120);
        let t = QueryTrace::new(
            "INSERT INTO t VALUES (1)",
            Duration::from_millis(1),
            0,
            m.snapshot().delta_since(&before),
        );
        let text = t.render();
        assert!(text.contains("group commit: 1 batch, mean size 3.0"), "{text}");
        assert!(text.contains("commit wait p50"), "{text}");
        assert!(text.contains("/ p99"), "{text}");
        // Read-only statements (no commits) keep the line out entirely.
        let quiet = sample_trace().render();
        assert!(!quiet.contains("group commit:"), "{quiet}");
    }

    #[test]
    fn json_escapes_sql() {
        let m = EngineMetrics::new();
        let t = QueryTrace::new(
            "SELECT \"x\"\nFROM t",
            Duration::ZERO,
            0,
            m.snapshot().delta_since(&m.snapshot()),
        );
        let json = t.to_json();
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\\n"));
    }
}
