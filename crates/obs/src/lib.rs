//! Query observability for the Jackpine engine: lock-cheap counters and
//! histograms, an engine-wide metrics registry, and per-query traces.
//!
//! The crate is deliberately dependency-free and engine-agnostic: it
//! knows about *stages* and *counters*, not about SQL or geometry, so it
//! sits below every other crate in the workspace. Recording costs one
//! relaxed atomic op per event (sharded to avoid cache-line contention),
//! which keeps always-on metrics under the 2% overhead budget documented
//! in DESIGN.md.
//!
//! The surfaces, bottom-up:
//!
//! * [`Counter`] — sharded atomic event counter.
//! * [`Histogram`] / [`HistogramSnapshot`] — fixed log2-bucket latency
//!   histogram.
//! * [`EngineMetrics`] / [`MetricsSnapshot`] — the named registry every
//!   subsystem records into, with canonical counter ordering, snapshot
//!   deltas, and a split between deterministic and scheduling-dependent
//!   counters that the test harness relies on.
//! * [`QueryTrace`] — per-query view (stage timings + counter delta),
//!   rendered as `EXPLAIN ANALYZE`-style text or JSON.

#![forbid(unsafe_code)]

mod counter;
mod histogram;
mod metrics;
mod trace;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{
    EngineMetrics, MetricsSnapshot, Stage, DETERMINISTIC_COUNTERS, SCHEDULING_COUNTERS,
};
pub use trace::QueryTrace;
