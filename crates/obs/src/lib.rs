//! Query observability for the Jackpine engine: lock-cheap counters and
//! histograms, an engine-wide metrics registry, and per-query traces.
//!
//! The crate is deliberately dependency-free and engine-agnostic: it
//! knows about *stages* and *counters*, not about SQL or geometry, so it
//! sits below every other crate in the workspace. Recording costs one
//! relaxed atomic op per event (sharded to avoid cache-line contention),
//! which keeps always-on metrics under the 2% overhead budget documented
//! in DESIGN.md.
//!
//! The surfaces, bottom-up:
//!
//! * [`Counter`] — sharded atomic event counter.
//! * [`Histogram`] / [`HistogramSnapshot`] — fixed log2-bucket latency
//!   histogram.
//! * [`EngineMetrics`] / [`MetricsSnapshot`] — the named registry every
//!   subsystem records into, with canonical counter ordering, snapshot
//!   deltas, and a split between deterministic and scheduling-dependent
//!   counters that the test harness relies on.
//! * [`QueryTrace`] — per-query view (stage timings + counter delta),
//!   rendered as `EXPLAIN ANALYZE`-style text or JSON.
//! * [`FlightRecorder`] / [`SlowQueryLog`] — the always-on retrospective
//!   ring of completed traces and its threshold-gated slow-query view.
//! * [`QueryStatsTable`] / [`FingerprintStats`] — per-fingerprint
//!   rolling statistics (`pg_stat_statements`-style), keyed by the
//!   stable [`digest`] of a normalized statement.
//! * [`Gauge`] / [`MetricsHistory`] — point-in-time levels (pinned
//!   snapshots, vacuum backlog) and a retrospective ring of whole-engine
//!   snapshots sampled at a configurable interval.
//! * [`chrome_trace_json`] — Chrome trace-event (Perfetto-loadable)
//!   export of a trace sequence.
//! * [`prometheus_text`] / [`lint_prometheus_text`] — `/metrics`-style
//!   text exposition of a snapshot (counters, gauges, log2 histograms as
//!   cumulative `_bucket` series) and the strict lint the CI gate runs
//!   over it.

#![forbid(unsafe_code)]

mod counter;
mod export;
mod fingerprint;
mod gauge;
mod histogram;
mod history;
mod metrics;
mod ring;
mod trace;

pub use counter::Counter;
pub use export::{chrome_trace_json, lint_prometheus_text, prometheus_text};
pub use fingerprint::{digest, FingerprintStats, QueryStatsTable};
pub use gauge::Gauge;
pub use histogram::{bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use history::{HistoryPoint, MetricsHistory};
pub use metrics::{
    EngineMetrics, MetricsSnapshot, Stage, TxnSite, DETERMINISTIC_COUNTERS, GAUGES,
    SCHEDULING_COUNTERS, WAIT_HISTOGRAMS,
};
pub use ring::{FlightRecorder, SlowQueryLog};
pub use trace::QueryTrace;
