//! Query observability for the Jackpine engine: lock-cheap counters and
//! histograms, an engine-wide metrics registry, and per-query traces.
//!
//! The crate is deliberately dependency-free and engine-agnostic: it
//! knows about *stages* and *counters*, not about SQL or geometry, so it
//! sits below every other crate in the workspace. Recording costs one
//! relaxed atomic op per event (sharded to avoid cache-line contention),
//! which keeps always-on metrics under the 2% overhead budget documented
//! in DESIGN.md.
//!
//! The surfaces, bottom-up:
//!
//! * [`Counter`] — sharded atomic event counter.
//! * [`Histogram`] / [`HistogramSnapshot`] — fixed log2-bucket latency
//!   histogram.
//! * [`EngineMetrics`] / [`MetricsSnapshot`] — the named registry every
//!   subsystem records into, with canonical counter ordering, snapshot
//!   deltas, and a split between deterministic and scheduling-dependent
//!   counters that the test harness relies on.
//! * [`QueryTrace`] — per-query view (stage timings + counter delta),
//!   rendered as `EXPLAIN ANALYZE`-style text or JSON.
//! * [`FlightRecorder`] / [`SlowQueryLog`] — the always-on retrospective
//!   ring of completed traces and its threshold-gated slow-query view.
//! * [`QueryStatsTable`] / [`FingerprintStats`] — per-fingerprint
//!   rolling statistics (`pg_stat_statements`-style), keyed by the
//!   stable [`digest`] of a normalized statement.
//! * [`chrome_trace_json`] — Chrome trace-event (Perfetto-loadable)
//!   export of a trace sequence.

#![forbid(unsafe_code)]

mod counter;
mod export;
mod fingerprint;
mod histogram;
mod metrics;
mod ring;
mod trace;

pub use counter::Counter;
pub use export::chrome_trace_json;
pub use fingerprint::{digest, FingerprintStats, QueryStatsTable};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{
    EngineMetrics, MetricsSnapshot, Stage, DETERMINISTIC_COUNTERS, SCHEDULING_COUNTERS,
};
pub use ring::{FlightRecorder, SlowQueryLog};
pub use trace::QueryTrace;
