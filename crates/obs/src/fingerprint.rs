//! Per-fingerprint rolling query statistics.
//!
//! A *fingerprint* is a stable 64-bit digest of a normalized statement
//! (literals replaced by `?`, case and whitespace folded — the
//! normalization itself lives next to the tokenizer, in
//! `jackpine-sqlmini`; this crate only hashes and aggregates). The
//! [`QueryStatsTable`] keeps rolling statistics per fingerprint — call
//! count, error count, cumulative rows and a latency histogram — in a
//! bounded top-K table, the way `pg_stat_statements` does.

use crate::histogram::HistogramSnapshot;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// FNV-1a 64-bit digest of a normalized statement. Stable across runs
/// and platforms; pinned by the fingerprint property suite.
pub fn digest(normalized: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in normalized.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rolling statistics for one statement shape.
#[derive(Clone, Debug)]
pub struct FingerprintStats {
    /// The fingerprint digest ([`digest`] of `normalized`).
    pub digest: u64,
    /// The normalized statement text (literals as `?`), truncated to
    /// [`QueryStatsTable::NORMALIZED_TEXT_CAP`] bytes.
    pub normalized: String,
    /// Successful executions.
    pub count: u64,
    /// Failed executions (parse, plan or runtime errors).
    pub errors: u64,
    /// Cumulative rows returned by successful executions.
    pub rows: u64,
    /// Latency histogram over successful executions, nanoseconds.
    pub latency_ns: HistogramSnapshot,
}

impl FingerprintStats {
    fn new(digest: u64, normalized: &str) -> FingerprintStats {
        let mut text = normalized;
        if text.len() > QueryStatsTable::NORMALIZED_TEXT_CAP {
            let mut cut = QueryStatsTable::NORMALIZED_TEXT_CAP;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text = &text[..cut];
        }
        FingerprintStats {
            digest,
            normalized: text.to_string(),
            count: 0,
            errors: 0,
            rows: 0,
            latency_ns: HistogramSnapshot::empty(),
        }
    }

    /// Total executions, successful or not.
    pub fn executions(&self) -> u64 {
        self.count + self.errors
    }

    /// Mean successful-execution latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.latency_ns.mean() as f64 / 1e6
    }

    /// p95 latency in milliseconds (bucket upper bound, ≤ 2× true).
    pub fn p95_ms(&self) -> f64 {
        self.latency_ns.quantile(0.95) as f64 / 1e6
    }
}

/// A bounded map from fingerprint digest to rolling stats. When full, a
/// new fingerprint evicts the least-executed existing entry, so the
/// table converges on the top-K statement shapes by execution count
/// (one-off shapes churn through the cold end; heavy hitters stay).
#[derive(Debug)]
pub struct QueryStatsTable {
    capacity: usize,
    inner: Mutex<HashMap<u64, FingerprintStats>>,
}

impl QueryStatsTable {
    /// Longest normalized text retained per fingerprint.
    pub const NORMALIZED_TEXT_CAP: usize = 512;

    /// A table tracking at most `capacity` fingerprints.
    pub fn new(capacity: usize) -> QueryStatsTable {
        QueryStatsTable { capacity, inner: Mutex::new(HashMap::new()) }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, FingerprintStats>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one execution of the statement shape `normalized` (whose
    /// digest the caller already computed, typically once per statement).
    pub fn record(&self, digest: u64, normalized: &str, total: Duration, rows: u64, error: bool) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.lock();
        if !map.contains_key(&digest) && map.len() >= self.capacity {
            // Evict the least-executed entry (ties broken by digest so
            // eviction is deterministic).
            if let Some(&coldest) =
                map.iter().min_by_key(|(d, s)| (s.executions(), **d)).map(|(d, _)| d)
            {
                map.remove(&coldest);
            }
        }
        let entry = map.entry(digest).or_insert_with(|| FingerprintStats::new(digest, normalized));
        if error {
            entry.errors += 1;
        } else {
            entry.count += 1;
            entry.rows += rows;
            entry.latency_ns.record(total.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Distinct fingerprints currently tracked.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no fingerprints are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The top `k` fingerprints by execution count (ties broken by
    /// digest for deterministic output).
    pub fn top(&self, k: usize) -> Vec<FingerprintStats> {
        let mut all: Vec<FingerprintStats> = self.lock().values().cloned().collect();
        all.sort_by(|a, b| {
            b.executions().cmp(&a.executions()).then_with(|| a.digest.cmp(&b.digest))
        });
        all.truncate(k);
        all
    }

    /// Forgets every fingerprint.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_pinned() {
        // Frozen: changing the hash silently invalidates stored
        // fingerprints, so the constant is asserted verbatim.
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("select * from t where id = ?"), digest("select * from t where id = ?"));
        assert_ne!(digest("select a from t"), digest("select b from t"));
    }

    #[test]
    fn records_and_ranks() {
        let t = QueryStatsTable::new(16);
        for i in 0..5 {
            t.record(1, "select ?", Duration::from_millis(2), 10, false);
            if i < 2 {
                t.record(2, "insert ?", Duration::from_millis(1), 1, false);
            }
        }
        t.record(2, "insert ?", Duration::from_millis(1), 0, true);
        let top = t.top(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].digest, 1);
        assert_eq!(top[0].count, 5);
        assert_eq!(top[0].rows, 50);
        assert_eq!(top[1].errors, 1);
        assert_eq!(top[1].executions(), 3);
        assert!(top[0].mean_ms() > 0.0);
    }

    #[test]
    fn full_table_evicts_least_executed() {
        let t = QueryStatsTable::new(2);
        t.record(1, "hot", Duration::ZERO, 0, false);
        t.record(1, "hot", Duration::ZERO, 0, false);
        t.record(2, "warm", Duration::ZERO, 0, false);
        t.record(3, "new", Duration::ZERO, 0, false); // evicts digest 2
        assert_eq!(t.len(), 2);
        let digests: Vec<u64> = t.top(10).iter().map(|s| s.digest).collect();
        assert!(digests.contains(&1) && digests.contains(&3), "got {digests:?}");
    }

    #[test]
    fn long_normalized_text_truncated() {
        let t = QueryStatsTable::new(4);
        let long = "x".repeat(2 * QueryStatsTable::NORMALIZED_TEXT_CAP);
        t.record(9, &long, Duration::ZERO, 0, false);
        assert_eq!(t.top(1)[0].normalized.len(), QueryStatsTable::NORMALIZED_TEXT_CAP);
    }
}
