//! Timed benches mirroring F4: one session of each macro scenario.

use jackpine_bench::timer::bench;
use jackpine_bench::{all_engines, dataset};
use jackpine_core::macrobench::{all_scenarios, run_scenario, ScenarioConfig};

fn main() {
    let data = dataset(0.03);
    let engines = all_engines(&data);
    let scenarios = all_scenarios(&data, &ScenarioConfig { seed: 99, sessions: 1 });

    for s in &scenarios {
        for e in &engines {
            use jackpine_engine::SpatialConnector;
            bench("macro_scenarios", &format!("{}/{}", s.id, e.name()), 10, || {
                run_scenario(e, s).expect("scenario runs");
            });
        }
    }
}
