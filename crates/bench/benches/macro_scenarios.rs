//! Criterion benches mirroring F4: one session of each macro scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jackpine_bench::{all_engines, dataset};
use jackpine_core::macrobench::{all_scenarios, run_scenario, ScenarioConfig};
use jackpine_engine::SpatialConnector;

fn bench_macro(c: &mut Criterion) {
    let data = dataset(0.03);
    let engines = all_engines(&data);
    let scenarios = all_scenarios(&data, &ScenarioConfig { seed: 99, sessions: 1 });

    let mut group = c.benchmark_group("macro_scenarios");
    group.sample_size(10);
    for s in &scenarios {
        for e in &engines {
            group.bench_with_input(BenchmarkId::new(s.id, e.name()), s, |b, s| {
                b.iter(|| run_scenario(e, s).expect("scenario runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_macro);
criterion_main!(benches);
