//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * R\*-tree forced reinsert on/off (build cost vs. query quality),
//! * STR bulk load vs. one-at-a-time insertion (serial and parallel),
//! * grid index resolution sweep,
//! * buffer arc fidelity (`quad_segs`).

use jackpine_bench::dataset;
use jackpine_bench::timer::bench;
use jackpine_geom::algorithms::buffer::buffer_with_segments;
use jackpine_geom::{Envelope, Geometry};
use jackpine_index::{GridIndex, RTree, RTreeConfig};

fn items(scale: f64) -> Vec<(Envelope, usize)> {
    dataset(scale).roads.iter().enumerate().map(|(i, r)| (r.geom.envelope(), i)).collect()
}

fn query_windows(extent: Envelope) -> Vec<Envelope> {
    let mut out = Vec::new();
    let (w, h) = (extent.width() * 0.05, extent.height() * 0.05);
    for i in 0..10 {
        let fx = i as f64 / 10.0;
        out.push(Envelope::new(
            extent.min_x + fx * extent.width(),
            extent.min_y + fx * extent.height(),
            extent.min_x + fx * extent.width() + w,
            extent.min_y + fx * extent.height() + h,
        ));
    }
    out
}

fn bench_rtree_build(items: &[(Envelope, usize)]) {
    bench("ablation_rtree_build", "insert_forced_reinsert", 10, || {
        let mut t: RTree<usize> = RTree::new(RTreeConfig::default());
        for (e, v) in items {
            t.insert(*e, *v);
        }
    });
    bench("ablation_rtree_build", "insert_no_reinsert", 10, || {
        let mut t: RTree<usize> =
            RTree::new(RTreeConfig { forced_reinsert: false, ..RTreeConfig::default() });
        for (e, v) in items {
            t.insert(*e, *v);
        }
    });
    bench("ablation_rtree_build", "str_bulk_load", 10, || {
        RTree::bulk_load(RTreeConfig::default(), items.to_vec());
    });
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    bench("ablation_rtree_build", &format!("str_bulk_load_w{workers}"), 10, || {
        RTree::bulk_load_parallel(RTreeConfig::default(), items.to_vec(), workers);
    });
}

fn bench_rtree_query_quality(items: &[(Envelope, usize)]) {
    let extent = jackpine_datagen::EXTENT;
    let windows = query_windows(extent);

    let mut incremental: RTree<usize> = RTree::new(RTreeConfig::default());
    for (e, v) in items {
        incremental.insert(*e, *v);
    }
    let no_reinsert = {
        let mut t: RTree<usize> =
            RTree::new(RTreeConfig { forced_reinsert: false, ..RTreeConfig::default() });
        for (e, v) in items {
            t.insert(*e, *v);
        }
        t
    };
    let bulk = RTree::bulk_load(RTreeConfig::default(), items.to_vec());

    for (name, tree) in
        [("reinsert", &incremental), ("no_reinsert", &no_reinsert), ("str_bulk", &bulk)]
    {
        bench("ablation_rtree_query", &format!("window/{name}"), 20, || {
            let mut n = 0usize;
            for w in &windows {
                n += tree.window(w).len();
            }
            std::hint::black_box(n);
        });
    }
}

fn bench_grid_resolution(items: &[(Envelope, usize)]) {
    let extent = jackpine_datagen::EXTENT.expanded_by(0.01);
    let windows = query_windows(extent);
    for cells in [8usize, 32, 128] {
        let mut g: GridIndex<usize> = GridIndex::new(extent, cells, cells);
        for (e, v) in items {
            g.insert(*e, *v);
        }
        bench("ablation_grid_resolution", &format!("window/{cells}"), 20, || {
            let mut n = 0usize;
            for w in &windows {
                n += g.window(w).len();
            }
            std::hint::black_box(n);
        });
    }
}

fn bench_buffer_quad_segs() {
    let data = dataset(0.03);
    let road = Geometry::LineString(data.roads[0].geom.clone());
    for quad in [2usize, 8, 16] {
        bench("ablation_buffer_fidelity", &format!("quad_segs/{quad}"), 10, || {
            buffer_with_segments(&road, 0.01, quad).expect("buffer runs");
        });
    }
}

fn main() {
    let items = items(0.03);
    bench_rtree_build(&items);
    bench_rtree_query_quality(&items);
    bench_grid_resolution(&items);
    bench_buffer_quad_segs();
}
