//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * R\*-tree forced reinsert on/off (build cost vs. query quality),
//! * STR bulk load vs. one-at-a-time insertion,
//! * grid index resolution sweep,
//! * buffer arc fidelity (`quad_segs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jackpine_bench::dataset;
use jackpine_geom::algorithms::buffer::buffer_with_segments;
use jackpine_geom::{Envelope, Geometry};
use jackpine_index::{GridIndex, RTree, RTreeConfig};

fn items(scale: f64) -> Vec<(Envelope, usize)> {
    dataset(scale)
        .roads
        .iter()
        .enumerate()
        .map(|(i, r)| (r.geom.envelope(), i))
        .collect()
}

fn query_windows(extent: Envelope) -> Vec<Envelope> {
    let mut out = Vec::new();
    let (w, h) = (extent.width() * 0.05, extent.height() * 0.05);
    for i in 0..10 {
        let fx = i as f64 / 10.0;
        out.push(Envelope::new(
            extent.min_x + fx * extent.width(),
            extent.min_y + fx * extent.height(),
            extent.min_x + fx * extent.width() + w,
            extent.min_y + fx * extent.height() + h,
        ));
    }
    out
}

fn bench_rtree_build(c: &mut Criterion) {
    let items = items(0.03);
    let mut group = c.benchmark_group("ablation_rtree_build");
    group.sample_size(10);
    group.bench_function("insert_forced_reinsert", |b| {
        b.iter(|| {
            let mut t: RTree<usize> = RTree::new(RTreeConfig::default());
            for (e, v) in &items {
                t.insert(*e, *v);
            }
            t
        })
    });
    group.bench_function("insert_no_reinsert", |b| {
        b.iter(|| {
            let mut t: RTree<usize> =
                RTree::new(RTreeConfig { forced_reinsert: false, ..RTreeConfig::default() });
            for (e, v) in &items {
                t.insert(*e, *v);
            }
            t
        })
    });
    group.bench_function("str_bulk_load", |b| {
        b.iter(|| RTree::bulk_load(RTreeConfig::default(), items.clone()))
    });
    group.finish();
}

fn bench_rtree_query_quality(c: &mut Criterion) {
    let items = items(0.03);
    let extent = jackpine_datagen::EXTENT;
    let windows = query_windows(extent);

    let mut incremental: RTree<usize> = RTree::new(RTreeConfig::default());
    for (e, v) in &items {
        incremental.insert(*e, *v);
    }
    let no_reinsert = {
        let mut t: RTree<usize> =
            RTree::new(RTreeConfig { forced_reinsert: false, ..RTreeConfig::default() });
        for (e, v) in &items {
            t.insert(*e, *v);
        }
        t
    };
    let bulk = RTree::bulk_load(RTreeConfig::default(), items.clone());

    let mut group = c.benchmark_group("ablation_rtree_query");
    group.sample_size(20);
    for (name, tree) in
        [("reinsert", &incremental), ("no_reinsert", &no_reinsert), ("str_bulk", &bulk)]
    {
        group.bench_with_input(BenchmarkId::new("window", name), tree, |b, t| {
            b.iter(|| {
                let mut n = 0usize;
                for w in &windows {
                    n += t.window(w).len();
                }
                n
            })
        });
    }
    group.finish();
}

fn bench_grid_resolution(c: &mut Criterion) {
    let items = items(0.03);
    let extent = jackpine_datagen::EXTENT.expanded_by(0.01);
    let windows = query_windows(extent);
    let mut group = c.benchmark_group("ablation_grid_resolution");
    group.sample_size(20);
    for cells in [8usize, 32, 128] {
        let mut g: GridIndex<usize> = GridIndex::new(extent, cells, cells);
        for (e, v) in &items {
            g.insert(*e, *v);
        }
        group.bench_with_input(BenchmarkId::new("window", cells), &g, |b, g| {
            b.iter(|| {
                let mut n = 0usize;
                for w in &windows {
                    n += g.window(w).len();
                }
                n
            })
        });
    }
    group.finish();
}

fn bench_buffer_quad_segs(c: &mut Criterion) {
    let data = dataset(0.03);
    let road = Geometry::LineString(data.roads[0].geom.clone());
    let mut group = c.benchmark_group("ablation_buffer_fidelity");
    group.sample_size(10);
    for quad in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("quad_segs", quad), &quad, |b, &q| {
            b.iter(|| buffer_with_segments(&road, 0.01, q).expect("buffer runs"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rtree_build,
    bench_rtree_query_quality,
    bench_grid_resolution,
    bench_buffer_quad_segs
);
criterion_main!(benches);
