//! Criterion benches mirroring F6: fixed queries at growing dataset
//! scales (indexed window query, indexed spatial join, full analysis
//! scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jackpine_bench::{engine_with_data, DEFAULT_SEED};
use jackpine_core::micro::{analysis_suite, topo_suite};
use jackpine_datagen::{TigerConfig, TigerDataset};
use jackpine_engine::EngineProfile;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for scale in [0.02, 0.04, 0.08] {
        let data = TigerDataset::generate(&TigerConfig { seed: DEFAULT_SEED, scale });
        let rows = data.total_rows();
        let db = engine_with_data(EngineProfile::ExactRtree, &data);
        let t01 = topo_suite(&data).into_iter().find(|q| q.id == "T01").expect("T01");
        let a04 = analysis_suite(&data).into_iter().find(|q| q.id == "A04").expect("A04");
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("bbox", rows), &t01.sql, |b, sql| {
            b.iter(|| db.execute(sql).expect("query runs"))
        });
        group.bench_with_input(BenchmarkId::new("area_scan", rows), &a04.sql, |b, sql| {
            b.iter(|| db.execute(sql).expect("query runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
