//! Timed benches mirroring F6: fixed queries at growing dataset
//! scales (indexed window query, full analysis scan).

use jackpine_bench::timer::bench;
use jackpine_bench::{engine_with_data, DEFAULT_SEED};
use jackpine_core::micro::{analysis_suite, topo_suite};
use jackpine_datagen::{TigerConfig, TigerDataset};
use jackpine_engine::EngineProfile;

fn main() {
    for scale in [0.02, 0.04, 0.08] {
        let data = TigerDataset::generate(&TigerConfig { seed: DEFAULT_SEED, scale });
        let rows = data.total_rows();
        let db = engine_with_data(EngineProfile::ExactRtree, &data);
        let t01 = topo_suite(&data).into_iter().find(|q| q.id == "T01").expect("T01");
        let a04 = analysis_suite(&data).into_iter().find(|q| q.id == "A04").expect("A04");
        bench("scalability", &format!("bbox/{rows}rows"), 10, || {
            db.execute(&t01.sql).expect("query runs");
        });
        bench("scalability", &format!("area_scan/{rows}rows"), 10, || {
            db.execute(&a04.sql).expect("query runs");
        });
    }
}
