//! Timed benches mirroring F5: the same query with the spatial index
//! enabled vs. the sequential refine-everything plan.

use jackpine_bench::timer::bench;
use jackpine_bench::{dataset, engine_with_data};
use jackpine_core::micro::topo_suite;
use jackpine_engine::{EngineProfile, SpatialConnector};

fn main() {
    let data = dataset(0.03);
    let db = engine_with_data(EngineProfile::ExactRtree, &data);
    let suite = topo_suite(&data);
    let picks = ["T01", "T04", "T16"];

    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        for on in [true, false] {
            let label = if on { "indexed" } else { "seqscan" };
            db.set_use_spatial_index(on);
            bench("indexing", &format!("{}/{}", q.id, label), 10, || {
                db.execute(&q.sql).expect("query runs");
            });
        }
    }
    db.set_use_spatial_index(true);
}
