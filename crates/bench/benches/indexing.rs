//! Criterion benches mirroring F5: the same query with the spatial index
//! enabled vs. the sequential refine-everything plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jackpine_bench::{dataset, engine_with_data};
use jackpine_core::micro::topo_suite;
use jackpine_engine::EngineProfile;

fn bench_indexing(c: &mut Criterion) {
    let data = dataset(0.03);
    let db = engine_with_data(EngineProfile::ExactRtree, &data);
    let suite = topo_suite(&data);
    let picks = ["T01", "T04", "T16"];

    let mut group = c.benchmark_group("indexing");
    group.sample_size(10);
    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        for on in [true, false] {
            let label = if on { "indexed" } else { "seqscan" };
            group.bench_with_input(BenchmarkId::new(q.id, label), &q.sql, |b, sql| {
                db.set_use_spatial_index(on);
                b.iter(|| db.execute(sql).expect("query runs"));
            });
        }
    }
    db.set_use_spatial_index(true);
    group.finish();
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);
