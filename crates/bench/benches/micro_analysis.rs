//! Criterion benches mirroring F3: representative spatial-analysis micro
//! queries, on the profiles that support each function.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jackpine_bench::{all_engines, dataset};
use jackpine_core::micro::analysis_suite;
use jackpine_engine::SpatialConnector;

fn bench_analysis(c: &mut Criterion) {
    let data = dataset(0.03);
    let engines = all_engines(&data);
    let suite = analysis_suite(&data);
    let picks = ["A03", "A04", "A06", "A07", "A11"];

    let mut group = c.benchmark_group("micro_analysis");
    group.sample_size(10);
    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        for e in &engines {
            // Skip unsupported function/profile combinations up front.
            if e.execute(&q.sql).is_err() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(q.id, e.name()),
                &q.sql,
                |b, sql| b.iter(|| e.execute(sql).expect("query runs")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
