//! Timed benches mirroring F3: representative spatial-analysis micro
//! queries, on the profiles that support each function.

use jackpine_bench::timer::bench;
use jackpine_bench::{all_engines, dataset};
use jackpine_core::micro::analysis_suite;
use jackpine_engine::SpatialConnector;

fn main() {
    let data = dataset(0.03);
    let engines = all_engines(&data);
    let suite = analysis_suite(&data);
    let picks = ["A03", "A04", "A06", "A07", "A11"];

    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        for e in &engines {
            // Skip unsupported function/profile combinations up front.
            if e.execute(&q.sql).is_err() {
                continue;
            }
            bench("micro_analysis", &format!("{}/{}", q.id, e.name()), 10, || {
                e.execute(&q.sql).expect("query runs");
            });
        }
    }
}
