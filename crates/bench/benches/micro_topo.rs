//! Timed benches mirroring F1: representative topological-relation
//! micro queries on all three engine profiles.

use jackpine_bench::timer::bench;
use jackpine_bench::{all_engines, dataset};
use jackpine_core::micro::topo_suite;
use jackpine_engine::SpatialConnector;

fn main() {
    let data = dataset(0.03);
    let engines = all_engines(&data);
    let suite = topo_suite(&data);
    let picks = ["T01", "T04", "T05", "T09", "T16"];

    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        for e in &engines {
            bench("micro_topo", &format!("{}/{}", q.id, e.name()), 10, || {
                e.execute(&q.sql).expect("query runs");
            });
        }
    }
}
