//! Criterion benches mirroring F1: representative topological-relation
//! micro queries on all three engine profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jackpine_bench::{all_engines, dataset};
use jackpine_core::micro::topo_suite;
use jackpine_engine::SpatialConnector;

fn bench_topo(c: &mut Criterion) {
    let data = dataset(0.03);
    let engines = all_engines(&data);
    let suite = topo_suite(&data);
    let picks = ["T01", "T04", "T05", "T09", "T16"];

    let mut group = c.benchmark_group("micro_topo");
    group.sample_size(10);
    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        for e in &engines {
            group.bench_with_input(
                BenchmarkId::new(q.id, e.name()),
                &q.sql,
                |b, sql| b.iter(|| e.execute(sql).expect("query runs")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topo);
criterion_main!(benches);
