//! # jackpine-bench
//!
//! The Jackpine benchmark harness: shared setup helpers used by the
//! timed benches ([`timer`]) and by the `repro` binary, which regenerates
//! every table and figure of the paper's evaluation (see DESIGN.md's
//! experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timer;

use jackpine_core::load_dataset;
use jackpine_datagen::{TigerConfig, TigerDataset};
use jackpine_engine::{EngineProfile, SpatialDb};
use std::sync::Arc;

/// Default dataset scale for interactive runs (keeps a full `repro -- all`
/// under a few minutes; raise with `--scale` for bigger runs).
pub const DEFAULT_SCALE: f64 = 0.05;

/// Default dataset seed.
pub const DEFAULT_SEED: u64 = 20110411; // the paper's publication date

/// Generates the dataset for a scale, with the fixed benchmark seed.
pub fn dataset(scale: f64) -> TigerDataset {
    TigerDataset::generate(&TigerConfig { seed: DEFAULT_SEED, scale })
}

/// Builds a loaded, indexed engine instance for one profile.
pub fn engine_with_data(profile: EngineProfile, data: &TigerDataset) -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(profile));
    load_dataset(&db, data).expect("benchmark dataset load must succeed");
    db
}

/// Builds all three profiles over the same dataset.
pub fn all_engines(data: &TigerDataset) -> Vec<Arc<SpatialDb>> {
    EngineProfile::ALL.iter().map(|p| engine_with_data(*p, data)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_engine::SpatialConnector;

    #[test]
    fn setup_produces_three_loaded_engines() {
        let data = dataset(0.02);
        let engines = all_engines(&data);
        assert_eq!(engines.len(), 3);
        for e in &engines {
            let r = e.execute("SELECT COUNT(*) FROM roads").unwrap();
            assert_eq!(
                r.scalar().unwrap().to_string(),
                data.roads.len().to_string(),
                "engine {}",
                e.name()
            );
        }
    }
}
