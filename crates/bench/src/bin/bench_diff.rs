//! `bench-diff` — the bench-regression comparator.
//!
//! ```text
//! bench-diff [--threshold PCT] <baseline.json> <new.json>
//! ```
//!
//! Loads two `BENCH_*.json` runs (schema v1 bare arrays or v2 versioned
//! objects), pairs entries by name, and prints one verdict line per
//! pair. A pair counts as a **regression** only when both sides carry
//! sample statistics, the Welch 95% confidence interval on the
//! difference of means excludes zero, *and* the relative slowdown
//! exceeds the threshold (default 5%). Pairs without variance data are
//! advisory: printed, never failing — which is what lets CI compare a
//! checked-in baseline from another machine without flakiness.
//!
//! Exit status: 0 when no regressions, 1 when at least one, 2 on usage
//! or parse errors (including unknown schema versions).

use jackpine_core::benchreport::{diff_runs, parse_bench_json, BenchRun};

/// Default minimum relative slowdown (percent) for a regression.
const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

fn usage() -> ! {
    eprintln!("usage: bench-diff [--threshold PCT] <baseline.json> <new.json>");
    std::process::exit(2)
}

fn load(path: &str) -> BenchRun {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        std::process::exit(2)
    });
    parse_bench_json(&text).unwrap_or_else(|e| {
        eprintln!("bench-diff: {path}: {e}");
        std::process::exit(2)
    })
}

fn main() {
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold needs a numeric percent");
                    std::process::exit(2)
                })
            }
            "--help" | "-h" => usage(),
            f if f.starts_with('-') => usage(),
            f => files.push(f.to_string()),
        }
    }
    let [base_path, new_path] = files.as_slice() else { usage() };

    let base = load(base_path);
    let new = load(new_path);
    println!(
        "baseline: {base_path} (schema v{}), new: {new_path} (schema v{}), threshold {threshold}%",
        base.schema_version, new.schema_version
    );
    let report = diff_runs(&base, &new, threshold);
    print!("{}", report.render());
    if report.regressions() > 0 {
        std::process::exit(1);
    }
}
