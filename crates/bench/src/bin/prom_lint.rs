//! `prom-lint` — strict lint for Prometheus text-exposition output.
//!
//! ```text
//! prom-lint <metrics.txt>...
//! prom-lint -            # read one exposition from stdin
//! ```
//!
//! Runs [`jackpine_obs::lint_prometheus_text`] over each input and
//! prints every problem found (missing `HELP`/`TYPE` metadata,
//! duplicate series, counters not ending in `_total`, malformed
//! histogram bucket ladders, ...). This is the tier-1 gate behind the
//! `repro --prom` surface: a malformed `/metrics` page fails the build
//! here instead of a scrape in production.
//!
//! Exit status: 0 when every input lints clean, 1 when any problem was
//! found, 2 on usage or I/O errors.

use std::io::Read;

fn usage() -> ! {
    eprintln!("usage: prom-lint <metrics.txt>... (or '-' for stdin)");
    std::process::exit(2)
}

fn main() {
    let inputs: Vec<String> = std::env::args().skip(1).collect();
    if inputs.is_empty() || inputs.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut problems = 0usize;
    for path in &inputs {
        let text = if path == "-" {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).unwrap_or_else(|e| {
                eprintln!("prom-lint: cannot read stdin: {e}");
                std::process::exit(2)
            });
            buf
        } else {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("prom-lint: cannot read {path}: {e}");
                std::process::exit(2)
            })
        };
        let name = if path == "-" { "<stdin>" } else { path.as_str() };
        let errors = jackpine_obs::lint_prometheus_text(&text);
        let samples = text.lines().filter(|l| !l.trim().is_empty() && !l.starts_with('#')).count();
        if errors.is_empty() {
            println!("{name}: clean ({samples} samples)");
        } else {
            for e in &errors {
                println!("{name}: {e}");
            }
            problems += errors.len();
        }
    }
    if problems > 0 {
        eprintln!("prom-lint: {problems} problem(s)");
        std::process::exit(1);
    }
}
