//! `repro` — regenerates every table and figure of the Jackpine
//! evaluation (see the experiment index in DESIGN.md).
//!
//! ```text
//! repro [--scale S] [--reps R] [--quick] [--sessions N] [--workers W]
//!       [--csv DIR] [--persist DIR] [--wal on|off] [--trace]
//!       [--metrics-json FILE] [--trace-export FILE] [--top-queries K]
//!       [--bench-out FILE] [--recorder on|off] [--prepared on|off]
//!       [--vectorized on|off] [--batch-size N] [--prom FILE]
//!       [--slow-ms N] [--pool-mb N] [--pool-policy clock|lru-k]
//!       [--cold] [--warm] <experiment>...
//! experiments: t1 t2 t3 f1..f8 all bench-json
//! ```
//!
//! `--workers 0` (the default) uses the machine's available parallelism;
//! `--workers 1` forces serial execution. The worker count in effect is
//! recorded under every report header.
//!
//! `--persist DIR` runs every engine with crash-safe durability attached:
//! an atomic snapshot plus write-ahead log under `DIR/<engine>/`, so the
//! scenario insert traffic exercises the WAL append path. `--wal off`
//! keeps the snapshot but detaches the log (snapshot-only durability).
//! Both knobs are recorded under every report header.
//!
//! `bench-json` times the spatial-join micros and the join-heavy macro
//! scenarios at `workers=1` vs. the configured worker count and writes
//! `BENCH_1.json` (github-action-benchmark `customSmallerIsBetter`
//! entries), checking that both settings return identical results.
//!
//! `--trace` prints an EXPLAIN ANALYZE-style trace (per-stage timings
//! plus engine counters) for every micro-benchmark query on the
//! exact-rtree engine. `--metrics-json FILE` writes each engine's final
//! metrics snapshot as one versioned JSON object keyed by engine name.
//!
//! `--trace-export FILE` runs the micro suites traced on the exact-rtree
//! engine and writes the traces as Chrome trace-event JSON (loadable in
//! `chrome://tracing` or Perfetto): one span per query with its stage
//! spans nested, and a separate lane marking morsel-parallel sections.
//!
//! `--top-queries K` prints the top K statement shapes by execution
//! count from the flight recorder's fingerprint table after the run.
//! `--recorder off` disables retrospective recording (flight recorder,
//! slow-query log, fingerprint stats) — the overhead-ablation switch.
//! `--prepared off` disables the prepared-geometry refine fast path
//! (monotone-chain indexes + per-table preparation cache) — the
//! ablation switch for the indexed DE-9IM kernels. `bench-json` always
//! measures both settings on its refine-heavy polygon-polygon entries.
//! `--vectorized off` disables the vectorized batch executor (columnar
//! MBR prefilter + selection-vector refine) and `--batch-size N` sets
//! its rows-per-batch (0 = executor default); `bench-json` always
//! measures the row path vs. the batch path plus a batch-size sweep on
//! its refine-heaviest micro. `--reps` defaults to 10 timed repetitions
//! after one warmup; `--quick` drops to a single repetition for smoke
//! runs (CI tier 1), where confidence intervals are not needed.
//! `--bench-out FILE` redirects the `bench-json` output file (default
//! `BENCH_1.json`).
//!
//! `--pool-mb N` bounds every engine's buffer pool at N MiB (rows page
//! out through pinned frames, R-tree leaves demand-load; 0 = unbounded,
//! the default) and `--pool-policy` picks the frame-replacement policy
//! (`clock` second-chance or `lru-k`). `bench-json` always adds a
//! cold/warm out-of-core section against a bounded pool: `--cold` drops
//! the pool between repetitions (every page faults back in from the
//! backing store, so the entries report honest cold-cache latency plus
//! the pool's miss/eviction deltas), `--warm` keeps it resident. Each
//! flag restricts the section to that mode; by default both run, and
//! cold/warm result sets are asserted identical.
//!
//! `--prom FILE` writes every engine's final metrics in the Prometheus
//! text-exposition format (one file, series labeled `engine="..."`) —
//! the scrape surface, lintable with the `prom-lint` binary. `--slow-ms
//! N` sets the slow-query log threshold to N milliseconds on every
//! engine before the run (0 retains every query), so `jp_slow_queries`
//! and the slow log capture at the chosen sensitivity.

use jackpine_bench::{all_engines, dataset, engine_with_data, DEFAULT_SCALE};
use jackpine_core::driver::{CacheMode, Driver};
use jackpine_core::features::feature_matrix;
use jackpine_core::macrobench::{
    all_scenarios, run_scenario, run_scenario_parallel, ScenarioConfig,
};
use jackpine_core::micro::{analysis_suite, topo_suite, BenchQuery};
use jackpine_core::report::{fmt_ms, fmt_qps, Table};
use jackpine_core::Stats;
use jackpine_datagen::{TigerConfig, TigerDataset};
use jackpine_engine::{DurabilityOptions, EngineProfile, SpatialConnector, SpatialDb};
use jackpine_storage::PAGE_SIZE;
use std::sync::Arc;

struct Options {
    scale: f64,
    reps: usize,
    sessions: usize,
    workers: usize,
    csv_dir: Option<String>,
    persist_dir: Option<String>,
    wal: bool,
    trace: bool,
    metrics_json: Option<String>,
    trace_export: Option<String>,
    top_queries: Option<usize>,
    bench_out: String,
    recorder: bool,
    prepared: bool,
    vectorized: bool,
    batch_size: usize,
    prom: Option<String>,
    slow_ms: Option<u64>,
    pool_mb: Option<usize>,
    pool_policy: Option<String>,
    cold: bool,
    warm: bool,
    experiments: Vec<String>,
}

impl Options {
    /// Whether the bench-json out-of-core section runs cold repetitions.
    /// Neither `--cold` nor `--warm` selects both modes.
    fn cold_runs(&self) -> bool {
        self.cold || !self.warm
    }

    /// Whether the bench-json out-of-core section runs warm repetitions.
    fn warm_runs(&self) -> bool {
        self.warm || !self.cold
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: DEFAULT_SCALE,
        reps: 10,
        sessions: 5,
        workers: 0,
        csv_dir: None,
        persist_dir: None,
        wal: true,
        trace: false,
        metrics_json: None,
        trace_export: None,
        top_queries: None,
        bench_out: "BENCH_1.json".to_string(),
        recorder: true,
        prepared: true,
        vectorized: true,
        batch_size: 0,
        prom: None,
        slow_ms: None,
        pool_mb: None,
        pool_policy: None,
        cold: false,
        warm: false,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => opts.scale = expect_num(args.next(), "--scale"),
            "--reps" => opts.reps = expect_num(args.next(), "--reps") as usize,
            "--quick" => opts.reps = 1,
            "--sessions" => opts.sessions = expect_num(args.next(), "--sessions") as usize,
            "--workers" => opts.workers = expect_num(args.next(), "--workers") as usize,
            "--csv" => opts.csv_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--persist" => opts.persist_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--wal" => {
                opts.wal = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--trace" => opts.trace = true,
            "--metrics-json" => opts.metrics_json = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-export" => opts.trace_export = Some(args.next().unwrap_or_else(|| usage())),
            "--top-queries" => {
                opts.top_queries = Some(expect_num(args.next(), "--top-queries") as usize)
            }
            "--bench-out" => opts.bench_out = args.next().unwrap_or_else(|| usage()),
            "--recorder" => {
                opts.recorder = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--prepared" => {
                opts.prepared = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--vectorized" => {
                opts.vectorized = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--batch-size" => opts.batch_size = expect_num(args.next(), "--batch-size") as usize,
            "--prom" => opts.prom = Some(args.next().unwrap_or_else(|| usage())),
            "--slow-ms" => opts.slow_ms = Some(expect_num(args.next(), "--slow-ms") as u64),
            "--pool-mb" => opts.pool_mb = Some(expect_num(args.next(), "--pool-mb") as usize),
            "--pool-policy" => {
                let name = args.next().unwrap_or_else(|| usage());
                if jackpine_storage::ReplacementPolicy::parse(&name).is_none() {
                    eprintln!("unknown replacement policy: {name} (clock, lru-k)");
                    std::process::exit(2);
                }
                opts.pool_policy = Some(name);
            }
            "--cold" => opts.cold = true,
            "--warm" => opts.warm = true,
            "--help" | "-h" => {
                usage();
            }
            exp => opts.experiments.push(exp.to_ascii_lowercase()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".to_string());
    }
    const KNOWN: &[&str] =
        &["t1", "t2", "t3", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "all", "bench-json"];
    for exp in &opts.experiments {
        if !KNOWN.contains(&exp.as_str()) {
            eprintln!("unknown experiment: {exp}");
            usage();
        }
    }
    opts
}

fn expect_num(v: Option<String>, flag: &str) -> f64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric argument");
        std::process::exit(2)
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale S] [--reps R] [--quick] [--sessions N] [--workers W] [--csv DIR] \
         [--persist DIR] [--wal on|off] [--trace] [--metrics-json FILE] \
         [--trace-export FILE] [--top-queries K] [--bench-out FILE] [--recorder on|off] \
         [--prepared on|off] [--vectorized on|off] [--batch-size N] [--prom FILE] \
         [--slow-ms N] [--pool-mb N] [--pool-policy clock|lru-k] [--cold] [--warm] \
         <t1|t2|t3|f1..f8|all|bench-json>..."
    );
    std::process::exit(2)
}

fn main() {
    let opts = parse_args();
    let want = |e: &str| {
        opts.experiments.iter().any(|x| x == e) || opts.experiments.iter().any(|x| x == "all")
    };

    println!("Jackpine reproduction harness");
    println!("scale = {}, reps = {}, sessions = {}\n", opts.scale, opts.reps, opts.sessions);

    let data = dataset(opts.scale);
    eprintln!("dataset generated: {} rows; loading engines...", data.total_rows());
    let engines = all_engines(&data);
    for e in &engines {
        e.set_workers(opts.workers);
        e.set_flight_recorder(opts.recorder);
        e.set_prepared(opts.prepared);
        e.set_vectorized(opts.vectorized);
        e.set_batch_size(opts.batch_size);
        if let Some(ms) = opts.slow_ms {
            e.set_slow_query_threshold(std::time::Duration::from_millis(ms));
        }
        if let Some(policy) = &opts.pool_policy {
            SpatialConnector::set_replacement_policy(e, policy);
        }
        if let Some(mb) = opts.pool_mb {
            e.set_pool_bytes(mb * 1024 * 1024);
        }
    }
    let workers = engines.first().map(|e| e.workers()).unwrap_or(1);
    println!("intra-query workers = {workers}\n");

    // Crash-safe durability: snapshot (+ WAL unless --wal off) per engine.
    if let Some(dir) = &opts.persist_dir {
        for e in &engines {
            let edir = std::path::Path::new(dir).join(e.name());
            if opts.wal {
                SpatialDb::set_durability(e, Some(&edir), DurabilityOptions::default())
                    .expect("attach durability");
            } else {
                std::fs::create_dir_all(&edir).expect("create persist dir");
                e.save(edir.join(jackpine_engine::SNAPSHOT_FILE)).expect("write snapshot");
            }
        }
        println!(
            "durability: snapshots under {dir}/<engine>/, WAL {}\n",
            if opts.wal { "on" } else { "off" }
        );
    }
    let mut tables: Vec<Table> = Vec::new();

    if want("t1") {
        tables.push(t1_inventory(&data, opts.scale));
    }
    if want("t2") {
        tables.push(t2_features(&engines));
    }
    if want("t3") {
        tables.push(t3_load_times(&data));
    }
    if want("f1") {
        tables.push(micro_table(
            "F1  Micro: topological relations, warm cache (mean ms)",
            &topo_suite(&data),
            &engines,
            CacheMode::Warm,
            opts.reps,
        ));
    }
    if want("f2") {
        tables.push(micro_table(
            "F2  Micro: topological relations, cold cache (mean ms)",
            &topo_suite(&data),
            &engines,
            CacheMode::Cold,
            opts.reps,
        ));
    }
    if want("f3") {
        tables.push(micro_table(
            "F3  Micro: spatial analysis functions, warm cache (mean ms)",
            &analysis_suite(&data),
            &engines,
            CacheMode::Warm,
            opts.reps,
        ));
    }
    if want("f4") {
        tables.push(f4_macro(&data, &engines, opts.sessions));
    }
    if want("f5") {
        tables.push(f5_indexing(&data, opts.reps));
    }
    if want("f6") {
        tables.push(f6_scalability(opts.scale, opts.reps));
    }
    if want("f7") {
        tables.push(f7_drilldown(&data, &engines, opts.sessions));
    }
    if want("f8") {
        tables.push(f8_concurrency(&data, &engines, opts.sessions));
    }

    // Record run context under every table header.
    let persist_note = match &opts.persist_dir {
        Some(dir) => format!("persist={dir} wal={}", if opts.wal { "on" } else { "off" }),
        None => "persist=off".to_string(),
    };
    let trace_note = if opts.trace { " trace=on" } else { "" };
    let prepared_note = if opts.prepared { "" } else { " prepared=off" };
    let vectorized_note = if opts.vectorized { "" } else { " vectorized=off" };
    let batch_note = match opts.batch_size {
        0 => String::new(),
        n => format!(" batch_size={n}"),
    };
    let pool_note = match opts.pool_mb {
        Some(mb) => format!(
            " pool_mb={mb} policy={}",
            opts.pool_policy.as_deref().unwrap_or("clock")
        ),
        None => String::new(),
    };
    for t in &mut tables {
        t.context = format!(
            "workers={workers} {persist_note}{trace_note}{prepared_note}{vectorized_note}\
             {batch_note}{pool_note}"
        );
    }

    if opts.experiments.iter().any(|x| x == "bench-json") {
        bench_json(&data, &opts);
    }

    if opts.trace {
        trace_report(&data, &engines);
    }

    if let Some(path) = &opts.trace_export {
        trace_export(&data, &engines, path);
    }

    for t in &tables {
        println!("{}", t.render());
    }

    if let Some(k) = opts.top_queries {
        top_queries_report(&engines, k);
    }

    if let Some(path) = &opts.metrics_json {
        let mut json = format!(
            "{{\n  \"schema_version\": {},\n  \"engines\": {{\n",
            jackpine_core::benchreport::BENCH_SCHEMA_VERSION
        );
        for (i, e) in engines.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {}{}\n",
                e.name(),
                SpatialDb::metrics_snapshot(e).to_json(),
                if i + 1 < engines.len() { "," } else { "" }
            ));
        }
        json.push_str("  }\n}\n");
        std::fs::write(path, json).expect("write metrics json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &opts.prom {
        let snaps: Vec<(String, jackpine_obs::MetricsSnapshot)> =
            engines.iter().map(|e| (e.name(), SpatialDb::metrics_snapshot(e))).collect();
        let pairs: Vec<(&str, &jackpine_obs::MetricsSnapshot)> =
            snaps.iter().map(|(n, s)| (n.as_str(), s)).collect();
        std::fs::write(path, jackpine_obs::prometheus_text(&pairs)).expect("write prometheus text");
        eprintln!("wrote {path}");
    }

    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output dir");
        for t in &tables {
            let slug: String = t
                .title
                .chars()
                .take_while(|c| !c.is_whitespace())
                .flat_map(char::to_lowercase)
                .collect();
            let path = format!("{dir}/{slug}.csv");
            std::fs::write(&path, t.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}

// ---------------------------------------------------------------------------
// T1: dataset inventory
// ---------------------------------------------------------------------------

fn t1_inventory(data: &TigerDataset, scale: f64) -> Table {
    let mut t = Table::new(
        format!("T1  Dataset inventory (scale factor {scale})"),
        &["table", "rows", "geometry", "role (TIGER analogue)"],
    );
    let rows: [(&str, usize, &str, &str); 5] = [
        ("county", data.counties.len(), "POLYGON", "county boundaries"),
        ("roads", data.roads.len(), "LINESTRING", "edges/roads with address ranges"),
        ("arealm", data.arealm.len(), "POLYGON", "area landmarks"),
        ("pointlm", data.pointlm.len(), "POINT", "point landmarks"),
        ("areawater", data.areawater.len(), "POLYGON", "rivers and lakes"),
    ];
    for (name, n, g, role) in rows {
        t.push_row(vec![name.into(), n.to_string(), g.into(), role.into()]);
    }
    t.push_row(vec!["TOTAL".into(), data.total_rows().to_string(), String::new(), String::new()]);
    t
}

// ---------------------------------------------------------------------------
// T3: data load and index build times
// ---------------------------------------------------------------------------

fn t3_load_times(data: &TigerDataset) -> Table {
    use jackpine_core::load_dataset;
    let mut t = Table::new(
        "T3  Data load and index build times",
        &["engine", "rows", "load ms", "index ms"],
    );
    for profile in EngineProfile::ALL {
        let db = Arc::new(SpatialDb::new(profile));
        let summary = load_dataset(&db, data).expect("load succeeds");
        t.push_row(vec![
            profile.name().to_string(),
            summary.total_rows().to_string(),
            fmt_ms(summary.load_time.as_secs_f64() * 1e3),
            fmt_ms(summary.index_time.as_secs_f64() * 1e3),
        ]);
        eprint!(".");
    }
    eprintln!();
    t
}

// ---------------------------------------------------------------------------
// T2: feature matrix
// ---------------------------------------------------------------------------

fn t2_features(engines: &[Arc<SpatialDb>]) -> Table {
    let conns: Vec<&dyn SpatialConnector> =
        engines.iter().map(|e| e as &dyn SpatialConnector).collect();
    let matrix = feature_matrix(&conns);
    let mut headers: Vec<&str> = vec!["function"];
    let names: Vec<String> = matrix.iter().map(|r| r.engine.clone()).collect();
    for n in &names {
        headers.push(n);
    }
    let mut t = Table::new("T2  Feature-support matrix", &headers);
    for (i, (f, _)) in matrix[0].support.iter().enumerate() {
        let mut row = vec![f.to_string()];
        for r in &matrix {
            row.push(if r.support[i].1 { "yes".into() } else { "-".into() });
        }
        t.push_row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// F1/F2/F3: micro suites
// ---------------------------------------------------------------------------

fn micro_table(
    title: &str,
    suite: &[BenchQuery],
    engines: &[Arc<SpatialDb>],
    mode: CacheMode,
    reps: usize,
) -> Table {
    let driver = Driver { repetitions: reps, warmup: 1, cache_mode: mode };
    let mut headers: Vec<String> = vec!["id".into(), "query".into()];
    for e in engines {
        headers.push(format!("{} ms", e.name()));
    }
    headers.push("result".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);

    for q in suite {
        let mut row = vec![q.id.to_string(), q.name.to_string()];
        let mut result: Option<String> = None;
        for e in engines {
            match driver.run_query(e, q.id, &q.sql) {
                Ok(m) => {
                    row.push(fmt_ms(m.stats.mean_ms));
                    if e.profile() == EngineProfile::ExactRtree {
                        result = m.scalar;
                    }
                }
                Err(err) if err.source.to_string().contains("not supported") => {
                    row.push("n/s".into());
                }
                Err(err) => {
                    eprintln!("warning: {} failed on {}: {}", q.id, e.name(), err);
                    row.push("err".into());
                }
            }
        }
        row.push(result.unwrap_or_default());
        t.push_row(row);
        eprint!(".");
    }
    eprintln!();
    t
}

// ---------------------------------------------------------------------------
// F4: macro scenario throughput
// ---------------------------------------------------------------------------

fn f4_macro(data: &TigerDataset, engines: &[Arc<SpatialDb>], sessions: usize) -> Table {
    let config = ScenarioConfig { seed: 0xbead, sessions };
    let scenarios = all_scenarios(data, &config);
    let mut headers: Vec<String> = vec!["id".into(), "scenario".into()];
    for e in engines {
        headers.push(format!("{} q/s", e.name()));
    }
    headers.push("skipped".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("F4  Macro workloads: throughput (queries/second)", &header_refs);

    for s in &scenarios {
        let mut row = vec![s.id.to_string(), s.name.to_string()];
        let mut skipped = 0;
        for e in engines {
            match run_scenario(e, s) {
                Ok(r) => {
                    row.push(fmt_qps(r.throughput_qps()));
                    skipped = skipped.max(r.skipped);
                }
                Err(err) => {
                    eprintln!("warning: scenario {} failed on {}: {}", s.id, e.name(), err);
                    row.push("err".into());
                }
            }
        }
        row.push(skipped.to_string());
        t.push_row(row);
        eprint!(".");
    }
    eprintln!();
    t
}

// ---------------------------------------------------------------------------
// F5: effect of spatial indexing
// ---------------------------------------------------------------------------

fn f5_indexing(data: &TigerDataset, reps: usize) -> Table {
    let db = engine_with_data(EngineProfile::ExactRtree, data);
    let driver = Driver { repetitions: reps, warmup: 1, cache_mode: CacheMode::Warm };
    let suite = topo_suite(data);
    let picks = ["T01", "T04", "T05", "T09", "T16"];
    let mut t = Table::new(
        "F5  Effect of spatial indexing (exact-rtree, mean ms)",
        &["id", "query", "index on", "index off", "speedup"],
    );
    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        db.set_use_spatial_index(true);
        let on = driver.run_query(&db, q.id, &q.sql).expect("indexed run");
        db.set_use_spatial_index(false);
        let off = driver.run_query(&db, q.id, &q.sql).expect("sequential run");
        db.set_use_spatial_index(true);
        let speedup = if on.stats.mean_ms > 0.0 {
            off.stats.mean_ms / on.stats.mean_ms
        } else {
            f64::INFINITY
        };
        t.push_row(vec![
            q.id.to_string(),
            q.name.to_string(),
            fmt_ms(on.stats.mean_ms),
            fmt_ms(off.stats.mean_ms),
            format!("{speedup:.1}x"),
        ]);
        eprint!(".");
    }
    eprintln!();
    t
}

// ---------------------------------------------------------------------------
// F6: data-size scalability
// ---------------------------------------------------------------------------

fn f6_scalability(base_scale: f64, reps: usize) -> Table {
    let factors = [0.5, 1.0, 2.0, 4.0];
    let driver = Driver { repetitions: reps, warmup: 1, cache_mode: CacheMode::Warm };
    let mut t = Table::new(
        "F6  Data-size scalability (exact-rtree, mean ms)",
        &["scale", "rows", "T01 bbox", "T08 join", "A04 scan"],
    );
    for f in factors {
        let scale = base_scale * f;
        let data =
            TigerDataset::generate(&TigerConfig { seed: jackpine_bench::DEFAULT_SEED, scale });
        let db = engine_with_data(EngineProfile::ExactRtree, &data);
        let suite = topo_suite(&data);
        let analysis = analysis_suite(&data);
        let t01 = suite.iter().find(|q| q.id == "T01").expect("T01 exists");
        let t08 = suite.iter().find(|q| q.id == "T08").expect("T08 exists");
        let a04 = analysis.iter().find(|q| q.id == "A04").expect("A04 exists");
        let m1 = driver.run_query(&db, "T01", &t01.sql).expect("T01");
        let m2 = driver.run_query(&db, "T08", &t08.sql).expect("T08");
        let m3 = driver.run_query(&db, "A04", &a04.sql).expect("A04");
        t.push_row(vec![
            format!("{scale:.3}"),
            data.total_rows().to_string(),
            fmt_ms(m1.stats.mean_ms),
            fmt_ms(m2.stats.mean_ms),
            fmt_ms(m3.stats.mean_ms),
        ]);
        eprint!(".");
    }
    eprintln!();
    t
}

// ---------------------------------------------------------------------------
// F7: macro per-step drill-down
// ---------------------------------------------------------------------------

fn f7_drilldown(data: &TigerDataset, engines: &[Arc<SpatialDb>], sessions: usize) -> Table {
    let config = ScenarioConfig { seed: 0xbead, sessions };
    let scenarios = all_scenarios(data, &config);
    let mut headers: Vec<String> = vec!["scenario".into(), "step".into()];
    for e in engines {
        headers.push(format!("{} ms", e.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("F7  Macro workloads: per-step mean latency (ms)", &header_refs);

    for s in &scenarios {
        // Collect per-step stats for each engine, then join by label.
        let mut per_engine: Vec<Vec<(String, Stats)>> = Vec::new();
        for e in engines {
            match run_scenario(e, s) {
                Ok(r) => per_engine.push(r.per_step),
                Err(err) => {
                    eprintln!("warning: scenario {} failed on {}: {}", s.id, e.name(), err);
                    per_engine.push(Vec::new());
                }
            }
        }
        let labels: Vec<String> = per_engine
            .first()
            .map(|v| v.iter().map(|(l, _)| l.clone()).collect())
            .unwrap_or_default();
        for label in labels {
            let mut row = vec![s.id.to_string(), label.clone()];
            for steps in &per_engine {
                match steps.iter().find(|(l, _)| *l == label) {
                    Some((_, st)) => row.push(fmt_ms(st.mean_ms)),
                    None => row.push("n/s".into()),
                }
            }
            t.push_row(row);
        }
        eprint!(".");
    }
    eprintln!();
    t
}

// ---------------------------------------------------------------------------
// bench-json: serial vs. parallel timings for CI tracking
// ---------------------------------------------------------------------------

/// Times the spatial-join micros (T02/T05/T08/T10) and the join-heavy
/// macro scenarios (M4 flood risk, M6 toxic spill) at `workers=1` vs. the
/// configured worker count, asserting identical results, plus two
/// refine-heavy polygon-polygon joins (PP1/PP2) with the prepared
/// fast path off vs. on, a vectorized-executor ablation (row path vs.
/// batch path plus a batch-size sweep on T10), an out-of-core section
/// (cold vs. warm repetitions against a bounded buffer pool, with the
/// pool's miss/eviction deltas as counter entries and a deliberately
/// undersized 1 MiB probe that must evict), and writes a schema-v2
/// bench file (default `BENCH_1.json`, see `--bench-out`).
/// The `value` fields keep the github-action-benchmark
/// `customSmallerIsBetter` meaning; timed entries additionally carry
/// per-sample statistics so `bench-diff` can apply confidence intervals.
/// Ratio entries are parallel-over-serial, so smaller is better there
/// too (0.5 = a 2x speedup).
fn bench_json(data: &TigerDataset, opts: &Options) {
    use jackpine_core::benchreport::{BenchEntry, BenchRun, BENCH_SCHEMA_VERSION};
    let db = engine_with_data(EngineProfile::ExactRtree, data);
    db.set_workers(opts.workers);
    db.set_flight_recorder(opts.recorder);
    db.set_prepared(opts.prepared);
    db.set_vectorized(opts.vectorized);
    db.set_batch_size(opts.batch_size);
    let workers = db.workers();
    let driver = Driver { repetitions: opts.reps, warmup: 1, cache_mode: CacheMode::Warm };
    let mut entries: Vec<BenchEntry> = Vec::new();

    let suite = topo_suite(data);
    let picks = ["T02", "T05", "T08", "T10"];
    for q in suite.iter().filter(|q| picks.contains(&q.id)) {
        db.set_workers(1);
        let serial_rows = db.execute(&q.sql).expect("serial run");
        let serial = driver.run_query(&db, q.id, &q.sql).expect("serial timing");
        println!("micro {}: workers=1 {} ms", q.id, fmt_ms(serial.stats.mean_ms));
        entries.push(BenchEntry {
            name: format!("micro/{} workers=1", q.id),
            value: serial.stats.mean_ms,
            unit: "ms".into(),
            stats: Some(serial.stats),
        });
        // On a single-core host the "parallel" configuration is the
        // serial one; emitting it would duplicate the entry name and
        // break bench-diff's pairing-by-name.
        if workers > 1 {
            db.set_workers(workers);
            let parallel_rows = db.execute(&q.sql).expect("parallel run");
            let parallel = driver.run_query(&db, q.id, &q.sql).expect("parallel timing");
            assert_eq!(
                serial_rows, parallel_rows,
                "{}: workers=1 and workers={workers} disagree",
                q.id
            );
            let ratio = parallel.stats.mean_ms / serial.stats.mean_ms;
            println!(
                "micro {}: workers={workers} {} ms ({:.2}x speedup)",
                q.id,
                fmt_ms(parallel.stats.mean_ms),
                1.0 / ratio
            );
            entries.push(BenchEntry {
                name: format!("micro/{} workers={workers}", q.id),
                value: parallel.stats.mean_ms,
                unit: "ms".into(),
                stats: Some(parallel.stats),
            });
            entries.push(BenchEntry {
                name: format!("micro/{} parallel_over_serial", q.id),
                value: ratio,
                unit: "ratio".into(),
                stats: None,
            });
        }
    }

    // Refine-heavy polygon-polygon joins, measured with the prepared
    // fast path off and on. Adjacent county polygons (and the landmarks
    // inside them) have envelopes that all pass the index prefilter, so
    // nearly every candidate pair reaches the DE-9IM refine stage —
    // exactly the work prepared geometries accelerate. Run serially so
    // the ratio isolates the refine kernels from scheduling effects.
    let refine_heavy = [
        (
            "PP1",
            "SELECT COUNT(*) FROM county a JOIN county b ON ST_Intersects(a.geom, b.geom) \
             WHERE a.id < b.id",
        ),
        ("PP2", "SELECT COUNT(*) FROM county c JOIN arealm a ON ST_Contains(c.geom, a.geom)"),
    ];
    db.set_workers(1);
    for (id, sql) in refine_heavy {
        db.set_prepared(false);
        let naive_rows = db.execute(sql).expect("naive run");
        let naive = driver.run_query(&db, id, sql).expect("naive timing");
        db.set_prepared(true);
        let prepared_rows = db.execute(sql).expect("prepared run");
        let prepared = driver.run_query(&db, id, sql).expect("prepared timing");
        assert_eq!(naive_rows, prepared_rows, "{id}: prepared on/off disagree");
        let ratio = prepared.stats.mean_ms / naive.stats.mean_ms;
        println!(
            "micro {id}: prepared=off {} ms, prepared=on {} ms ({:.2}x speedup)",
            fmt_ms(naive.stats.mean_ms),
            fmt_ms(prepared.stats.mean_ms),
            1.0 / ratio
        );
        entries.push(BenchEntry {
            name: format!("micro/{id} prepared=off"),
            value: naive.stats.mean_ms,
            unit: "ms".into(),
            stats: Some(naive.stats),
        });
        entries.push(BenchEntry {
            name: format!("micro/{id} prepared=on"),
            value: prepared.stats.mean_ms,
            unit: "ms".into(),
            stats: Some(prepared.stats),
        });
        entries.push(BenchEntry {
            name: format!("micro/{id} prepared_over_naive"),
            value: ratio,
            unit: "ratio".into(),
            stats: None,
        });
    }
    // Vectorized-executor ablation on the refine-heaviest micro: the
    // row-at-a-time filter vs. batch execution, then a batch-size sweep.
    // Serial with the prepared cache on, so the comparison isolates the
    // columnar MBR prefilter and the batch-amortized prepared probes
    // from scheduling effects.
    let t10 = suite.iter().find(|q| q.id == "T10").expect("T10 exists");
    db.set_prepared(true);
    db.set_vectorized(false);
    let row_rows = db.execute(&t10.sql).expect("row-path run");
    let row = driver.run_query(&db, "T10", &t10.sql).expect("row-path timing");
    db.set_vectorized(true);
    let vectorized_rows = db.execute(&t10.sql).expect("vectorized run");
    let vectorized = driver.run_query(&db, "T10", &t10.sql).expect("vectorized timing");
    assert_eq!(row_rows, vectorized_rows, "T10: vectorized on/off disagree");
    let ratio = vectorized.stats.mean_ms / row.stats.mean_ms;
    println!(
        "micro T10: vectorized=off {} ms, vectorized=on {} ms ({:.2}x speedup)",
        fmt_ms(row.stats.mean_ms),
        fmt_ms(vectorized.stats.mean_ms),
        1.0 / ratio
    );
    entries.push(BenchEntry {
        name: "micro/T10 vectorized=off".into(),
        value: row.stats.mean_ms,
        unit: "ms".into(),
        stats: Some(row.stats),
    });
    entries.push(BenchEntry {
        name: "micro/T10 vectorized=on".into(),
        value: vectorized.stats.mean_ms,
        unit: "ms".into(),
        stats: Some(vectorized.stats),
    });
    entries.push(BenchEntry {
        name: "micro/T10 vectorized_over_row".into(),
        value: ratio,
        unit: "ratio".into(),
        stats: None,
    });
    for bs in [128usize, 1024, 4096] {
        db.set_batch_size(bs);
        let rows = db.execute(&t10.sql).expect("batch-size run");
        assert_eq!(rows, row_rows, "T10: batch_size={bs} disagrees");
        let m = driver.run_query(&db, "T10", &t10.sql).expect("batch-size timing");
        println!("micro T10: batch_size={bs} {} ms", fmt_ms(m.stats.mean_ms));
        entries.push(BenchEntry {
            name: format!("micro/T10 batch_size={bs}"),
            value: m.stats.mean_ms,
            unit: "ms".into(),
            stats: Some(m.stats),
        });
    }
    db.set_batch_size(opts.batch_size);
    db.set_vectorized(opts.vectorized);
    db.set_prepared(opts.prepared);
    db.set_workers(workers);

    let config = ScenarioConfig { seed: 0xbead, sessions: opts.sessions };
    let scenarios = all_scenarios(data, &config);
    for s in scenarios.iter().filter(|s| s.id == "M4" || s.id == "M6") {
        db.set_workers(1);
        let serial = run_scenario(&db, s).expect("serial scenario");
        let serial_ms = 1e3 / serial.throughput_qps();
        println!("macro {}: workers=1 {} ms/query", s.id, fmt_ms(serial_ms));
        entries.push(BenchEntry {
            name: format!("macro/{} workers=1", s.id),
            value: serial_ms,
            unit: "ms/query".into(),
            stats: None,
        });
        if workers > 1 {
            db.set_workers(workers);
            let parallel = run_scenario(&db, s).expect("parallel scenario");
            let parallel_ms = 1e3 / parallel.throughput_qps();
            let ratio = parallel_ms / serial_ms;
            println!(
                "macro {}: workers={workers} {} ms/query ({:.2}x speedup)",
                s.id,
                fmt_ms(parallel_ms),
                1.0 / ratio
            );
            entries.push(BenchEntry {
                name: format!("macro/{} workers={workers}", s.id),
                value: parallel_ms,
                unit: "ms/query".into(),
                stats: None,
            });
            entries.push(BenchEntry {
                name: format!("macro/{} parallel_over_serial", s.id),
                value: ratio,
                unit: "ratio".into(),
                stats: None,
            });
        }
    }

    // Multi-session write throughput: open-loop single-row INSERTs from
    // concurrent sessions against one durable engine with per-commit
    // fsync, a fixed total statement count, so the entry measures the
    // commit path (MVCC publish + group-committed WAL) rather than data
    // volume. Sessions share the fsync cost through the group-commit
    // pipeline, so per-statement latency should not grow linearly with
    // the session count.
    let total_inserts = 2000usize;
    let mut serial_insert_ms = None;
    for sessions in [1usize, 4] {
        let dir = std::env::temp_dir()
            .join(format!("jackpine-bench-mvcc-{}-{sessions}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench persist dir");
        let wdb = SpatialDb::open_durable(
            &dir,
            EngineProfile::ExactRtree,
            DurabilityOptions { sync_each_append: true },
        )
        .expect("open durable bench engine");
        wdb.execute("CREATE TABLE writes (id BIGINT, geom GEOMETRY)").expect("create");
        let per_session = total_inserts / sessions;
        let mut samples = Vec::with_capacity(opts.reps);
        for rep in 0..opts.reps.max(1) {
            let t0 = std::time::Instant::now();
            std::thread::scope(|s| {
                for w in 0..sessions {
                    let wdb = wdb.clone();
                    s.spawn(move || {
                        let base = (rep * sessions + w) * per_session;
                        for i in 0..per_session {
                            let id = base + i;
                            wdb.execute(&format!(
                                "INSERT INTO writes VALUES ({id}, \
                                 ST_GeomFromText('POINT ({} {})'))",
                                id % 100,
                                id / 100
                            ))
                            .expect("open-loop insert");
                        }
                    });
                }
            });
            samples.push(t0.elapsed());
        }
        let stats = Stats::from_durations(&samples);
        let per_stmt_ms = stats.mean_ms / total_inserts as f64;
        println!(
            "mvcc insert: sessions={sessions} {} ms for {total_inserts} statements \
             ({:.4} ms/stmt)",
            fmt_ms(stats.mean_ms),
            per_stmt_ms
        );
        entries.push(BenchEntry {
            name: format!("mvcc/insert-2000 sessions={sessions}"),
            value: stats.mean_ms,
            unit: "ms".into(),
            stats: Some(stats),
        });
        if sessions == 1 {
            serial_insert_ms = Some(stats.mean_ms);
        } else if let Some(serial) = serial_insert_ms {
            entries.push(BenchEntry {
                name: format!("mvcc/insert-2000 multi_over_single sessions={sessions}"),
                value: stats.mean_ms / serial,
                unit: "ratio".into(),
                stats: None,
            });
        }
        drop(wdb);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Out-of-core: cold vs. warm repetitions against a bounded buffer
    // pool (default 8 MiB, see --pool-mb). The same data and queries run
    // on a separate engine whose heap pages and R-tree leaves live
    // behind the pool; warm repetitions reuse resident frames, cold
    // repetitions drop the pool first (the driver's cold mode calls
    // clear_caches, which writes back and empties the frame table), so
    // every page faults back in from the backing store. The pool's
    // cold-pin and eviction deltas ride along as counter entries, and a
    // deliberately undersized 1 MiB probe guarantees a nonzero eviction
    // count regardless of scale. Results must match the unbounded
    // engine bit-for-bit — paging is invisible to query semantics.
    let pool_mb = opts.pool_mb.filter(|&mb| mb > 0).unwrap_or(8);
    let pdb = engine_with_data(EngineProfile::ExactRtree, data);
    if let Some(policy) = &opts.pool_policy {
        SpatialConnector::set_replacement_policy(&pdb, policy);
    }
    pdb.set_pool_bytes(pool_mb * 1024 * 1024);
    pdb.set_workers(1);
    pdb.set_flight_recorder(opts.recorder);
    let cold_driver = Driver { repetitions: opts.reps, warmup: 1, cache_mode: CacheMode::Cold };
    for q in suite.iter().filter(|q| ["T02", "T10"].contains(&q.id)) {
        let bounded_rows = pdb.execute(&q.sql).expect("bounded-pool run");
        let unbounded_rows = db.execute(&q.sql).expect("unbounded rerun");
        assert_eq!(bounded_rows, unbounded_rows, "{}: pool_mb={pool_mb} changes results", q.id);
        if opts.warm_runs() {
            let warm = driver.run_query(&pdb, q.id, &q.sql).expect("warm pool timing");
            println!("pool {}: warm pool_mb={pool_mb} {} ms", q.id, fmt_ms(warm.stats.mean_ms));
            entries.push(BenchEntry {
                name: format!("pool/{} warm pool_mb={pool_mb}", q.id),
                value: warm.stats.mean_ms,
                unit: "ms".into(),
                stats: Some(warm.stats),
            });
        }
        if opts.cold_runs() {
            let before = pdb.pool_stats();
            let cold = cold_driver.run_query(&pdb, q.id, &q.sql).expect("cold pool timing");
            let after = pdb.pool_stats();
            let cold_pins = after.cold_pins - before.cold_pins;
            let evictions = after.evictions - before.evictions;
            assert!(cold_pins > 0, "{}: cold repetitions must fault pages back in", q.id);
            println!(
                "pool {}: cold pool_mb={pool_mb} {} ms ({cold_pins} cold pins, \
                 {evictions} evictions)",
                q.id,
                fmt_ms(cold.stats.mean_ms)
            );
            entries.push(BenchEntry {
                name: format!("pool/{} cold pool_mb={pool_mb}", q.id),
                value: cold.stats.mean_ms,
                unit: "ms".into(),
                stats: Some(cold.stats),
            });
            entries.push(BenchEntry {
                name: format!("pool/{} cold cold_pins", q.id),
                value: cold_pins as f64,
                unit: "count".into(),
                stats: None,
            });
            entries.push(BenchEntry {
                name: format!("pool/{} cold evictions", q.id),
                value: evictions as f64,
                unit: "count".into(),
                stats: None,
            });
        }
    }
    if opts.cold_runs() {
        // The eviction probe. A fixed tiny capacity cannot guarantee
        // evictions (at small --scale a query's whole working set can
        // fit in a handful of frames), so calibrate: measure the
        // query's cold working set in pages through an effectively
        // unbounded pool, then bound the pool to *half* of it. T10 is
        // a two-table join, so the working set is always at least two
        // pages and the half-sized pool must cycle frames through the
        // replacement policy at every --scale.
        let t10 = suite.iter().find(|q| q.id == "T10").expect("T10 exists");
        pdb.set_pool_bytes(4096 * PAGE_SIZE);
        pdb.clear_caches();
        let before = pdb.pool_stats();
        pdb.execute(&t10.sql).expect("calibration run");
        let working_set = (pdb.pool_stats().cold_pins - before.cold_pins) as usize;
        assert!(working_set >= 2, "T10 joins two heaps; it must touch at least two pages");
        let frames = (working_set / 2).max(1);
        pdb.set_pool_bytes(frames * PAGE_SIZE);
        let probe_rows = pdb.execute(&t10.sql).expect("undersized-pool run");
        assert_eq!(
            probe_rows,
            db.execute(&t10.sql).expect("unbounded rerun"),
            "T10: an undersized pool changes results"
        );
        let before = pdb.pool_stats();
        let tiny = Driver { repetitions: 1, warmup: 0, cache_mode: CacheMode::Cold };
        let m = tiny.run_query(&pdb, "T10", &t10.sql).expect("undersized-pool timing");
        let after = pdb.pool_stats();
        let evictions = after.evictions - before.evictions;
        assert!(
            evictions > 0,
            "a pool of {frames} frames must evict during cold T10 ({working_set}-page \
             working set)"
        );
        println!(
            "pool T10: cold undersized ({frames} of {working_set} frames) {} ms \
             ({evictions} evictions)",
            fmt_ms(m.stats.mean_ms)
        );
        entries.push(BenchEntry {
            name: "pool/T10 cold undersized".into(),
            value: m.stats.mean_ms,
            unit: "ms".into(),
            stats: Some(m.stats),
        });
        entries.push(BenchEntry {
            name: "pool/T10 cold evictions undersized".into(),
            value: evictions as f64,
            unit: "count".into(),
            stats: None,
        });
    }

    let run = BenchRun { schema_version: BENCH_SCHEMA_VERSION, entries };
    std::fs::write(&opts.bench_out, run.to_json())
        .unwrap_or_else(|e| panic!("write {}: {e}", opts.bench_out));
    println!(
        "wrote {} (schema v{}, {} entries)\n",
        opts.bench_out,
        BENCH_SCHEMA_VERSION,
        run.entries.len()
    );
}

// ---------------------------------------------------------------------------
// --trace: per-query stage timings and engine counters
// ---------------------------------------------------------------------------

/// Prints an EXPLAIN ANALYZE-style trace for every micro-benchmark query
/// (topological and analysis suites) on the exact-rtree engine.
fn trace_report(data: &TigerDataset, engines: &[Arc<SpatialDb>]) {
    let db = engines
        .iter()
        .find(|e| e.profile() == EngineProfile::ExactRtree)
        .expect("exact-rtree engine present");
    println!("Query traces (exact-rtree)");
    println!("--------------------------");
    let topo = topo_suite(data);
    let analysis = analysis_suite(data);
    for q in topo.iter().chain(analysis.iter()) {
        match db.execute_traced(&q.sql) {
            Ok((_, trace)) => {
                println!("[{}] {}", q.id, q.name);
                println!("{}", trace.render());
            }
            Err(err) => println!("[{}] {}: error: {err}", q.id, q.name),
        }
    }
}

// ---------------------------------------------------------------------------
// --trace-export: Chrome trace-event JSON of the micro suites
// ---------------------------------------------------------------------------

/// Runs the topological and analysis micro suites traced on the
/// exact-rtree engine and writes the traces as Chrome trace-event JSON:
/// one "X" span per query (named by query id) with its stage spans
/// nested, plus a worker lane marking morsel-parallel sections.
fn trace_export(data: &TigerDataset, engines: &[Arc<SpatialDb>], path: &str) {
    let db = engines
        .iter()
        .find(|e| e.profile() == EngineProfile::ExactRtree)
        .expect("exact-rtree engine present");
    let topo = topo_suite(data);
    let analysis = analysis_suite(data);
    let mut traced: Vec<(String, jackpine_obs::QueryTrace)> = Vec::new();
    for q in topo.iter().chain(analysis.iter()) {
        match db.execute_traced(&q.sql) {
            Ok((_, trace)) => traced.push((q.id.to_string(), trace)),
            Err(err) => eprintln!("warning: trace-export {}: {err}", q.id),
        }
    }
    let pairs: Vec<(&str, &jackpine_obs::QueryTrace)> =
        traced.iter().map(|(id, t)| (id.as_str(), t)).collect();
    let json = jackpine_obs::chrome_trace_json(&pairs);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path} ({} query spans)", pairs.len());
}

// ---------------------------------------------------------------------------
// --top-queries: fingerprint stats from the flight recorder
// ---------------------------------------------------------------------------

/// Prints the top `k` statement shapes by execution count, per engine,
/// from the always-on fingerprint stats table.
fn top_queries_report(engines: &[Arc<SpatialDb>], k: usize) {
    for e in engines {
        let top = SpatialDb::query_stats(e, k);
        if top.is_empty() {
            continue;
        }
        let mut t = Table::new(
            format!("Top {k} queries by executions ({})", e.name()),
            &["fingerprint", "execs", "errs", "mean ms", "p95 ms", "rows", "statement shape"],
        );
        for s in &top {
            let mut shape = s.normalized.clone();
            if shape.len() > 60 {
                shape.truncate(57);
                shape.push_str("...");
            }
            t.push_row(vec![
                format!("{:016x}", s.digest),
                s.executions().to_string(),
                s.errors.to_string(),
                fmt_ms(s.mean_ms()),
                fmt_ms(s.p95_ms()),
                s.rows.to_string(),
                shape,
            ]);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------------
// F8: multi-client throughput scaling
// ---------------------------------------------------------------------------

fn f8_concurrency(data: &TigerDataset, engines: &[Arc<SpatialDb>], sessions: usize) -> Table {
    let config = ScenarioConfig { seed: 0xbead, sessions };
    // Map browsing is the scenario the paper scaled with clients: short,
    // index-bound queries.
    let scenario =
        all_scenarios(data, &config).into_iter().find(|s| s.id == "M1").expect("M1 exists");
    let client_counts = [1usize, 2, 4, 8];
    let mut headers: Vec<String> = vec!["clients".into()];
    for e in engines {
        headers.push(format!("{} q/s", e.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "F8  Multi-client throughput scaling (map browsing, queries/second)",
        &header_refs,
    );
    for clients in client_counts {
        let mut row = vec![clients.to_string()];
        for e in engines {
            match run_scenario_parallel(e, &scenario, clients) {
                Ok(r) => row.push(fmt_qps(r.throughput_qps())),
                Err(err) => {
                    eprintln!("warning: F8 with {clients} clients on {}: {err}", e.name());
                    row.push("err".into());
                }
            }
        }
        t.push_row(row);
        eprint!(".");
    }
    eprintln!();
    t
}
