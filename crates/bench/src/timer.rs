//! Minimal timing harness for the `cargo bench` targets.
//!
//! The benches were originally Criterion groups; with the workspace now
//! zero-external-dependency they are plain `harness = false` binaries
//! built on this module: warm up once, take `samples` wall-clock
//! measurements, and print a `group/id: mean .. (min ..)` line per
//! benchmark.

use std::time::{Duration, Instant};

/// Result of one benchmark: all sample durations, in measurement order.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/id` label the samples were reported under.
    pub label: String,
    /// Individual sample wall times.
    pub samples: Vec<Duration>,
}

impl BenchResult {
    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or(Duration::ZERO)
    }
}

/// Elapsed time since `start`, clamped to zero. Some virtualised clocks
/// hand out non-monotonic `Instant`s across cores; a sample must never
/// go "negative" (panic or wrap), only floor at zero.
pub fn monotonic_elapsed(start: Instant) -> Duration {
    Instant::now().checked_duration_since(start).unwrap_or(Duration::ZERO)
}

/// Times `f` (`samples` runs after one warm-up) and prints one line.
pub fn bench(group: &str, id: &str, samples: usize, mut f: impl FnMut()) -> BenchResult {
    f(); // warm-up: touch caches, first-use lazies, page faults
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        f();
        out.push(monotonic_elapsed(start));
    }
    let result = BenchResult { label: format!("{group}/{id}"), samples: out };
    println!(
        "{:<48} mean {:>10.3} ms   min {:>10.3} ms   ({} samples)",
        result.label,
        result.mean().as_secs_f64() * 1e3,
        result.min().as_secs_f64() * 1e3,
        result.samples.len()
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_requested_samples() {
        let mut runs = 0;
        let r = bench("t", "noop", 3, || runs += 1);
        assert_eq!(runs, 4); // warm-up + 3 samples
        assert_eq!(r.samples.len(), 3);
        assert!(r.min() <= r.mean() || r.samples.iter().all(|s| s.is_zero()));
    }

    #[test]
    fn monotonic_elapsed_never_negative() {
        // A start instant in the "future" (as far as the clock allows)
        // must clamp to zero rather than panic or wrap.
        let later = Instant::now() + Duration::from_secs(3600);
        assert_eq!(monotonic_elapsed(later), Duration::ZERO);
        // And a genuine past instant reports forward progress.
        let start = Instant::now();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(monotonic_elapsed(start) >= Duration::ZERO);
    }
}
