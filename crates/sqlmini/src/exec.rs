//! Plan execution: expression evaluation and the physical operators.
//!
//! The executor is **morsel-driven**: operators over large inputs split
//! their work into fixed-size morsels ([`MORSEL_SIZE`] rows) dispatched
//! to a scoped worker pool (`std::thread::scope`). Worker count comes
//! from [`ExecOptions`]; `workers = 1` runs everything on the calling
//! thread. Results are collected per-morsel and reassembled in morsel
//! order, so **output is bit-identical for every worker count** — the
//! equivalence tests rely on that.
//!
//! Rows flow between operators as [`LazyRow`]s — late materialization:
//! scans pass `Arc`-counted handles to heap rows instead of deep-cloning
//! values at every operator boundary, joins concatenate handle lists,
//! and only `Project`/`Aggregate` outputs (and the final result set)
//! materialize actual tuples.

use crate::ast::BinOp;
use crate::batch::{MbrColumn, MbrQuad, DEFAULT_BATCH_SIZE};
use crate::functions::{self, FunctionMode};
use crate::plan::{AggExpr, AggOutput, BoundExpr, PlanNode, PlannedSelect};
use crate::prepared::PreparedCache;
use crate::provider::{SnapshotHandle, TableProvider};
use crate::{Result, SqlError};
use jackpine_geom::{Envelope, Geometry};
use jackpine_obs::{EngineMetrics, Stage};
use jackpine_storage::{Row, Value};
use jackpine_topo::{PredicateKind, PredicateOutcome, PreparedGeometry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows per morsel claimed by one worker at a time — at non-default
/// batch sizes, rounded to a whole number of batches so batch boundaries
/// are identical at every worker count.
pub const MORSEL_SIZE: usize = 1024;

/// Batches per input at or below which dispatch stays serial, regardless
/// of the worker setting: thread spawn plus result stitching costs more
/// than the parallel win on small inputs. At the default batch size this
/// reproduces the historical 4096-row cutoff (a few-thousand-row filter
/// is measurably *slower* at 4 workers than at 1).
pub const MIN_PARALLEL_BATCHES: usize = 4;

/// The historical row-count cutoff, equal to
/// `MIN_PARALLEL_BATCHES * DEFAULT_BATCH_SIZE`; kept for doc links and
/// ablation scripts.
pub const MIN_PARALLEL_ROWS: usize = MIN_PARALLEL_BATCHES * DEFAULT_BATCH_SIZE;

/// Upper bound on speculative `Vec` capacity hints (rows). Join outputs
/// can legitimately exceed this; it only caps the *pre-allocation*, so a
/// hostile or mis-estimated cross product cannot OOM up front.
const MAX_CAPACITY_HINT: usize = 1 << 20;

/// The materialized result of a query.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a one-row, one-column result (e.g. `COUNT(*)`).
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => self.rows[0].first(),
            _ => None,
        }
    }
}

/// Executor knobs.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Worker threads for morsel dispatch; `0` and `1` = serial execution.
    pub workers: usize,
    /// Metrics registry to record stage timings, refine counters and
    /// morsel dispatch into; `None` executes uninstrumented.
    pub metrics: Option<Arc<EngineMetrics>>,
    /// Prepared-geometry cache for the refine stage; `None` disables the
    /// prepared fast path (the `--prepared off` ablation).
    pub prepared: Option<Arc<PreparedCache>>,
    /// Vectorized batch execution of spatial filters (columnar MBR
    /// prefilter + selection-vector refine). `false` restores the
    /// row-at-a-time path — the `set_vectorized(off)` ablation.
    pub vectorized: bool,
    /// Rows per batch on the vectorized path; clamped to at least 1.
    pub batch_size: usize,
    /// The statement snapshot, when the engine pinned one. Every
    /// snapshot-capable provider in the plan is resolved to a pinned
    /// copy before execution starts, so all reads — scans, index
    /// probes, join-side fetches — observe one commit generation.
    /// `None` reads providers live (tests and embedded use).
    pub snapshot: Option<Arc<dyn SnapshotHandle>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            workers: 0,
            metrics: None,
            prepared: None,
            vectorized: true,
            batch_size: DEFAULT_BATCH_SIZE,
            snapshot: None,
        }
    }
}

/// Executes a planned `SELECT` serially (one worker).
pub fn execute(plan: &PlannedSelect) -> Result<ResultSet> {
    execute_with(plan, &ExecOptions::default())
}

/// Executes a planned `SELECT` with explicit executor options.
pub fn execute_with(plan: &PlannedSelect, opts: &ExecOptions) -> Result<ResultSet> {
    let ctx = ExecCtx {
        mode: plan.mode,
        workers: opts.workers.max(1),
        metrics: opts.metrics.clone(),
        prepared: opts.prepared.clone(),
        vectorized: opts.vectorized,
        batch_size: opts.batch_size.max(1),
        pins: build_pins(&plan.root, opts.snapshot.as_ref()),
    };
    let lazy = run(&plan.root, &ctx)?;
    // Final materialization: the only place surviving rows are deep-copied.
    let t0 = ctx.metrics.as_ref().map(|_| Instant::now());
    let rows =
        ctx.parallel_morsels(&lazy, |chunk| Ok(chunk.iter().map(LazyRow::materialize).collect()))?;
    if let (Some(m), Some(t0)) = (&ctx.metrics, t0) {
        m.record_stage(Stage::Materialize, t0.elapsed());
    }
    Ok(ResultSet { columns: plan.columns.clone(), rows })
}

// ---------------------------------------------------------------------------
// Late-materialized rows
// ---------------------------------------------------------------------------

/// A row flowing between operators without materializing its values.
#[derive(Clone, Debug)]
pub enum LazyRow {
    /// Concatenation of zero or more base-table row handles (scans and
    /// joins). Column offsets run across the parts in order.
    Handles(Vec<Arc<Row>>),
    /// A computed tuple (`Project`/`Aggregate` output).
    Owned(Vec<Value>),
}

impl LazyRow {
    /// The zero-column row (`SELECT` without `FROM`).
    pub fn empty() -> LazyRow {
        LazyRow::Handles(Vec::new())
    }

    /// A single-table row handle.
    fn one(row: Arc<Row>) -> LazyRow {
        LazyRow::Handles(vec![row])
    }

    /// The row formed by `self`'s columns followed by `other`'s.
    fn join(&self, other: &LazyRow) -> LazyRow {
        match (self, other) {
            (LazyRow::Handles(a), LazyRow::Handles(b)) => {
                let mut parts = Vec::with_capacity(a.len() + b.len());
                parts.extend(a.iter().cloned());
                parts.extend(b.iter().cloned());
                LazyRow::Handles(parts)
            }
            _ => {
                let mut vals = self.materialize();
                vals.extend(self_extend(other));
                LazyRow::Owned(vals)
            }
        }
    }

    /// The row extended by one more table-row handle (index join probes).
    fn join_handle(&self, handle: Arc<Row>) -> LazyRow {
        match self {
            LazyRow::Handles(a) => {
                let mut parts = Vec::with_capacity(a.len() + 1);
                parts.extend(a.iter().cloned());
                parts.push(handle);
                LazyRow::Handles(parts)
            }
            LazyRow::Owned(vals) => {
                let mut vals = vals.clone();
                vals.extend(handle.iter().cloned());
                LazyRow::Owned(vals)
            }
        }
    }

    /// The handle part holding flat column offset `i`, plus the offset
    /// inside it — the physical row identity the prepared-geometry cache
    /// keys by. `None` for owned (materialized) tuples, which have no
    /// stable identity to cache under.
    fn col_part(&self, i: usize) -> Option<(&Arc<Row>, usize)> {
        match self {
            LazyRow::Handles(parts) => {
                let mut i = i;
                for part in parts {
                    if i < part.len() {
                        return Some((part, i));
                    }
                    i -= part.len();
                }
                None
            }
            LazyRow::Owned(_) => None,
        }
    }

    /// Deep-copies the row into a flat tuple.
    fn materialize(&self) -> Vec<Value> {
        match self {
            LazyRow::Handles(parts) => {
                let n = parts.iter().map(|p| p.len()).sum();
                let mut out = Vec::with_capacity(n);
                for part in parts {
                    out.extend(part.iter().cloned());
                }
                out
            }
            LazyRow::Owned(vals) => vals.clone(),
        }
    }
}

fn self_extend(row: &LazyRow) -> Vec<Value> {
    row.materialize()
}

/// Column access shared by materialized slices and [`LazyRow`]s, so one
/// expression evaluator serves both.
pub trait TupleView {
    /// The value at flat column offset `i`, if in range.
    fn col(&self, i: usize) -> Option<&Value>;
}

impl TupleView for LazyRow {
    fn col(&self, i: usize) -> Option<&Value> {
        match self {
            LazyRow::Handles(parts) => {
                let mut i = i;
                for part in parts {
                    if i < part.len() {
                        return Some(&part[i]);
                    }
                    i -= part.len();
                }
                None
            }
            LazyRow::Owned(vals) => vals.get(i),
        }
    }
}

struct SliceView<'a>(&'a [Value]);

impl TupleView for SliceView<'_> {
    fn col(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }
}

// ---------------------------------------------------------------------------
// Morsel dispatch
// ---------------------------------------------------------------------------

struct ExecCtx {
    mode: FunctionMode,
    workers: usize,
    metrics: Option<Arc<EngineMetrics>>,
    prepared: Option<Arc<PreparedCache>>,
    vectorized: bool,
    batch_size: usize,
    /// Plan-provider identity (thin `Arc` pointer) → its snapshot-pinned
    /// replacement. Built once per statement; empty when executing
    /// without a snapshot. Cached plans hold live providers, so pinning
    /// per execution is what lets one plan serve many snapshots.
    pins: HashMap<usize, Arc<dyn TableProvider>>,
}

/// Thin-pointer identity of a provider `Arc` (vtable discarded): the
/// pin-map key. A self-join shares one `Arc`, hence one pin.
fn provider_key(table: &Arc<dyn TableProvider>) -> usize {
    Arc::as_ptr(table) as *const () as usize
}

/// Resolves every distinct provider in the plan to its snapshot-pinned
/// copy. Providers that decline (`pin_snapshot` → `None`) are read live.
fn build_pins(
    root: &PlanNode,
    snapshot: Option<&Arc<dyn SnapshotHandle>>,
) -> HashMap<usize, Arc<dyn TableProvider>> {
    let mut pins = HashMap::new();
    if let Some(snap) = snapshot {
        let mut providers = Vec::new();
        root.collect_providers(&mut providers);
        for p in providers {
            let key = provider_key(p);
            if let std::collections::hash_map::Entry::Vacant(e) = pins.entry(key) {
                if let Some(pinned) = p.pin_snapshot(snap) {
                    e.insert(pinned);
                }
            }
        }
    }
    pins
}

impl ExecCtx {
    /// The provider to actually read from: the snapshot-pinned copy when
    /// the statement pinned one, otherwise `table` itself.
    fn src<'a>(&'a self, table: &'a Arc<dyn TableProvider>) -> &'a Arc<dyn TableProvider> {
        self.pins.get(&provider_key(table)).unwrap_or(table)
    }

    /// Runs `f`, recording its elapsed time as one sample of `stage` when
    /// metrics are attached — but only when `f` returns `Some`, so a query
    /// whose index was dropped does not report an `index_probe` stage for
    /// the sequential-scan fallback.
    fn stage_if_some<T>(&self, stage: Stage, f: impl FnOnce() -> Option<T>) -> Option<T> {
        match &self.metrics {
            Some(m) => {
                let t0 = Instant::now();
                let out = f();
                if out.is_some() {
                    m.record_stage(stage, t0.elapsed());
                }
                out
            }
            None => f(),
        }
    }

    /// Rows per morsel: the smallest multiple of the batch size at or
    /// above [`MORSEL_SIZE`] (just `MORSEL_SIZE` at default settings).
    /// Morsels being whole batches makes global batch boundaries a pure
    /// function of position — identical at every worker count.
    fn morsel_rows(&self) -> usize {
        (MORSEL_SIZE / self.batch_size).max(1) * self.batch_size
    }

    /// Applies `f` to morsels of `items`, concatenating outputs in morsel
    /// order. With one worker — or at most [`MIN_PARALLEL_BATCHES`]
    /// batches of items, where dispatch overhead beats the win — this is
    /// a single direct call on the current thread; otherwise morsels are
    /// claimed by scoped worker threads off a shared counter. Morsel
    /// boundaries depend only on morsel size, and outputs are stitched by
    /// morsel index, so results are identical for any worker count.
    fn parallel_morsels<I, O>(
        &self,
        items: &[I],
        f: impl Fn(&[I]) -> Result<Vec<O>> + Sync,
    ) -> Result<Vec<O>>
    where
        I: Sync,
        O: Send,
    {
        self.parallel_morsels_indexed(items, |_, chunk| f(chunk))
    }

    /// [`parallel_morsels`](Self::parallel_morsels), with the morsel's
    /// global item offset passed to `f` — the vectorized filter uses it
    /// to index pre-gathered MBR columns.
    fn parallel_morsels_indexed<I, O>(
        &self,
        items: &[I],
        f: impl Fn(usize, &[I]) -> Result<Vec<O>> + Sync,
    ) -> Result<Vec<O>>
    where
        I: Sync,
        O: Send,
    {
        if self.workers <= 1 || items.len() <= MIN_PARALLEL_BATCHES * self.batch_size {
            return f(0, items);
        }
        let morsel_rows = self.morsel_rows();
        let morsels: Vec<&[I]> = items.chunks(morsel_rows).collect();
        let nworkers = self.workers.min(morsels.len());
        let counter = AtomicUsize::new(0);
        let metrics = self.metrics.as_deref();
        let dispatch_start = Instant::now();
        let mut results: Vec<(usize, Result<Vec<O>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nworkers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let idx = counter.fetch_add(1, Ordering::Relaxed);
                            let Some(morsel) = morsels.get(idx) else {
                                break;
                            };
                            if let Some(m) = metrics {
                                // Queue wait: how long this morsel sat
                                // between dispatch start and its claim.
                                m.morsels_dispatched.incr();
                                m.morsel_wait_ns.record(
                                    dispatch_start.elapsed().as_nanos().min(u64::MAX as u128)
                                        as u64,
                                );
                            }
                            local.push((idx, f(idx * morsel_rows, morsel)));
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("morsel worker panicked")).collect()
        });
        results.sort_by_key(|(idx, _)| *idx);
        let mut out = Vec::with_capacity(items.len());
        for (_, r) in results {
            out.extend(r?);
        }
        Ok(out)
    }

    /// Recognizes the filter shapes both fast paths (prepared row path
    /// and vectorized batch path) accelerate: a top-level `pred(x, y)`
    /// where `pred` is a named DE-9IM predicate under exact semantics and
    /// `x`/`y` are geometry columns or constant geometry expressions.
    /// Anything else returns `None` and evaluates generically.
    fn spatial_shape(&self, predicate: &BoundExpr) -> Option<SpatialShape> {
        if self.mode != FunctionMode::Exact {
            return None;
        }
        let BoundExpr::Func { name, args } = predicate else {
            return None;
        };
        let kind = PredicateKind::from_sql_name(&name.to_ascii_uppercase())?;
        let [a, b] = args.as_slice() else {
            return None;
        };
        let operand = |e: &BoundExpr| -> Option<ShapeOperand> {
            match e {
                BoundExpr::Column(i) => Some(ShapeOperand::Column(*i)),
                // A constant operand that fails to evaluate, or is not a
                // geometry, is left to the generic path — which raises
                // the error per row, or not at all over an empty input.
                e if e.is_constant() => match eval_const(e, FunctionMode::Exact) {
                    Ok(Value::Geom(g)) => Some(ShapeOperand::Constant(g)),
                    _ => None,
                },
                _ => None,
            }
        };
        Some(SpatialShape { kind, a: operand(a)?, b: operand(b)? })
    }

    /// Binds a recognized shape to the row-at-a-time prepared fast path —
    /// requires a cache.
    fn prepared_filter(&self, predicate: &BoundExpr) -> Option<PreparedFilter<'_>> {
        let cache = self.prepared.as_deref()?;
        let shape = self.spatial_shape(predicate)?;
        let operand = |o: ShapeOperand| match o {
            ShapeOperand::Column(i) => PreparedOperand::Column(i),
            ShapeOperand::Constant(g) => {
                PreparedOperand::Constant(Arc::new(PreparedGeometry::new(&g)))
            }
        };
        Some(PreparedFilter {
            kind: shape.kind,
            a: operand(shape.a),
            b: operand(shape.b),
            cache,
            metrics: self.metrics.as_deref(),
        })
    }
}

/// A recognized top-level spatial predicate: `kind(a, b)` over columns
/// and/or constant geometries.
struct SpatialShape {
    kind: PredicateKind,
    a: ShapeOperand,
    b: ShapeOperand,
}

enum ShapeOperand {
    /// Tuple column offset.
    Column(usize),
    /// Constant geometry, evaluated once at recognition.
    Constant(Geometry),
}

/// A refine predicate bound to the prepared fast path: constant operands
/// prepared once up front, column operands prepared per distinct heap
/// row through the shared cache.
struct PreparedFilter<'a> {
    kind: PredicateKind,
    a: PreparedOperand,
    b: PreparedOperand,
    cache: &'a PreparedCache,
    metrics: Option<&'a EngineMetrics>,
}

enum PreparedOperand {
    /// Tuple column offset.
    Column(usize),
    /// Constant geometry, prepared at filter construction.
    Constant(Arc<PreparedGeometry>),
}

impl PreparedFilter<'_> {
    /// The prepared geometry for one operand of one row; `None` when the
    /// value is not a geometry (NULL or type mismatch), sending the row
    /// to the generic evaluator.
    fn operand(&self, op: &PreparedOperand, row: &LazyRow) -> Option<Arc<PreparedGeometry>> {
        match op {
            PreparedOperand::Constant(p) => Some(Arc::clone(p)),
            PreparedOperand::Column(i) => match row.col_part(*i) {
                Some((part, off)) => match &part[off] {
                    Value::Geom(g) => Some(self.cache.get_or_prepare(part, off, g, self.metrics)),
                    _ => None,
                },
                // Owned tuple: no stable identity to cache under, so
                // prepare fresh. Still a miss — the work was done.
                None => match row.col(*i) {
                    Some(Value::Geom(g)) => {
                        if let Some(m) = self.metrics {
                            m.prepared_cache_misses.incr();
                        }
                        Some(Arc::new(PreparedGeometry::new(g)))
                    }
                    _ => None,
                },
            },
        }
    }

    /// Evaluates the predicate for one row. `Ok(None)` means an operand
    /// was not a plain geometry — the caller falls back to the generic
    /// evaluator, which reproduces exact naive errors and semantics.
    fn eval_row(&self, row: &LazyRow) -> Result<Option<PredicateOutcome>> {
        let (Some(a), Some(b)) = (self.operand(&self.a, row), self.operand(&self.b, row)) else {
            return Ok(None);
        };
        Ok(Some(jackpine_topo::evaluate(self.kind, &a, &b)?))
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

fn run(node: &PlanNode, ctx: &ExecCtx) -> Result<Vec<LazyRow>> {
    let mode = ctx.mode;
    match node {
        PlanNode::SingleRow => Ok(vec![LazyRow::empty()]),
        PlanNode::Scan { table } => {
            let table = ctx.src(table);
            fetch_rows(table, table.row_ids(), ctx)
        }
        PlanNode::SpatialIndexScan { table, col, query, expand } => {
            let table = ctx.src(table);
            let env = probe_envelope(query, expand, mode)?;
            let ids = ctx.stage_if_some(Stage::IndexProbe, || table.spatial_candidates(*col, &env));
            match ids {
                Some(ids) => fetch_rows(table, ids, ctx),
                None => fetch_rows(table, table.row_ids(), ctx),
            }
        }
        PlanNode::OrderedIndexScan { table, col, key } => {
            let table = ctx.src(table);
            let key = eval_const(key, mode)?;
            let ids = ctx.stage_if_some(Stage::IndexProbe, || table.ordered_candidates(*col, &key));
            match ids {
                Some(ids) => fetch_rows(table, ids, ctx),
                None => fetch_rows(table, table.row_ids(), ctx),
            }
        }
        PlanNode::KnnScan { table, col, query, k } => {
            let table = ctx.src(table);
            let g = eval_const(query, mode)?;
            let geom = g
                .as_geom()
                .ok_or_else(|| SqlError::Type("k-NN query expression must be a geometry".into()))?;
            let center = geom
                .envelope()
                .center()
                .ok_or_else(|| SqlError::Type("k-NN query geometry is empty".into()))?;
            let ids = ctx.stage_if_some(Stage::IndexProbe, || table.nearest(*col, center, *k));
            match ids {
                Some(ids) => fetch_rows(table, ids, ctx),
                None => fetch_rows(table, table.row_ids(), ctx),
            }
        }
        PlanNode::Filter { input, predicate } => {
            if ctx.vectorized {
                if let Some(shape) = ctx.spatial_shape(predicate) {
                    return vectorized_filter(input, predicate, shape, ctx);
                }
            }
            let rows = run(input, ctx)?;
            let metrics = ctx.metrics.as_deref();
            let fast = ctx.prepared_filter(predicate);
            ctx.parallel_morsels(&rows, |chunk| {
                let t0 = metrics.map(|_| Instant::now());
                let mut out = Vec::with_capacity(chunk.len());
                let mut short_circuits = 0u64;
                for row in chunk {
                    let keep = match fast.as_ref().map(|f| f.eval_row(row)).transpose()?.flatten() {
                        Some(outcome) => {
                            short_circuits += u64::from(outcome.short_circuit);
                            outcome.value
                        }
                        // Not the fast-path shape, or an operand wasn't a
                        // plain geometry value: the generic evaluator
                        // decides, reproducing exact errors and NULL
                        // semantics.
                        None => truthy(&eval_view(predicate, row, mode)?),
                    };
                    if keep {
                        out.push(row.clone());
                    }
                }
                if let (Some(m), Some(t0)) = (metrics, t0) {
                    m.refine_candidates.add(chunk.len() as u64);
                    m.refine_hits.add(out.len() as u64);
                    m.refine_short_circuits.add(short_circuits);
                    m.record_stage(Stage::Refine, t0.elapsed());
                }
                Ok(out)
            })
        }
        PlanNode::NestedLoopJoin { left, right } => {
            let l = run(left, ctx)?;
            let r = run(right, ctx)?;
            ctx.parallel_morsels(&l, |chunk| {
                // Capacity is a capped hint: the cross product itself is
                // produced incrementally, never pre-allocated in full.
                let hint = chunk.len().saturating_mul(r.len()).min(MAX_CAPACITY_HINT);
                let mut out = Vec::with_capacity(hint);
                for lr in chunk {
                    for rr in &r {
                        out.push(lr.join(rr));
                    }
                }
                Ok(out)
            })
        }
        PlanNode::SpatialIndexJoin { left, right, right_col, probe, expand } => {
            let right = ctx.src(right);
            let l = run(left, ctx)?;
            let expand_by = match expand {
                Some(e) => eval_const(e, mode)?
                    .as_f64()
                    .ok_or_else(|| SqlError::Type("DWithin distance must be numeric".into()))?,
                None => 0.0,
            };
            let metrics = ctx.metrics.as_deref();
            ctx.parallel_morsels(&l, |chunk| {
                let t0 = metrics.map(|_| Instant::now());
                let mut out = Vec::new();
                for lr in chunk {
                    let g = eval_view(probe, lr, mode)?;
                    let Some(geom) = g.as_geom() else {
                        continue; // NULL geometry joins nothing
                    };
                    let env = geom.envelope().expanded_by(expand_by);
                    let ids = match right.spatial_candidates(*right_col, &env) {
                        Some(ids) => ids,
                        // No index after all: degenerate to scanning the
                        // right table for this probe.
                        None => right.row_ids(),
                    };
                    for id in ids {
                        out.push(lr.join_handle(right.fetch(id)?));
                    }
                }
                if let (Some(m), Some(t0)) = (metrics, t0) {
                    m.record_stage(Stage::IndexProbe, t0.elapsed());
                }
                Ok(out)
            })
        }
        PlanNode::Project { input, exprs } => {
            let rows = run(input, ctx)?;
            ctx.parallel_morsels(&rows, |chunk| {
                let mut out = Vec::with_capacity(chunk.len());
                for row in chunk {
                    let mut projected = Vec::with_capacity(exprs.len());
                    for (e, _) in exprs {
                        projected.push(eval_view(e, row, mode)?);
                    }
                    out.push(LazyRow::Owned(projected));
                }
                Ok(out)
            })
        }
        PlanNode::Aggregate { input, group_by, outputs } => {
            let rows = run(input, ctx)?;
            if group_by.is_empty() {
                let mut out_row = Vec::with_capacity(outputs.len());
                for (o, _) in outputs {
                    match o {
                        AggOutput::Agg(agg) => out_row.push(eval_aggregate(agg, &rows, ctx)?),
                        AggOutput::Group(_) => {
                            return Err(SqlError::Type("group column without GROUP BY".into()))
                        }
                    }
                }
                return Ok(vec![LazyRow::Owned(out_row)]);
            }
            // Compute grouping keys morsel-parallel, sort the keyed rows,
            // then fold each run — aggregating directly over the
            // `keyed[i..j]` slice (no per-group row copies).
            let keys: Vec<Vec<Value>> = ctx.parallel_morsels(&rows, |chunk| {
                let mut out = Vec::with_capacity(chunk.len());
                for row in chunk {
                    let mut key = Vec::with_capacity(group_by.len());
                    for g in group_by {
                        key.push(eval_view(g, row, mode)?);
                    }
                    out.push(key);
                }
                Ok(out)
            })?;
            let mut keyed: Vec<(Vec<Value>, LazyRow)> = keys.into_iter().zip(rows).collect();
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (a, b) in ka.iter().zip(kb) {
                    let ord = compare_values(a, b);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            // Group boundaries, then aggregate the groups morsel-parallel.
            let mut bounds: Vec<(usize, usize)> = Vec::new();
            let mut i = 0;
            while i < keyed.len() {
                let mut j = i + 1;
                while j < keyed.len()
                    && keyed[i]
                        .0
                        .iter()
                        .zip(&keyed[j].0)
                        .all(|(a, b)| compare_values(a, b) == std::cmp::Ordering::Equal)
                {
                    j += 1;
                }
                bounds.push((i, j));
                i = j;
            }
            let keyed = &keyed;
            ctx.parallel_morsels(&bounds, |chunk| {
                let mut out = Vec::with_capacity(chunk.len());
                for &(i, j) in chunk {
                    let group = &keyed[i..j];
                    let mut out_row = Vec::with_capacity(outputs.len());
                    for (o, _) in outputs {
                        match o {
                            AggOutput::Group(g) => out_row.push(keyed[i].0[*g].clone()),
                            AggOutput::Agg(agg) => {
                                out_row.push(eval_aggregate_slice(agg, group, mode)?)
                            }
                        }
                    }
                    out.push(LazyRow::Owned(out_row));
                }
                Ok(out)
            })
        }
        PlanNode::Sort { input, keys } => {
            let rows = run(input, ctx)?;
            // Precompute key tuples morsel-parallel, then sort by them.
            let key_tuples: Vec<Vec<Value>> = ctx.parallel_morsels(&rows, |chunk| {
                let mut out = Vec::with_capacity(chunk.len());
                for row in chunk {
                    let mut kt = Vec::with_capacity(keys.len());
                    for (e, _) in keys {
                        kt.push(eval_view(e, row, mode)?);
                    }
                    out.push(kt);
                }
                Ok(out)
            })?;
            let mut keyed: Vec<(Vec<Value>, LazyRow)> = key_tuples.into_iter().zip(rows).collect();
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, asc)) in keys.iter().enumerate() {
                    let ord = compare_values(&ka[i], &kb[i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        PlanNode::Limit { input, n } => {
            let mut rows = run(input, ctx)?;
            rows.truncate(*n);
            Ok(rows)
        }
    }
}

/// Fetches `ids` from `table` as row handles, morsel-parallel, without
/// copying row values (the handles share the heap's `Arc<Row>`s).
fn fetch_rows(
    table: &Arc<dyn TableProvider>,
    ids: Vec<jackpine_storage::RowId>,
    ctx: &ExecCtx,
) -> Result<Vec<LazyRow>> {
    ctx.parallel_morsels(&ids, |chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        for id in chunk {
            out.push(LazyRow::one(table.fetch(*id)?));
        }
        Ok(out)
    })
}

// ---------------------------------------------------------------------------
// Vectorized filter
// ---------------------------------------------------------------------------

/// One bound operand of a vectorized filter.
struct VecOperand {
    /// Column offset for column operands, `None` for constants.
    col: Option<usize>,
    /// Constant operand's envelope quad.
    const_quad: Option<MbrQuad>,
    /// Constant operand's preparation — built only when a cache is
    /// attached, i.e. the refine stage takes the prepared path.
    const_prepared: Option<Arc<PreparedGeometry>>,
    /// MBR quads for every input row in global row order, gathered from
    /// the heap's quad cache when the filter sits directly on a table
    /// scan. `None` falls back to the per-chunk memoized gather.
    pregathered: Option<Vec<Option<MbrQuad>>>,
}

impl VecOperand {
    /// Whether row `i` of the current batch has a geometry in this
    /// operand (constants always do; column operands consult the
    /// gathered column's validity mask).
    fn valid_at(&self, gathered: &MbrColumn, i: usize) -> bool {
        match self.col {
            Some(_) => gathered.valid[i],
            None => true,
        }
    }
}

/// Chunk-local envelope memo for the generic (join-shaped) gather: the
/// same heap row repeats across consecutive output rows of an index
/// join, so a last-pointer fast path plus a per-chunk map computes each
/// distinct row's envelope once per chunk. Keying by `Arc` pointer is
/// sound for the memo's lifetime because the chunk borrows every row.
#[derive(Default)]
struct GatherMemo {
    last: Option<(usize, Option<MbrQuad>)>,
    map: HashMap<usize, Option<MbrQuad>>,
}

impl GatherMemo {
    fn mbr_of(&mut self, row: &LazyRow, col: usize) -> Option<MbrQuad> {
        match row.col_part(col) {
            Some((part, off)) => {
                let ptr = Arc::as_ptr(part) as usize;
                if let Some((p, q)) = self.last {
                    if p == ptr {
                        return q;
                    }
                }
                let q = *self.map.entry(ptr).or_insert_with(|| part[off].mbr());
                self.last = Some((ptr, q));
                q
            }
            // Owned tuple: no stable identity to memo under.
            None => row.col(col).and_then(Value::mbr),
        }
    }
}

/// Chunk-local memo of the last resolved preparation per operand: one
/// cache probe amortized across a run of identical row pointers — the
/// batch-amortized prepared refine.
#[derive(Default)]
struct PrepMemo {
    last: Option<(usize, Arc<PreparedGeometry>)>,
}

fn resolve_prepared(
    op: &VecOperand,
    row: &LazyRow,
    cache: &PreparedCache,
    metrics: Option<&EngineMetrics>,
    memo: &mut PrepMemo,
) -> Option<Arc<PreparedGeometry>> {
    let col = match op.col {
        None => return op.const_prepared.clone(),
        Some(c) => c,
    };
    match row.col_part(col) {
        Some((part, off)) => {
            let ptr = Arc::as_ptr(part) as usize;
            if let Some((p, prepared)) = &memo.last {
                if *p == ptr {
                    // The row path would have probed the cache and hit.
                    if let Some(m) = metrics {
                        m.prepared_cache_hits.incr();
                    }
                    return Some(Arc::clone(prepared));
                }
            }
            match &part[off] {
                Value::Geom(g) => {
                    let prepared = cache.get_or_prepare(part, off, g, metrics);
                    memo.last = Some((ptr, Arc::clone(&prepared)));
                    Some(prepared)
                }
                _ => None,
            }
        }
        // Owned tuple: no stable identity to cache under, so prepare
        // fresh. Still a miss — the work was done.
        None => match row.col(col) {
            Some(Value::Geom(g)) => {
                if let Some(m) = metrics {
                    m.prepared_cache_misses.incr();
                }
                Some(Arc::new(PreparedGeometry::new(g)))
            }
            _ => None,
        },
    }
}

/// The packed quad of a geometry's envelope, NaN-encoded when empty —
/// must agree exactly with [`Value::mbr`].
fn quad_of(g: &Geometry) -> MbrQuad {
    let e = g.envelope();
    if e.is_empty() {
        [f64::NAN; 4]
    } else {
        [e.min_x, e.min_y, e.max_x, e.max_y]
    }
}

/// Scalar positive-form envelope test over packed quads; false against
/// any NaN bound, like the columnar kernels.
fn quads_intersect(a: MbrQuad, b: MbrQuad) -> bool {
    (a[0] <= b[2]) & (b[0] <= a[2]) & (a[1] <= b[3]) & (b[1] <= a[3])
}

/// Gathers one batch of MBR quads for a column operand into `out`
/// (cleared first). Constants leave `out` empty. Prefers the
/// pre-gathered scan quads; otherwise walks the rows through the memo.
fn gather_column(
    op: &VecOperand,
    batch: &[LazyRow],
    global_offset: usize,
    out: &mut MbrColumn,
    memo: &mut GatherMemo,
) {
    out.clear();
    let Some(col) = op.col else { return };
    if let Some(pre) = &op.pregathered {
        for q in &pre[global_offset..global_offset + batch.len()] {
            out.push(*q);
        }
        return;
    }
    for row in batch {
        out.push(memo.mbr_of(row, col));
    }
}

/// Executes `Filter(input, kind(a, b))` on the vectorized batch path:
/// fixed-size batches, a columnar MBR gather, a branch-free envelope
/// prefilter writing decided rows straight into the keep mask, and a
/// refine pass over the surviving selection-vector entries.
///
/// Decision semantics mirror the row path bit for bit. The prefilter
/// applies only the *unconditional* envelope gate — the one both
/// `topo::evaluate` and the naive SQL predicates apply before any other
/// work, even for unsupported geometry types: an env-disjoint valid pair
/// is decided `false` (`true` for Disjoint) with no error possible.
/// Every other row runs the same refine code as the row path, in
/// ascending row order, so result rows, error choice and NULL semantics
/// are identical at any batch size and worker count.
fn vectorized_filter(
    input: &PlanNode,
    predicate: &BoundExpr,
    shape: SpatialShape,
    ctx: &ExecCtx,
) -> Result<Vec<LazyRow>> {
    // Filters sitting directly on a base-table scan expose their row
    // ids, letting MBR columns be gathered from the heap's packed quad
    // cache instead of touching each geometry. The scan logic here
    // mirrors the corresponding `run` arms, stage recording included.
    let scanned = match input {
        PlanNode::Scan { table } => {
            let table = ctx.src(table);
            Some((table, table.row_ids()))
        }
        PlanNode::SpatialIndexScan { table, col, query, expand } => {
            let table = ctx.src(table);
            let env = probe_envelope(query, expand, ctx.mode)?;
            let ids = ctx
                .stage_if_some(Stage::IndexProbe, || table.spatial_candidates(*col, &env))
                .unwrap_or_else(|| table.row_ids());
            Some((table, ids))
        }
        _ => None,
    };
    let (rows, scanned) = match scanned {
        Some((table, ids)) => (fetch_rows(table, ids.clone(), ctx)?, Some((table, ids))),
        None => (run(input, ctx)?, None),
    };

    let SpatialShape { kind, a, b } = shape;
    let bind = |op: ShapeOperand| -> VecOperand {
        match op {
            ShapeOperand::Column(i) => VecOperand {
                col: Some(i),
                const_quad: None,
                const_prepared: None,
                pregathered: scanned.as_ref().and_then(|(t, ids)| t.fetch_mbrs(i, ids)),
            },
            ShapeOperand::Constant(g) => VecOperand {
                col: None,
                const_quad: Some(quad_of(&g)),
                const_prepared: ctx.prepared.is_some().then(|| Arc::new(PreparedGeometry::new(&g))),
                pregathered: None,
            },
        }
    };
    let a = bind(a);
    let b = bind(b);

    let metrics = ctx.metrics.as_deref();
    let cache = ctx.prepared.as_deref();
    let bs = ctx.batch_size;
    let mode = ctx.mode;
    ctx.parallel_morsels_indexed(&rows, |base, chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        let mut col_a = MbrColumn::with_capacity(bs.min(chunk.len()));
        let mut col_b = MbrColumn::with_capacity(bs.min(chunk.len()));
        let mut hit: Vec<bool> = Vec::new();
        let mut keep: Vec<bool> = Vec::new();
        let mut sel: Vec<u32> = Vec::new();
        let mut gather_a = GatherMemo::default();
        let mut gather_b = GatherMemo::default();
        let mut prep_a = PrepMemo::default();
        let mut prep_b = PrepMemo::default();
        let mut rejects = 0u64;
        let mut survivors = 0u64;
        let mut short_circuits = 0u64;
        let mut batches = 0u64;
        let mut prefilter_time = Duration::ZERO;
        let mut refine_time = Duration::ZERO;
        let mut offset = 0usize;
        while offset < chunk.len() {
            let batch = &chunk[offset..(offset + bs).min(chunk.len())];
            batches += 1;

            // Prefilter: columnar gather plus branch-free envelope test.
            let t0 = metrics.map(|_| Instant::now());
            gather_column(&a, batch, base + offset, &mut col_a, &mut gather_a);
            gather_column(&b, batch, base + offset, &mut col_b, &mut gather_b);
            match (a.const_quad, b.const_quad) {
                (None, None) => col_a.intersects_pairwise(&col_b, &mut hit),
                (None, Some(q)) => col_a.intersects_const(q, &mut hit),
                (Some(q), None) => col_b.intersects_const(q, &mut hit),
                (Some(qa), Some(qb)) => {
                    // Constant vs constant: one scalar test decides the
                    // whole batch's prefilter outcome.
                    let h = quads_intersect(qa, qb);
                    hit.clear();
                    hit.resize(batch.len(), h);
                }
            }
            keep.clear();
            keep.resize(batch.len(), false);
            sel.clear();
            for (i, &h) in hit.iter().enumerate() {
                if a.valid_at(&col_a, i) & b.valid_at(&col_b, i) & !h {
                    // Decided by the envelope gate alone; Disjoint is
                    // the one predicate an env-disjoint pair satisfies.
                    keep[i] = kind == PredicateKind::Disjoint;
                    rejects += 1;
                } else {
                    sel.push(i as u32);
                }
            }
            #[cfg(debug_assertions)]
            debug_assert!(crate::batch::selvec_is_sorted_unique(&sel, batch.len()));
            survivors += sel.len() as u64;
            if let Some(t0) = t0 {
                prefilter_time += t0.elapsed();
            }

            // Refine: exact evaluation over the selection vector, in
            // ascending row order (error ordering matches the row path).
            let t1 = metrics.map(|_| Instant::now());
            for &i in &sel {
                let i = i as usize;
                let row = &batch[i];
                let valid = a.valid_at(&col_a, i) && b.valid_at(&col_b, i);
                keep[i] = match (valid, cache) {
                    (true, Some(c)) => {
                        match (
                            resolve_prepared(&a, row, c, metrics, &mut prep_a),
                            resolve_prepared(&b, row, c, metrics, &mut prep_b),
                        ) {
                            (Some(pa), Some(pb)) => {
                                let outcome = jackpine_topo::evaluate(kind, &pa, &pb)?;
                                short_circuits += u64::from(outcome.short_circuit);
                                outcome.value
                            }
                            _ => truthy(&eval_view(predicate, row, mode)?),
                        }
                    }
                    // No cache (the `--prepared off` ablation) or a
                    // non-geometry operand: the generic evaluator
                    // decides, reproducing exact naive errors and NULL
                    // semantics.
                    _ => truthy(&eval_view(predicate, row, mode)?),
                };
            }
            if let Some(t1) = t1 {
                refine_time += t1.elapsed();
            }

            for (row, &k) in batch.iter().zip(&keep) {
                if k {
                    out.push(row.clone());
                }
            }
            offset += bs;
        }
        if let Some(m) = metrics {
            m.refine_candidates.add(chunk.len() as u64);
            m.refine_hits.add(out.len() as u64);
            m.prefilter_rejects.add(rejects);
            m.selvec_survivors.add(survivors);
            m.batches_dispatched.add(batches);
            // Short-circuit accounting stays comparable with the row
            // path: with the prepared path active, each envelope reject
            // is exactly the short-circuit `evaluate` would have
            // reported; with it off the row path records none there.
            m.refine_short_circuits.add(if cache.is_some() {
                rejects + short_circuits
            } else {
                short_circuits
            });
            m.record_stage(Stage::Prefilter, prefilter_time);
            m.record_stage(Stage::Refine, refine_time);
        }
        Ok(out)
    })
}

fn probe_envelope(
    query: &BoundExpr,
    expand: &Option<BoundExpr>,
    mode: FunctionMode,
) -> Result<Envelope> {
    let v = eval_const(query, mode)?;
    let g = v
        .as_geom()
        .ok_or_else(|| SqlError::Type("spatial index probe must be a geometry".into()))?;
    let mut env = g.envelope();
    if let Some(e) = expand {
        let d = eval_const(e, mode)?
            .as_f64()
            .ok_or_else(|| SqlError::Type("DWithin distance must be numeric".into()))?;
        env = env.expanded_by(d);
    }
    Ok(env)
}

/// SQL truthiness: non-zero numbers are true; NULL and everything else is
/// false.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        _ => false,
    }
}

/// Total ordering for sorting: NULLs first, then numeric, text, geometry
/// (by WKT) — enough for benchmark queries.
pub fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Text(x), Value::Text(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            _ => a.to_string().cmp(&b.to_string()),
        },
    }
}

/// Evaluates a bound expression over a materialized tuple.
pub fn eval(e: &BoundExpr, row: &[Value], mode: FunctionMode) -> Result<Value> {
    eval_view(e, &SliceView(row), mode)
}

/// Evaluates a constant expression (no column references).
fn eval_const(e: &BoundExpr, mode: FunctionMode) -> Result<Value> {
    eval_view(e, &SliceView(&[]), mode)
}

/// Evaluates a bound expression over any tuple view (materialized slice
/// or late-materialized [`LazyRow`]).
pub fn eval_view(e: &BoundExpr, row: &dyn TupleView, mode: FunctionMode) -> Result<Value> {
    Ok(match e {
        BoundExpr::Literal(v) => v.clone(),
        BoundExpr::Column(i) => row
            .col(*i)
            .cloned()
            .ok_or_else(|| SqlError::Type(format!("column offset {i} out of range")))?,
        BoundExpr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_view(a, row, mode)?);
            }
            functions::call(mode, name, &vals)?
        }
        BoundExpr::Binary { op, left, right } => {
            let l = eval_view(left, row, mode)?;
            // Short-circuit logic.
            match op {
                BinOp::And => {
                    if !truthy(&l) {
                        return Ok(Value::Int(0));
                    }
                    return Ok(Value::Int(i64::from(truthy(&eval_view(right, row, mode)?))));
                }
                BinOp::Or => {
                    if truthy(&l) {
                        return Ok(Value::Int(1));
                    }
                    return Ok(Value::Int(i64::from(truthy(&eval_view(right, row, mode)?))));
                }
                _ => {}
            }
            let r = eval_view(right, row, mode)?;
            eval_binary(*op, &l, &r)?
        }
        BoundExpr::Not(inner) => Value::Int(i64::from(!truthy(&eval_view(inner, row, mode)?))),
        BoundExpr::Neg(inner) => match eval_view(inner, row, mode)? {
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            Value::Null => Value::Null,
            other => return Err(SqlError::Type(format!("cannot negate {other:?}"))),
        },
        BoundExpr::Between { expr, lo, hi } => {
            let v = eval_view(expr, row, mode)?;
            let lo = eval_view(lo, row, mode)?;
            let hi = eval_view(hi, row, mode)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                Value::Int(0)
            } else {
                let ge = compare_values(&v, &lo) != std::cmp::Ordering::Less;
                let le = compare_values(&v, &hi) != std::cmp::Ordering::Greater;
                Value::Int(i64::from(ge && le))
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_view(expr, row, mode)?;
            Value::Int(i64::from(v.is_null() != *negated))
        }
    })
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use std::cmp::Ordering;
    // NULL propagates through comparisons (as false) and arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => Value::Null,
            _ => Value::Int(0),
        });
    }
    Ok(match op {
        BinOp::Eq => Value::Int(i64::from(value_eq(l, r))),
        BinOp::Neq => Value::Int(i64::from(!value_eq(l, r))),
        BinOp::Lt => Value::Int(i64::from(compare_values(l, r) == Ordering::Less)),
        BinOp::Le => Value::Int(i64::from(compare_values(l, r) != Ordering::Greater)),
        BinOp::Gt => Value::Int(i64::from(compare_values(l, r) == Ordering::Greater)),
        BinOp::Ge => Value::Int(i64::from(compare_values(l, r) != Ordering::Less)),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(op, l, r)?,
        BinOp::And | BinOp::Or => unreachable!("short-circuited by caller"),
    })
}

fn value_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Text(a), Value::Text(b)) => a == b,
        (Value::Geom(a), Value::Geom(b)) => a == b,
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral except division.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!(),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(SqlError::Type(format!("arithmetic on non-numeric values {l:?} and {r:?}")))
        }
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        _ => unreachable!(),
    })
}

/// Global (ungrouped) aggregate: argument expressions are evaluated
/// morsel-parallel, then folded serially **in row order**, so float sums
/// are bit-identical to the single-threaded result.
fn eval_aggregate(agg: &AggExpr, rows: &[LazyRow], ctx: &ExecCtx) -> Result<Value> {
    let mode = ctx.mode;
    let arg_values = |e: &BoundExpr| -> Result<Vec<Value>> {
        ctx.parallel_morsels(rows, |chunk| {
            let mut out = Vec::with_capacity(chunk.len());
            for row in chunk {
                out.push(eval_view(e, row, mode)?);
            }
            Ok(out)
        })
    };
    match agg {
        AggExpr::CountStar => Ok(Value::Int(rows.len() as i64)),
        AggExpr::Count(e) => {
            Ok(Value::Int(arg_values(e)?.iter().filter(|v| !v.is_null()).count() as i64))
        }
        AggExpr::Sum(e) | AggExpr::Avg(e) => {
            fold_sum(agg, arg_values(e)?.iter().map(|v| v.as_f64()))
        }
        AggExpr::Min(e) | AggExpr::Max(e) => fold_minmax(agg, arg_values(e)?.into_iter()),
    }
}

/// Grouped aggregate over one `keyed[i..j]` run: rows are aggregated in
/// place through the key/row pairs — no per-group copies.
fn eval_aggregate_slice(
    agg: &AggExpr,
    group: &[(Vec<Value>, LazyRow)],
    mode: FunctionMode,
) -> Result<Value> {
    match agg {
        AggExpr::CountStar => Ok(Value::Int(group.len() as i64)),
        AggExpr::Count(e) => {
            let mut n = 0i64;
            for (_, row) in group {
                if !eval_view(e, row, mode)?.is_null() {
                    n += 1;
                }
            }
            Ok(Value::Int(n))
        }
        AggExpr::Sum(e) | AggExpr::Avg(e) => {
            let mut vals = Vec::with_capacity(group.len());
            for (_, row) in group {
                vals.push(eval_view(e, row, mode)?.as_f64());
            }
            fold_sum(agg, vals.into_iter())
        }
        AggExpr::Min(e) | AggExpr::Max(e) => {
            let mut vals = Vec::with_capacity(group.len());
            for (_, row) in group {
                vals.push(eval_view(e, row, mode)?);
            }
            fold_minmax(agg, vals.into_iter())
        }
    }
}

/// Serial in-order SUM/AVG fold over pre-evaluated argument values.
fn fold_sum(agg: &AggExpr, values: impl Iterator<Item = Option<f64>>) -> Result<Value> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values.flatten() {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return Ok(Value::Null);
    }
    Ok(match agg {
        AggExpr::Sum(_) => Value::Float(sum),
        _ => Value::Float(sum / n as f64),
    })
}

/// Serial in-order MIN/MAX fold over pre-evaluated argument values.
fn fold_minmax(agg: &AggExpr, values: impl Iterator<Item = Value>) -> Result<Value> {
    let mut best: Option<Value> = None;
    for v in values {
        if v.is_null() {
            continue;
        }
        best = Some(match best {
            None => v,
            Some(b) => {
                let keep_new = match agg {
                    AggExpr::Min(_) => compare_values(&v, &b) == std::cmp::Ordering::Less,
                    _ => compare_values(&v, &b) == std::cmp::Ordering::Greater,
                };
                if keep_new {
                    v
                } else {
                    b
                }
            }
        });
    }
    Ok(best.unwrap_or(Value::Null))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(truthy(&Value::Int(1)));
        assert!(truthy(&Value::Float(0.5)));
        assert!(!truthy(&Value::Int(0)));
        assert!(!truthy(&Value::Null));
        assert!(!truthy(&Value::Text("yes".into())));
    }

    #[test]
    fn value_comparisons() {
        use std::cmp::Ordering;
        assert_eq!(compare_values(&Value::Int(1), &Value::Int(2)), Ordering::Less);
        assert_eq!(compare_values(&Value::Int(2), &Value::Float(1.5)), Ordering::Greater);
        assert_eq!(compare_values(&Value::Null, &Value::Int(0)), Ordering::Less);
        assert_eq!(
            compare_values(&Value::Text("a".into()), &Value::Text("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(eval_binary(BinOp::Add, &Value::Int(2), &Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(eval_binary(BinOp::Div, &Value::Int(1), &Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(
            eval_binary(BinOp::Mul, &Value::Float(2.0), &Value::Int(3)).unwrap(),
            Value::Float(6.0)
        );
        assert_eq!(eval_binary(BinOp::Add, &Value::Null, &Value::Int(3)).unwrap(), Value::Null);
        assert!(eval_binary(BinOp::Add, &Value::Text("a".into()), &Value::Int(1)).is_err());
    }

    #[test]
    fn is_null_logic() {
        let e =
            BoundExpr::IsNull { expr: Box::new(BoundExpr::Literal(Value::Null)), negated: false };
        assert_eq!(eval(&e, &[], FunctionMode::Exact).unwrap(), Value::Int(1));
        let e =
            BoundExpr::IsNull { expr: Box::new(BoundExpr::Literal(Value::Int(5))), negated: true };
        assert_eq!(eval(&e, &[], FunctionMode::Exact).unwrap(), Value::Int(1));
        let e =
            BoundExpr::IsNull { expr: Box::new(BoundExpr::Literal(Value::Int(5))), negated: false };
        assert_eq!(eval(&e, &[], FunctionMode::Exact).unwrap(), Value::Int(0));
    }

    #[test]
    fn lazy_row_column_walk() {
        let a = Arc::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Arc::new(vec![Value::Int(3)]);
        let joined = LazyRow::one(a).join(&LazyRow::one(b));
        assert_eq!(joined.col(0), Some(&Value::Int(1)));
        assert_eq!(joined.col(2), Some(&Value::Int(3)));
        assert_eq!(joined.col(3), None);
        assert_eq!(joined.materialize(), vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn morsel_dispatch_preserves_order_and_errors() {
        let ctx = ExecCtx {
            mode: FunctionMode::Exact,
            workers: 4,
            metrics: None,
            prepared: None,
            vectorized: true,
            batch_size: DEFAULT_BATCH_SIZE,
            pins: HashMap::new(),
        };
        let items: Vec<usize> = (0..10_000).collect();
        let out = ctx.parallel_morsels(&items, |chunk| Ok(chunk.to_vec())).unwrap();
        assert_eq!(out, items);
        // Errors surface deterministically regardless of worker count.
        let err = ctx
            .parallel_morsels(&items, |chunk| {
                if chunk.contains(&4321) {
                    Err(SqlError::Type("boom".into()))
                } else {
                    Ok(chunk.to_vec())
                }
            })
            .unwrap_err();
        assert!(matches!(err, SqlError::Type(_)));
    }
}
